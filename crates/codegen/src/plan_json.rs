//! Schema-versioned JSON serialization of the [`SpmdPlan`].
//!
//! `acfc plan INPUT.f -o plan.json` decouples compilation from
//! execution: the emitted artifact carries everything the SPMD hook set
//! needs at run time, so `acfc run --plan plan.json` / `acfd-worker
//! --plan plan.json` can execute a previously generated parallel source
//! without re-running the analysis pipeline. The format is hand-written
//! over the vendored JSON value model (the `serde` derives in this tree
//! are inert stubs); see DESIGN.md §11 for the schema.
//!
//! Numbers that must survive exactly (statement ids, ghost widths,
//! extents) are emitted as JSON integers, which the value model keeps as
//! `i128` — nothing round-trips through `f64`.

use crate::plan::{
    CutSite, EnginePref, OverlapSpec, PipeStep, ReduceSpec, SelfArraySpec, SelfLoopSpec, SpmdPlan,
    SyncArray, SyncSpec,
};
use autocfd_fortran::ast::StmtId;
use autocfd_grid::{partition, GridShape, PartitionSpec};
use serde::json::{self, Value};
use std::collections::BTreeMap;

/// Version of the plan JSON schema. Bump on any incompatible change;
/// the loader rejects mismatches instead of guessing.
///
/// v2 added `engine`, `threads` and `kernel_nests` (compiled-kernel
/// engine selection travels with the plan).
pub const PLAN_SCHEMA_VERSION: i64 = 2;

fn ints<T: Copy + Into<i128>>(vs: &[T]) -> Value {
    Value::Arr(vs.iter().map(|&v| Value::Int(v.into())).collect())
}

fn pipe_steps(steps: &[PipeStep]) -> Value {
    Value::Arr(
        steps
            .iter()
            .map(|s| {
                Value::obj(vec![
                    ("axis", Value::Int(s.axis as i128)),
                    ("dir", Value::Int(s.dir.into())),
                    ("width", Value::Int(s.width.into())),
                ])
            })
            .collect(),
    )
}

/// Render a plan as schema-versioned JSON (compact, deterministic field
/// order — the artifact is diffable).
pub fn to_json(plan: &SpmdPlan) -> String {
    let partition_v = Value::obj(vec![
        ("extents", ints(&plan.partition.shape.extents)),
        ("parts", ints(&plan.partition.spec.parts)),
    ]);
    let dim_axis = Value::Arr(
        plan.dim_axis
            .iter()
            .map(|(name, axes)| {
                Value::obj(vec![
                    ("array", Value::Str(name.clone())),
                    (
                        "axes",
                        Value::Arr(
                            axes.iter()
                                .map(|a| match a {
                                    Some(x) => Value::Int(*x as i128),
                                    None => Value::Null,
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let syncs = Value::Arr(
        plan.syncs
            .values()
            .map(|s| {
                Value::obj(vec![
                    ("id", Value::Int(s.id.into())),
                    ("merged", Value::Int(s.merged as i128)),
                    (
                        "arrays",
                        Value::Arr(
                            s.arrays
                                .iter()
                                .map(|a| {
                                    Value::obj(vec![
                                        ("array", Value::Str(a.array.clone())),
                                        (
                                            "ghost",
                                            Value::Arr(
                                                a.ghost.iter().map(|g| ints(&g[..])).collect(),
                                            ),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let overlaps = Value::Arr(
        plan.overlaps
            .iter()
            .map(|(sync, o)| {
                Value::obj(vec![
                    ("sync", Value::Int((*sync).into())),
                    ("stmt", Value::Int(o.stmt.0.into())),
                    ("var", Value::Str(o.var.clone())),
                    ("axis", Value::Int(o.axis as i128)),
                    ("low_width", Value::Int(o.low_width.into())),
                    ("high_width", Value::Int(o.high_width.into())),
                ])
            })
            .collect(),
    );
    let self_loops = Value::Arr(
        plan.self_loops
            .values()
            .map(|sl| {
                Value::obj(vec![
                    ("id", Value::Int(sl.id.into())),
                    (
                        "arrays",
                        Value::Arr(
                            sl.arrays
                                .iter()
                                .map(|a| {
                                    Value::obj(vec![
                                        ("array", Value::Str(a.array.clone())),
                                        ("forward", pipe_steps(&a.forward)),
                                        ("mirror", pipe_steps(&a.mirror)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let reduces = Value::Arr(
        plan.reduces
            .iter()
            .map(|r| {
                Value::obj(vec![
                    ("var", Value::Str(r.var.clone())),
                    ("op", Value::Str(r.op.clone())),
                ])
            })
            .collect(),
    );
    let fills = Value::Arr(
        plan.fills
            .iter()
            .map(|(id, arrays)| {
                Value::obj(vec![
                    ("id", Value::Int((*id).into())),
                    (
                        "arrays",
                        Value::Arr(arrays.iter().map(|a| Value::Str(a.clone())).collect()),
                    ),
                ])
            })
            .collect(),
    );
    let checkpoint_syncs = Value::Arr(
        plan.checkpoint_syncs
            .iter()
            .map(|(sync, stmt)| {
                Value::obj(vec![
                    ("sync", Value::Int((*sync).into())),
                    ("stmt", Value::Int(stmt.0.into())),
                ])
            })
            .collect(),
    );
    let checkpoint_sites = Value::Arr(
        plan.checkpoint_sites
            .iter()
            .map(|(sync, site)| {
                Value::obj(vec![
                    ("sync", Value::Int((*sync).into())),
                    ("kind", Value::Int(site.list_kind.into())),
                    ("stmt", Value::Int(site.list_stmt.into())),
                    ("arm", Value::Int(site.arm.into())),
                    ("gap", Value::Int(site.gap.into())),
                ])
            })
            .collect(),
    );
    Value::obj(vec![
        ("version", Value::Int(PLAN_SCHEMA_VERSION.into())),
        ("partition", partition_v),
        ("dim_axis", dim_axis),
        ("syncs", syncs),
        ("overlaps", overlaps),
        ("self_loops", self_loops),
        ("reduces", reduces),
        ("fills", fills),
        ("checkpoint_syncs", checkpoint_syncs),
        ("checkpoint_sites", checkpoint_sites),
        ("sync_before", Value::Int(plan.sync_before.into())),
        ("sync_after", Value::Int(plan.sync_after.into())),
        ("engine", Value::Str(plan.engine.name().to_string())),
        ("threads", Value::Int(plan.threads.into())),
        (
            "kernel_nests",
            Value::Arr(
                plan.kernel_nests
                    .iter()
                    .map(|s| Value::Int(s.0.into()))
                    .collect(),
            ),
        ),
    ])
    .to_string()
}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("plan JSON: missing `{key}`"))
}

fn int(v: &Value, key: &str) -> Result<i128, String> {
    get(v, key)?
        .as_int()
        .ok_or_else(|| format!("plan JSON: `{key}` is not an integer"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    u64::try_from(int(v, key)?).map_err(|_| format!("plan JSON: `{key}` out of range"))
}

fn u32_field(v: &Value, key: &str) -> Result<u32, String> {
    u32::try_from(int(v, key)?).map_err(|_| format!("plan JSON: `{key}` out of range"))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    usize::try_from(int(v, key)?).map_err(|_| format!("plan JSON: `{key}` out of range"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    Ok(get(v, key)?
        .as_str()
        .ok_or_else(|| format!("plan JSON: `{key}` is not a string"))?
        .to_string())
}

fn arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| format!("plan JSON: `{key}` is not an array"))
}

fn int_vec<T: TryFrom<i128>>(v: &Value, key: &str) -> Result<Vec<T>, String> {
    arr(v, key)?
        .iter()
        .map(|x| {
            x.as_int()
                .and_then(|i| T::try_from(i).ok())
                .ok_or_else(|| format!("plan JSON: bad element in `{key}`"))
        })
        .collect()
}

fn parse_pipe_steps(v: &Value, key: &str) -> Result<Vec<PipeStep>, String> {
    arr(v, key)?
        .iter()
        .map(|s| {
            Ok(PipeStep {
                axis: usize_field(s, "axis")?,
                dir: int(s, "dir")? as i32,
                width: u64_field(s, "width")?,
            })
        })
        .collect()
}

/// Parse a plan back from its JSON rendering. The partition geometry is
/// validated (axis count, no overpartitioned axis) and *rebuilt* from
/// shape + spec, so subgrid bounds and neighbor maps are exactly the
/// ones the compiler would have produced.
pub fn from_json(text: &str) -> Result<SpmdPlan, String> {
    let v = json::parse(text).map_err(|e| format!("plan JSON: {e}"))?;
    let version = int(&v, "version")?;
    if version != i128::from(PLAN_SCHEMA_VERSION) {
        return Err(format!(
            "plan JSON: schema version {version} (this build reads {PLAN_SCHEMA_VERSION})"
        ));
    }

    let part = get(&v, "partition")?;
    let extents: Vec<u64> = int_vec(part, "extents")?;
    let parts: Vec<u32> = int_vec(part, "parts")?;
    if extents.is_empty() || extents.len() != parts.len() {
        return Err(format!(
            "plan JSON: partition has {} parts for {} grid axes",
            parts.len(),
            extents.len()
        ));
    }
    for (a, (&n, &p)) in extents.iter().zip(&parts).enumerate() {
        if p == 0 || u64::from(p) > n {
            return Err(format!(
                "plan JSON: axis {a} of extent {n} cannot be split into {p} parts"
            ));
        }
    }
    let partition = partition(&GridShape { extents }, &PartitionSpec::new(&parts));

    let mut dim_axis = BTreeMap::new();
    for d in arr(&v, "dim_axis")? {
        let axes = arr(d, "axes")?
            .iter()
            .map(|a| match a {
                Value::Null => Ok(None),
                _ => a
                    .as_int()
                    .and_then(|i| usize::try_from(i).ok())
                    .map(Some)
                    .ok_or_else(|| "plan JSON: bad axis entry".to_string()),
            })
            .collect::<Result<Vec<_>, _>>()?;
        dim_axis.insert(str_field(d, "array")?, axes);
    }

    let mut syncs = BTreeMap::new();
    for s in arr(&v, "syncs")? {
        let id = u32_field(s, "id")?;
        let arrays = arr(s, "arrays")?
            .iter()
            .map(|a| {
                let ghost = arr(a, "ghost")?
                    .iter()
                    .map(|g| {
                        let pair: Vec<u64> = g
                            .as_arr()
                            .filter(|p| p.len() == 2)
                            .ok_or("plan JSON: ghost entry is not a pair")?
                            .iter()
                            .map(|x| {
                                x.as_int()
                                    .and_then(|i| u64::try_from(i).ok())
                                    .ok_or("plan JSON: bad ghost width")
                            })
                            .collect::<Result<_, _>>()?;
                        Ok::<[u64; 2], String>([pair[0], pair[1]])
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(SyncArray {
                    array: str_field(a, "array")?,
                    ghost,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        syncs.insert(
            id,
            SyncSpec {
                id,
                arrays,
                merged: usize_field(s, "merged")?,
            },
        );
    }

    let mut overlaps = BTreeMap::new();
    for o in arr(&v, "overlaps")? {
        overlaps.insert(
            u32_field(o, "sync")?,
            OverlapSpec {
                stmt: StmtId(u32_field(o, "stmt")?),
                var: str_field(o, "var")?,
                axis: usize_field(o, "axis")?,
                low_width: u64_field(o, "low_width")?,
                high_width: u64_field(o, "high_width")?,
            },
        );
    }

    let mut self_loops = BTreeMap::new();
    for sl in arr(&v, "self_loops")? {
        let id = u32_field(sl, "id")?;
        let arrays = arr(sl, "arrays")?
            .iter()
            .map(|a| {
                Ok::<SelfArraySpec, String>(SelfArraySpec {
                    array: str_field(a, "array")?,
                    forward: parse_pipe_steps(a, "forward")?,
                    mirror: parse_pipe_steps(a, "mirror")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        self_loops.insert(id, SelfLoopSpec { id, arrays });
    }

    let reduces = arr(&v, "reduces")?
        .iter()
        .map(|r| {
            Ok::<ReduceSpec, String>(ReduceSpec {
                var: str_field(r, "var")?,
                op: str_field(r, "op")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;

    let mut fills = BTreeMap::new();
    for f in arr(&v, "fills")? {
        let arrays = arr(f, "arrays")?
            .iter()
            .map(|a| {
                a.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "plan JSON: bad fill array".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        fills.insert(u32_field(f, "id")?, arrays);
    }

    let mut checkpoint_syncs = BTreeMap::new();
    for c in arr(&v, "checkpoint_syncs")? {
        checkpoint_syncs.insert(u32_field(c, "sync")?, StmtId(u32_field(c, "stmt")?));
    }

    // absent on pre-elastic artifacts: the plan still runs, but a cut
    // taken under it cannot be mapped onto a different partition
    let mut checkpoint_sites = BTreeMap::new();
    if v.get("checkpoint_sites").is_some() {
        for c in arr(&v, "checkpoint_sites")? {
            checkpoint_sites.insert(
                u32_field(c, "sync")?,
                CutSite {
                    list_kind: u32_field(c, "kind")? as u8,
                    list_stmt: u32_field(c, "stmt")?,
                    arm: u32_field(c, "arm")?,
                    gap: u64_field(c, "gap")?,
                },
            );
        }
    }

    Ok(SpmdPlan {
        partition,
        dim_axis,
        syncs,
        overlaps,
        self_loops,
        reduces,
        fills,
        checkpoint_syncs,
        checkpoint_sites,
        sync_before: u64_field(&v, "sync_before")?,
        sync_after: u64_field(&v, "sync_after")?,
        engine: {
            let name = str_field(&v, "engine")?;
            EnginePref::parse(&name).ok_or_else(|| format!("plan JSON: unknown engine `{name}`"))?
        },
        threads: u32_field(&v, "threads")?.max(1),
        kernel_nests: int_vec::<u32>(&v, "kernel_nests")?
            .into_iter()
            .map(StmtId)
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_full_plan() {
        let p = partition(&GridShape::d2(10, 10), &PartitionSpec::new(&[2, 1]));
        let plan = SpmdPlan {
            partition: p,
            dim_axis: BTreeMap::from([("v".into(), vec![Some(0), None, Some(1)])]),
            syncs: BTreeMap::from([(
                0,
                SyncSpec {
                    id: 0,
                    arrays: vec![SyncArray {
                        array: "v".into(),
                        ghost: vec![[1, 2], [0, 0]],
                    }],
                    merged: 2,
                },
            )]),
            overlaps: BTreeMap::from([(
                0,
                OverlapSpec {
                    stmt: StmtId(7),
                    var: "i".into(),
                    axis: 0,
                    low_width: 1,
                    high_width: 1,
                },
            )]),
            self_loops: BTreeMap::from([(
                0,
                SelfLoopSpec {
                    id: 0,
                    arrays: vec![SelfArraySpec {
                        array: "v".into(),
                        forward: vec![PipeStep {
                            axis: 0,
                            dir: -1,
                            width: 1,
                        }],
                        mirror: vec![PipeStep {
                            axis: 0,
                            dir: 1,
                            width: 1,
                        }],
                    }],
                },
            )]),
            reduces: vec![ReduceSpec {
                var: "err".into(),
                op: "max".into(),
            }],
            fills: BTreeMap::from([(0, vec!["v".into()])]),
            checkpoint_syncs: BTreeMap::from([(0, StmtId(4))]),
            checkpoint_sites: BTreeMap::from([(
                0,
                CutSite {
                    list_kind: 1,
                    list_stmt: 3,
                    arm: 0,
                    gap: 2,
                },
            )]),
            sync_before: 5,
            sync_after: 1,
            engine: EnginePref::Kernel,
            threads: 4,
            kernel_nests: vec![StmtId(7), StmtId(12)],
        };
        let text = to_json(&plan);
        let back = from_json(&text).unwrap();
        assert_eq!(back, plan);
        // serialization is deterministic
        assert_eq!(to_json(&back), text);
    }

    #[test]
    fn version_mismatch_rejected() {
        let p = partition(&GridShape::d2(4, 4), &PartitionSpec::new(&[1, 1]));
        let plan = SpmdPlan {
            partition: p,
            dim_axis: BTreeMap::new(),
            syncs: BTreeMap::new(),
            overlaps: BTreeMap::new(),
            self_loops: BTreeMap::new(),
            reduces: vec![],
            fills: BTreeMap::new(),
            checkpoint_syncs: BTreeMap::new(),
            checkpoint_sites: BTreeMap::new(),
            sync_before: 0,
            sync_after: 0,
            engine: EnginePref::Tree,
            threads: 1,
            kernel_nests: vec![],
        };
        let text = to_json(&plan).replace("\"version\":2", "\"version\":99");
        let err = from_json(&text).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
        // v1 artifacts (pre-engine) are stale too
        let old = to_json(&plan).replace("\"version\":2", "\"version\":1");
        let err = from_json(&old).unwrap_err();
        assert!(err.contains("schema version 1"), "{err}");
    }

    #[test]
    fn invalid_partition_rejected_not_panicking() {
        // 8 parts on an extent-4 axis would make `partition()` panic;
        // the loader must reject it as a parse error instead
        let text = r#"{"version":2,"partition":{"extents":[4,4],"parts":[8,1]},
            "dim_axis":[],"syncs":[],"overlaps":[],"self_loops":[],
            "reduces":[],"fills":[],"checkpoint_syncs":[],
            "sync_before":0,"sync_after":0,
            "engine":"tree","threads":1,"kernel_nests":[]}"#;
        let err = from_json(text).unwrap_err();
        assert!(err.contains("cannot be split"), "{err}");
    }

    #[test]
    fn garbage_rejected_with_context() {
        assert!(from_json("not json").unwrap_err().contains("parse error"));
        assert!(from_json("{}").unwrap_err().contains("version"));
        let err = from_json(r#"{"version":2}"#).unwrap_err();
        assert!(err.contains("partition"), "{err}");
    }
}
