//! Content-addressed identity for compile results.
//!
//! The resident compile service (`crates/compile-service`) caches
//! [`SpmdPlan`](crate::SpmdPlan)s keyed by *what was compiled*, not *where
//! it came from*: the key material is the canonicalized program text plus
//! the pipeline options that shape the plan (partition geometry, ghost
//! distance, sync optimization) plus [`PLAN_SCHEMA_VERSION`] so a schema
//! bump invalidates every persisted entry at once. Host paths, file
//! timestamps, and map iteration order never enter the digest — two
//! machines compiling the same source with the same options produce the
//! same key, byte for byte.
//!
//! Hashing is a hand-rolled FNV-1a-128. `std`'s `DefaultHasher` is
//! SipHash with process-random keys, so it cannot name on-disk cache
//! entries; FNV is stable across processes, architectures, and releases
//! (the constants below are fixed by the algorithm, not by us).

use crate::plan::EnginePref;
use crate::plan_json::PLAN_SCHEMA_VERSION;
use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// FNV-1a-128 over `bytes`. Deterministic across processes — unlike
/// `std::collections::hash_map::DefaultHasher`, which seeds SipHash
/// randomly per process and so is useless for content addressing.
pub fn stable_hash_128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// Canonicalize program text for hashing: normalize CRLF and lone CR to
/// LF, and drop trailing whitespace on each line. Editors and transports
/// disagree about exactly these bytes; none of them change what the
/// frontend sees, so none of them may change the cache key.
pub fn canonicalize_source(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    for line in source.replace("\r\n", "\n").replace('\r', "\n").split('\n') {
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// The content-addressed identity of one compile request.
///
/// Built from the *inputs* to the pipeline, never from its outputs or
/// environment: no file paths, no timestamps, no hash-map iteration
/// order. Equal keys ⇒ the pipeline would produce the identical
/// [`SpmdPlan`](crate::SpmdPlan) and generated source.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// FNV-1a-128 of the canonicalized program text.
    pub source_digest: u128,
    /// Ranks along each partitioned grid axis, in axis order.
    pub parts: Vec<usize>,
    /// Dependence-distance *override*; `None` lets the source's
    /// `!$acf distance` directive (or the default) decide — and the
    /// directive text is already inside `source_digest`, so `None` still
    /// keys deterministically.
    pub distance: Option<usize>,
    /// Whether redundant-sync elimination ran.
    pub optimize: bool,
    /// Requested execution engine. The emitted plan JSON embeds it, so
    /// two compiles that differ only here must not share a cache entry.
    pub engine: EnginePref,
    /// Requested kernel-engine worker threads (embedded in the plan
    /// JSON like `engine`).
    pub threads: u32,
    /// [`PLAN_SCHEMA_VERSION`] at key construction time.
    pub schema_version: i64,
}

impl PlanKey {
    /// Build the key for `source` compiled with the given options. The
    /// source is canonicalized first (see [`canonicalize_source`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        source: &str,
        parts: &[usize],
        distance: Option<usize>,
        optimize: bool,
        engine: EnginePref,
        threads: u32,
    ) -> PlanKey {
        PlanKey {
            source_digest: stable_hash_128(canonicalize_source(source).as_bytes()),
            parts: parts.to_vec(),
            distance,
            optimize,
            engine,
            threads,
            schema_version: PLAN_SCHEMA_VERSION,
        }
    }

    /// The 32-hex-character digest naming this key: FNV-1a-128 over a
    /// canonical rendering of every field in a fixed order. Filesystem-
    /// and wire-safe; used as the cache entry name.
    pub fn digest(&self) -> String {
        let mut material = String::new();
        material.push_str("acfd-plan-key:v2\n");
        material.push_str(&format!("source:{:032x}\n", self.source_digest));
        material.push_str("parts:");
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                material.push(',');
            }
            material.push_str(&p.to_string());
        }
        material.push('\n');
        match self.distance {
            Some(d) => material.push_str(&format!("distance:{d}\n")),
            None => material.push_str("distance:default\n"),
        }
        material.push_str(&format!("optimize:{}\n", self.optimize));
        material.push_str(&format!("engine:{}\n", self.engine.name()));
        material.push_str(&format!("threads:{}\n", self.threads));
        material.push_str(&format!("schema:{}\n", self.schema_version));
        format!("{:032x}", stable_hash_128(material.as_bytes()))
    }
}

impl fmt::Display for PlanKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors_are_stable() {
        // Golden values pin the algorithm: a random-seeded hasher (or an
        // accidental constant change) fails this in any process.
        assert_eq!(stable_hash_128(b""), FNV128_OFFSET);
        assert_eq!(
            format!("{:032x}", stable_hash_128(b"a")),
            "d228cb696f1a8caf78912b704e4a8964"
        );
        assert_eq!(
            format!("{:032x}", stable_hash_128(b"foobar")),
            "343e1662793c64bf6f0d3597ba446f18"
        );
    }

    #[test]
    fn canonicalization_erases_line_ending_and_trailing_space_noise() {
        let unix = "program t\n  x = 1\nend\n";
        let dos = "program t\r\n  x = 1\r\nend\r\n";
        let mac = "program t\r  x = 1\rend\r";
        let trailing = "program t   \n  x = 1\t\nend\n";
        let a = PlanKey::new(unix, &[2, 2], Some(1), true, EnginePref::Tree, 1);
        assert_eq!(
            a,
            PlanKey::new(dos, &[2, 2], Some(1), true, EnginePref::Tree, 1)
        );
        assert_eq!(
            a,
            PlanKey::new(mac, &[2, 2], Some(1), true, EnginePref::Tree, 1)
        );
        assert_eq!(
            a,
            PlanKey::new(trailing, &[2, 2], Some(1), true, EnginePref::Tree, 1)
        );
        // ...but real edits change the key
        assert_ne!(
            a,
            PlanKey::new(
                "program t\n  x = 2\nend\n",
                &[2, 2],
                Some(1),
                true,
                EnginePref::Tree,
                1
            )
        );
    }

    #[test]
    fn every_option_is_key_material() {
        let src = "program t\nend\n";
        let base = PlanKey::new(src, &[2, 2], Some(1), true, EnginePref::Tree, 1);
        assert_ne!(
            base.digest(),
            PlanKey::new(src, &[4, 1], Some(1), true, EnginePref::Tree, 1).digest()
        );
        assert_ne!(
            base.digest(),
            PlanKey::new(src, &[2, 2], Some(2), true, EnginePref::Tree, 1).digest()
        );
        assert_ne!(
            base.digest(),
            PlanKey::new(src, &[2, 2], Some(1), false, EnginePref::Tree, 1).digest()
        );
        assert_ne!(
            base.digest(),
            PlanKey::new(src, &[2, 2], None, true, EnginePref::Tree, 1).digest(),
            "an explicit override of 1 and `no override` are distinct keys"
        );
        assert_ne!(
            base.digest(),
            PlanKey::new(src, &[2, 2], Some(1), true, EnginePref::Kernel, 1).digest(),
            "engine selection is key material (the plan JSON embeds it)"
        );
        assert_ne!(
            PlanKey::new(src, &[2, 2], Some(1), true, EnginePref::Kernel, 1).digest(),
            PlanKey::new(src, &[2, 2], Some(1), true, EnginePref::Kernel, 4).digest(),
            "thread count is key material (the plan JSON embeds it)"
        );
        let mut stale = base.clone();
        stale.schema_version += 1;
        assert_ne!(base.digest(), stale.digest());
    }

    #[test]
    fn parts_ordering_is_significant_but_rendering_is_unambiguous() {
        let src = "program t\nend\n";
        // [12] vs [1,2] must not collide through string concatenation
        assert_ne!(
            PlanKey::new(src, &[12], Some(1), true, EnginePref::Tree, 1).digest(),
            PlanKey::new(src, &[1, 2], Some(1), true, EnginePref::Tree, 1).digest()
        );
        assert_ne!(
            PlanKey::new(src, &[2, 1], Some(1), true, EnginePref::Tree, 1).digest(),
            PlanKey::new(src, &[1, 2], Some(1), true, EnginePref::Tree, 1).digest()
        );
    }

    #[test]
    fn digest_is_golden() {
        // A golden digest proves cross-process determinism: any
        // process-random seed, map-order dependence, or host-path leak
        // would break it. If this fails after an intentional key-material
        // change, bump "acfd-plan-key:v2" and re-pin.
        let key = PlanKey {
            source_digest: stable_hash_128(b"program t\nend\n"),
            parts: vec![2, 2],
            distance: Some(1),
            optimize: true,
            engine: EnginePref::Kernel,
            threads: 4,
            schema_version: 2,
        };
        assert_eq!(key.digest(), "15c8eb707959bdb3972a124441a28153");
    }
}
