//! The executable SPMD plan: what each `acf_*` call must do.

use autocfd_fortran::ast::StmtId;
use autocfd_grid::Partition;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One boundary-slab transfer obligation of a self-dependent loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeStep {
    /// Grid axis of the transfer.
    pub axis: usize,
    /// Where the incoming data comes from: −1 = lower neighbor, +1 = upper.
    pub dir: i32,
    /// Slab width in grid layers.
    pub width: u64,
}

/// Ghost requirements of one array at a synchronization point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncArray {
    /// Array name.
    pub array: String,
    /// Per grid axis `[from_lower, from_upper]` ghost layers to receive.
    pub ghost: Vec<[u64; 2]>,
}

/// One combined synchronization point (a halo exchange of one or more
/// arrays).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncSpec {
    /// Plan-unique id; the generated call is `acf_sync_<id>`.
    pub id: u32,
    /// Arrays to exchange, with ghost widths.
    pub arrays: Vec<SyncArray>,
    /// How many upper-bound regions were merged here (reporting).
    pub merged: usize,
}

/// The mirror-image schedule of one array within a self-dependent loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelfArraySpec {
    /// Array name.
    pub array: String,
    /// Forward-subgraph obligations: receive *updated* slabs before
    /// computing (pipeline; `dir` is the source direction).
    pub forward: Vec<PipeStep>,
    /// Mirror-subgraph obligations: receive *old* (pre-sweep) slabs.
    pub mirror: Vec<PipeStep>,
}

/// One self-dependent field loop with its decomposition schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelfLoopSpec {
    /// Plan-unique id; the generated calls are `acf_pre_<id>` and
    /// `acf_post_<id>`.
    pub id: u32,
    /// Per-array schedules.
    pub arrays: Vec<SelfArraySpec>,
}

/// A recognized reduction to make global after a localized field loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReduceSpec {
    /// Scalar variable name.
    pub var: String,
    /// `"max"`, `"min"` or `"sum"` — the generated call is
    /// `acf_reduce_<op>_<var>`.
    pub op: String,
}

/// Compute/communication overlap opportunity at one synchronization
/// point: the loop nest immediately after the `acf_sync_<id>` call may
/// run its interior (cells whose stencil stays inside the rank's owned
/// region on the overlapped axis) while the last-axis halo exchange is
/// in flight, then complete the receives and run the two boundary
/// strips. Emitted only for nests the restructurer proved safe to
/// split: perfect prefix down to the overlapped loop, unit step, no
/// scalar writes, written arrays disjoint from read and synced arrays,
/// and no cross-loop bound dependences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapSpec {
    /// The top `do` statement of the nest that immediately follows the
    /// sync call (statement ids survive restructuring).
    pub stmt: StmtId,
    /// Loop variable of the nest loop iterating the overlapped axis;
    /// the interior/boundary split clamps this variable's range.
    pub var: String,
    /// The overlapped grid axis: the *last* cut axis the sync
    /// exchanges. Earlier axes complete eagerly because later axes'
    /// sends include corner data received from them.
    pub axis: usize,
    /// Boundary width at the low end of the loop range (max ghost
    /// layers any synced array receives from the lower neighbor).
    pub low_width: u64,
    /// Boundary width at the high end (max upper ghost layers).
    pub high_width: u64,
}

/// Which interpreter backend executes the plan — carried in the plan
/// (and its JSON artifact) so a remote run selects the same engine the
/// submitting client did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EnginePref {
    /// Tree-walk every statement (the reference engine).
    #[default]
    Tree,
    /// Compiled fused kernels for eligible comm-free loop nests,
    /// tree-walk for everything else. Bit-exact with `Tree`.
    Kernel,
}

impl EnginePref {
    /// Stable lower-case name (CLI flag value, plan JSON, trace tag).
    pub fn name(self) -> &'static str {
        match self {
            EnginePref::Tree => "tree",
            EnginePref::Kernel => "kernel",
        }
    }

    /// Parse a [`EnginePref::name`] back; `None` for unknown names.
    pub fn parse(s: &str) -> Option<EnginePref> {
        match s {
            "tree" => Some(EnginePref::Tree),
            "kernel" => Some(EnginePref::Kernel),
            _ => None,
        }
    }
}

impl std::fmt::Display for EnginePref {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Plan-independent source coordinates of a sync insertion gap: which
/// statement list of the main unit it sits in (identified by the
/// *parser-minted* id of the owning `do`/`if` statement, stable across
/// partitions) and the source-statement gap index within that list.
/// Mirrors the runtime checkpoint schema's cut-site record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CutSite {
    /// List discriminant: 0 = unit body, 1 = `do` body, 2 = `then` arm,
    /// 3 = `else if` arm, 4 = `else` arm.
    pub list_kind: u8,
    /// Source id of the statement owning the list (0 for the unit body).
    pub list_stmt: u32,
    /// `else if` arm ordinal (0 otherwise).
    pub arm: u32,
    /// Source-statement gap index within the list.
    pub gap: u64,
}

/// Everything the SPMD hook set needs at run time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpmdPlan {
    /// The grid partition (per-rank subgrid bounds, neighbors).
    pub partition: Partition,
    /// Status-array dimension→axis mappings (needed to slice slabs out of
    /// arbitrary-rank arrays), keyed by array name.
    pub dim_axis: BTreeMap<String, Vec<Option<usize>>>,
    /// Synchronization points by id.
    pub syncs: BTreeMap<u32, SyncSpec>,
    /// Overlap opportunities by sync id (subset of `syncs`): halo
    /// exchanges whose following loop nest can hide the last-axis
    /// exchange behind interior computation.
    pub overlaps: BTreeMap<u32, OverlapSpec>,
    /// Self-dependent loops by id.
    pub self_loops: BTreeMap<u32, SelfLoopSpec>,
    /// Reductions (also encoded in the call names; kept for reporting).
    pub reduces: Vec<ReduceSpec>,
    /// Output fills by id: before a `write` that references status-array
    /// elements, `acf_fill_<id>` allgathers the listed arrays so every
    /// rank holds the complete field (ranks otherwise only own their
    /// subgrid).
    pub fills: BTreeMap<u32, Vec<String>>,
    /// Checkpoint-safe synchronization points: sync id → the id of its
    /// `call acf_sync_<id>` statement *in the main program unit*. At the
    /// start of such a call every rank has drained its pending requests
    /// (the hook set completes in-flight receives before dispatching any
    /// sync) and the control stack is just the main unit, so the
    /// interpreter state is fully restorable from a per-rank snapshot.
    /// Syncs hoisted into subroutines are excluded — their call-stack
    /// context cannot be re-entered from a flat cursor.
    pub checkpoint_syncs: BTreeMap<u32, StmtId>,
    /// Source coordinates of each checkpoint-safe sync's insertion gap
    /// (same keys as [`SpmdPlan::checkpoint_syncs`]). Statement ids in
    /// here are *parser-minted* — stable across compiles of the same
    /// source regardless of partition — so an elastic resume can map a
    /// cut taken under one partition onto this plan's statement ids.
    /// Empty on plan artifacts that predate elastic resume.
    #[serde(default)]
    pub checkpoint_sites: BTreeMap<u32, CutSite>,
    /// Table-1 statistics carried through from the sync plan.
    pub sync_before: u64,
    /// See [`SpmdPlan::sync_before`].
    pub sync_after: u64,
    /// Which execution engine should run this plan. Serialized with the
    /// plan so a remote (`--server`) run uses the engine the client
    /// requested.
    pub engine: EnginePref,
    /// Worker threads for the kernel engine's interior split (1 =
    /// sequential kernels). Ignored by the tree engine.
    pub threads: u32,
    /// Statement ids of outermost comm-free loop nests in the
    /// *transformed* program that the kernel compiler proved eligible.
    /// The kernel engine compiles exactly these; an empty list with
    /// `engine == Kernel` means "discover at load time".
    pub kernel_nests: Vec<StmtId>,
}

impl SpmdPlan {
    /// Number of ranks the plan targets.
    pub fn ranks(&self) -> u32 {
        self.partition.spec.tasks()
    }

    /// Axes with more than one part.
    pub fn cut_axes(&self) -> Vec<usize> {
        self.partition
            .spec
            .parts
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 1)
            .map(|(a, _)| a)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocfd_grid::{partition, GridShape, PartitionSpec};

    #[test]
    fn cut_axes_from_spec() {
        let p = partition(&GridShape::d3(40, 40, 10), &PartitionSpec::new(&[2, 1, 2]));
        let plan = SpmdPlan {
            partition: p,
            dim_axis: BTreeMap::new(),
            syncs: BTreeMap::new(),
            overlaps: BTreeMap::new(),
            self_loops: BTreeMap::new(),
            reduces: vec![],
            fills: BTreeMap::new(),
            checkpoint_syncs: BTreeMap::new(),
            checkpoint_sites: BTreeMap::new(),
            sync_before: 0,
            sync_after: 0,
            engine: EnginePref::Tree,
            threads: 1,
            kernel_nests: vec![],
        };
        assert_eq!(plan.cut_axes(), vec![0, 2]);
        assert_eq!(plan.ranks(), 4);
    }

    #[test]
    fn plan_serializes() {
        let p = partition(&GridShape::d2(10, 10), &PartitionSpec::new(&[2, 1]));
        let plan = SpmdPlan {
            partition: p,
            dim_axis: BTreeMap::from([("v".into(), vec![Some(0), Some(1)])]),
            syncs: BTreeMap::from([(
                0,
                SyncSpec {
                    id: 0,
                    arrays: vec![SyncArray {
                        array: "v".into(),
                        ghost: vec![[1, 1], [0, 0]],
                    }],
                    merged: 2,
                },
            )]),
            overlaps: BTreeMap::from([(
                0,
                OverlapSpec {
                    stmt: StmtId(7),
                    var: "i".into(),
                    axis: 0,
                    low_width: 1,
                    high_width: 1,
                },
            )]),
            self_loops: BTreeMap::new(),
            reduces: vec![ReduceSpec {
                var: "err".into(),
                op: "max".into(),
            }],
            fills: BTreeMap::new(),
            checkpoint_syncs: BTreeMap::from([(0, StmtId(3))]),
            checkpoint_sites: BTreeMap::from([(
                0,
                CutSite {
                    list_kind: 1,
                    list_stmt: 2,
                    arm: 0,
                    gap: 1,
                },
            )]),
            sync_before: 5,
            sync_after: 1,
            engine: EnginePref::Kernel,
            threads: 4,
            kernel_nests: vec![StmtId(7)],
        };
        let dbg = format!("{plan:?}");
        assert!(dbg.contains("err"));
        assert!(dbg.contains("SyncSpec"));
    }
}
