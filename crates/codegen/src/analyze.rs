//! Codegen-side analyses: loop-axis inference and reduction recognition.

use autocfd_fortran::ast::{Expr, Stmt, StmtKind};
use autocfd_fortran::BinOp;
use autocfd_ir::{IndexPattern, LoopId, ProgramIr, UnitIr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The grid axis a loop's induction variable spans, if unambiguous.
///
/// A loop `do i = …` spans axis `a` when `i` appears as a subscript of
/// some status array in a dimension mapped to `a` within the loop's nest.
/// Loops whose variable indexes several different axes (rare, e.g.
/// diagonal sweeps) are not localized.
pub fn loop_axis(ir: &ProgramIr, unit: &UnitIr, id: LoopId) -> Option<usize> {
    let var = &unit.loop_info(id).var;
    if var.is_empty() {
        return None;
    }
    let mut axes: BTreeSet<usize> = BTreeSet::new();
    for acc in &unit.accesses {
        let in_nest = acc.loop_id.is_some_and(|l| unit.is_in_loop(l, id));
        if !in_nest {
            continue;
        }
        let info = match ir.status_arrays.get(&acc.array) {
            Some(i) => i,
            None => continue,
        };
        for (d, p) in acc.patterns.iter().enumerate() {
            if let IndexPattern::LoopVar { var: v, .. } = p {
                if v == var {
                    if let Some(Some(a)) = info.dim_axis.get(d) {
                        axes.insert(*a);
                    }
                }
            }
        }
    }
    if axes.len() == 1 {
        axes.into_iter().next()
    } else {
        None
    }
}

/// The constant sign of a loop's step (+1 / −1), if known.
pub fn loop_step_sign(step: Option<&Expr>) -> i64 {
    match step {
        None => 1,
        Some(e) => match e.const_int(&|_| None) {
            Some(v) if v < 0 => -1,
            Some(_) => 1,
            None => 1, // unknown step: assume ascending (documented)
        },
    }
}

/// Kind of recognized reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceOpKind {
    /// `x = max(x, e)` or `if (e .gt. x) x = e`.
    Max,
    /// `x = min(x, e)` or `if (e .lt. x) x = e`.
    Min,
    /// `x = x + e`.
    Sum,
}

impl ReduceOpKind {
    /// Name used in the generated `acf_reduce_<op>_<var>` call.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOpKind::Max => "max",
            ReduceOpKind::Min => "min",
            ReduceOpKind::Sum => "sum",
        }
    }
}

/// A recognized scalar reduction inside a field loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reduction {
    /// The reduced scalar.
    pub var: String,
    /// The operator.
    pub op: ReduceOpKind,
}

/// Recognize the scalar reductions computed by the statements of a loop
/// body (recursively). Patterns (the forms CFD convergence tests use):
///
/// * `x = max(x, e)` / `x = min(x, e)` / `x = amax1(x, e)` …
/// * `if (e .gt. x) x = e` and `if (x .lt. e) x = e` (and the min duals)
/// * `x = x + e` / `x = e + x`
pub fn detect_reductions(body: &[Stmt]) -> Vec<Reduction> {
    let mut out: Vec<Reduction> = Vec::new();
    let mut push = |var: &str, op: ReduceOpKind| {
        if !out.iter().any(|r| r.var == var) {
            out.push(Reduction {
                var: var.to_string(),
                op,
            });
        }
    };
    autocfd_fortran::ast::walk_stmts(body, &mut |s| match &s.kind {
        StmtKind::Assign { target, value } if target.indices.is_empty() => {
            if let Some(op) = assign_reduction(&target.name, value) {
                push(&target.name, op);
            }
        }
        StmtKind::LogicalIf { cond, stmt } => {
            if let StmtKind::Assign { target, value } = &stmt.kind {
                if target.indices.is_empty() {
                    if let Some(op) = guarded_reduction(&target.name, cond, value) {
                        push(&target.name, op);
                    }
                }
            }
        }
        _ => {}
    });
    out
}

/// `x = max(x, …)` / `x = x + e` forms.
fn assign_reduction(x: &str, value: &Expr) -> Option<ReduceOpKind> {
    match value {
        Expr::Index { name, indices } if matches!(name.as_str(), "max" | "amax1") => indices
            .iter()
            .any(|e| is_var(e, x))
            .then_some(ReduceOpKind::Max),
        Expr::Index { name, indices } if matches!(name.as_str(), "min" | "amin1") => indices
            .iter()
            .any(|e| is_var(e, x))
            .then_some(ReduceOpKind::Min),
        Expr::Bin {
            op: BinOp::Add,
            lhs,
            rhs,
        } => (is_var(lhs, x) || is_var(rhs, x)).then_some(ReduceOpKind::Sum),
        _ => None,
    }
}

/// `if (e .gt. x) x = e` forms: the guard compares the stored value
/// against the current `x`.
fn guarded_reduction(x: &str, cond: &Expr, value: &Expr) -> Option<ReduceOpKind> {
    if let Expr::Bin { op, lhs, rhs } = cond {
        let (e_side_left, x_side) = if is_var(rhs, x) {
            (true, false)
        } else if is_var(lhs, x) {
            (false, true)
        } else {
            return None;
        };
        // the assigned value must be the compared expression
        let compared = if e_side_left {
            lhs.as_ref()
        } else {
            rhs.as_ref()
        };
        if compared != value {
            return None;
        }
        let _ = x_side;
        return match (op, e_side_left) {
            (BinOp::Gt, true) | (BinOp::Lt, false) => Some(ReduceOpKind::Max),
            (BinOp::Lt, true) | (BinOp::Gt, false) => Some(ReduceOpKind::Min),
            _ => None,
        };
    }
    None
}

fn is_var(e: &Expr, name: &str) -> bool {
    matches!(e, Expr::Var(n) if n == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocfd_fortran::parse;
    use autocfd_ir::build_ir;

    fn body_of(src: &str) -> Vec<Stmt> {
        parse(src).unwrap().units[0].body.clone()
    }

    #[test]
    fn detects_max_intrinsic_form() {
        let b = body_of(
            "      program p
      do i = 1, 10
        err = max(err, d)
      end do
      end
",
        );
        assert_eq!(
            detect_reductions(&b),
            vec![Reduction {
                var: "err".into(),
                op: ReduceOpKind::Max
            }]
        );
    }

    #[test]
    fn detects_guarded_max_both_orders() {
        let b = body_of(
            "      program p
      do i = 1, 10
        if (d .gt. err) err = d
        if (small .lt. lo) lo = small
      end do
      end
",
        );
        let rs = detect_reductions(&b);
        assert!(rs.contains(&Reduction {
            var: "err".into(),
            op: ReduceOpKind::Max
        }));
        assert!(rs.contains(&Reduction {
            var: "lo".into(),
            op: ReduceOpKind::Min
        }));
    }

    #[test]
    fn detects_sum() {
        let b = body_of(
            "      program p
      do i = 1, 10
        s = s + v(i)
        t = v(i) + t
      end do
      end
",
        );
        let rs = detect_reductions(&b);
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().all(|r| r.op == ReduceOpKind::Sum));
    }

    #[test]
    fn ignores_non_reductions() {
        let b = body_of(
            "      program p
      do i = 1, 10
        x = y + 1.0
        z = max(a, b)
        if (a .gt. b) c = a
      end do
      end
",
        );
        assert!(detect_reductions(&b).is_empty());
    }

    #[test]
    fn guarded_assignment_must_store_compared_value() {
        // `if (d .gt. err) err = q` is NOT a max-reduction
        let b = body_of(
            "      program p
      do i = 1, 10
        if (d .gt. err) err = q
      end do
      end
",
        );
        assert!(detect_reductions(&b).is_empty());
    }

    #[test]
    fn loop_axis_inference() {
        let ir = build_ir(
            parse(
                "
!$acf grid(40, 20)
!$acf status v
      program p
      real v(40,20)
      integer i, j
      do i = 1, 40
        do j = 1, 20
          v(i,j) = 1.0
        end do
      end do
      end
",
            )
            .unwrap(),
        )
        .unwrap();
        let u = &ir.units[0];
        assert_eq!(loop_axis(&ir, u, LoopId(0)), Some(0));
        assert_eq!(loop_axis(&ir, u, LoopId(1)), Some(1));
    }

    #[test]
    fn ambiguous_axis_not_localized() {
        let ir = build_ir(
            parse(
                "
!$acf grid(40, 40)
!$acf status v
      program p
      real v(40,40)
      integer i
      do i = 1, 40
        v(i,i) = 1.0
      end do
      end
",
            )
            .unwrap(),
        )
        .unwrap();
        let u = &ir.units[0];
        assert_eq!(loop_axis(&ir, u, LoopId(0)), None);
    }

    #[test]
    fn step_sign() {
        use autocfd_fortran::Expr;
        assert_eq!(loop_step_sign(None), 1);
        assert_eq!(loop_step_sign(Some(&Expr::IntLit(2))), 1);
        assert_eq!(
            loop_step_sign(Some(&Expr::Un {
                op: autocfd_fortran::UnOp::Neg,
                expr: Box::new(Expr::IntLit(1))
            })),
            -1
        );
    }
}
