//! The store: frames, arrays, I/O queues, operation counters.

use crate::fasthash::FastMap;
use crate::value::{implicit_is_integer, ArrayVal, Value};
use autocfd_fortran::ast::{Type, Unit};
use std::collections::HashMap;

/// Handle to an array in the machine's array store (by-reference
/// argument passing: a dummy array aliases the caller's storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId(pub usize);

/// A runtime error with optional source-line context.
#[derive(Debug, Clone, PartialEq)]
pub struct RunError {
    /// Description.
    pub message: String,
    /// Source line, when known.
    pub line: u32,
}

impl RunError {
    /// New error without line context.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            line: 0,
        }
    }

    /// Attach a source line (kept if already set).
    pub fn at(mut self, line: u32) -> Self {
        if self.line == 0 {
            self.line = line;
        }
        self
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "runtime error: {}", self.message)
        } else {
            write!(f, "runtime error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for RunError {}

/// Operation counters (consumed by benchmarks and the cost model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Floating-point binary operations evaluated.
    pub flops: u64,
    /// Array element loads.
    pub loads: u64,
    /// Array element stores.
    pub stores: u64,
    /// Statements executed.
    pub stmts: u64,
}

/// One invocation frame: scalar values and array bindings by name.
#[derive(Debug, Default)]
pub struct Frame {
    /// Scalar variables.
    pub scalars: FastMap<String, Value>,
    /// Array bindings (name → store handle).
    pub arrays: FastMap<String, ArrayId>,
    /// Declared scalar types (for implicit-typing overrides).
    pub types: FastMap<String, Type>,
    /// The unit this frame executes.
    pub unit: String,
}

impl Frame {
    /// Is `name` an integer variable in this frame (declared or implicit)?
    pub fn is_integer(&self, name: &str) -> bool {
        match self.types.get(name) {
            Some(Type::Integer) => true,
            Some(_) => false,
            None => implicit_is_integer(name),
        }
    }

    /// Read a scalar; uninitialized variables default to 0 / 0.0 (many
    /// legacy CFD codes rely on zero-initialized COMMON storage).
    pub fn get_scalar(&self, name: &str) -> Value {
        self.scalars.get(name).cloned().unwrap_or_else(|| {
            if self.is_integer(name) {
                Value::Int(0)
            } else {
                Value::Real(0.0)
            }
        })
    }

    /// Write a scalar, coercing to the variable's type.
    pub fn set_scalar(&mut self, name: &str, v: Value) -> Result<(), RunError> {
        let stored = match (&v, self.is_integer(name)) {
            (Value::Real(r), true) => Value::Int(*r as i64),
            (Value::Int(i), false) => {
                if matches!(self.types.get(name), Some(Type::Logical)) {
                    return Err(RunError::new(format!("numeric store to logical `{name}`")));
                }
                Value::Real(*i as f64)
            }
            _ => v,
        };
        self.scalars.insert(name.to_string(), stored);
        Ok(())
    }
}

/// The machine: array store, I/O queues, counters.
#[derive(Debug, Default)]
pub struct Machine {
    /// All arrays ever allocated (frames hold handles into this store).
    pub arrays: Vec<ArrayVal>,
    /// List-directed input queue (consumed by `read`).
    pub input: std::collections::VecDeque<f64>,
    /// Captured `write` output lines.
    pub output: Vec<String>,
    /// Operation counters.
    pub ops: OpCounts,
    /// Statement-execution budget; 0 = unlimited. Exceeding it aborts
    /// with an error (guards against non-converging loops in tests).
    pub stmt_limit: u64,
    /// `common`-block array storage, shared across units: every unit
    /// declaring `common /blk/ a(...)` binds the same array.
    pub commons: HashMap<(String, String), ArrayId>,
}

impl Machine {
    /// Fresh machine with `input` queued for `read` statements.
    pub fn new(input: Vec<f64>) -> Self {
        Self {
            input: input.into(),
            ..Default::default()
        }
    }

    /// Allocate an array, returning its handle.
    pub fn alloc(&mut self, a: ArrayVal) -> ArrayId {
        self.arrays.push(a);
        ArrayId(self.arrays.len() - 1)
    }

    /// Shared access to an array.
    pub fn array(&self, id: ArrayId) -> &ArrayVal {
        &self.arrays[id.0]
    }

    /// Mutable access to an array.
    pub fn array_mut(&mut self, id: ArrayId) -> &mut ArrayVal {
        &mut self.arrays[id.0]
    }

    /// Count one executed statement, enforcing the budget.
    pub fn tick(&mut self) -> Result<(), RunError> {
        self.ops.stmts += 1;
        if self.stmt_limit != 0 && self.ops.stmts > self.stmt_limit {
            return Err(RunError::new(format!(
                "statement budget of {} exceeded (non-converging loop?)",
                self.stmt_limit
            )));
        }
        Ok(())
    }
}

/// Build a frame for `unit`: declared types recorded, local (non-dummy)
/// arrays allocated. Dummy parameters are bound by the caller.
pub fn build_frame(
    m: &mut Machine,
    unit: &Unit,
    bound_params: HashMap<String, Binding>,
) -> Result<Frame, RunError> {
    let mut frame = Frame {
        unit: unit.name.clone(),
        ..Default::default()
    };

    // declared types
    for d in &unit.decls {
        if let autocfd_fortran::DeclKind::Var { ty, names } = &d.kind {
            for n in names {
                frame.types.insert(n.name.clone(), *ty);
            }
        }
    }

    // parameter constants
    for (name, expr) in unit.parameters() {
        let lookup = |n: &str| match frame.scalars.get(n) {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        };
        if let Some(v) = expr.const_int(&lookup) {
            frame.scalars.insert(name.to_string(), Value::Int(v));
        } else {
            // real-valued parameter: evaluate literals only
            if let autocfd_fortran::Expr::RealLit(r) = expr {
                frame.scalars.insert(name.to_string(), Value::Real(*r));
            }
        }
    }

    // bind dummies first (so adjustable array bounds can see them)
    for (name, b) in bound_params {
        match b {
            Binding::Scalar(v) => {
                frame.scalars.insert(name, v);
            }
            Binding::Array(id) => {
                frame.arrays.insert(name, id);
            }
        }
    }

    // allocate local declared arrays (skip dummies already bound)
    let param_set: std::collections::HashSet<&str> =
        unit.params.iter().map(String::as_str).collect();
    for d in &unit.decls {
        let (names, is_int, common_block) = match &d.kind {
            autocfd_fortran::DeclKind::Var { ty, names } => (names, *ty == Type::Integer, None),
            autocfd_fortran::DeclKind::Dimension { names } => (names, false, None),
            autocfd_fortran::DeclKind::Common { names, block } => {
                (names, false, Some(block.clone()))
            }
            autocfd_fortran::DeclKind::Parameter { .. } => continue,
        };
        for n in names {
            if let Some(block) = &common_block {
                if n.dims.is_empty() {
                    return Err(RunError::new(format!(
                        "scalar `{}` in common /{block}/: common scalars are not \
                         supported — pass scalars as arguments",
                        n.name
                    ))
                    .at(d.line));
                }
                // shared storage: every unit declaring this block member
                // binds the same array (first declaration allocates)
                let key = (block.clone(), n.name.clone());
                if let Some(&id) = m.commons.get(&key) {
                    frame.arrays.insert(n.name.clone(), id);
                    continue;
                }
            }
            if n.dims.is_empty() || param_set.contains(n.name.as_str()) {
                continue;
            }
            if frame.arrays.contains_key(&n.name) {
                continue; // e.g. typed twice (real + dimension)
            }
            let lookup = |nm: &str| match frame.scalars.get(nm) {
                Some(Value::Int(v)) => Some(*v),
                Some(Value::Real(v)) => Some(*v as i64),
                None => None,
                _ => None,
            };
            let mut bounds = Vec::with_capacity(n.dims.len());
            for dim in &n.dims {
                let hi = dim.upper.const_int(&lookup).ok_or_else(|| {
                    RunError::new(format!(
                        "cannot resolve bound of `{}` in unit `{}`",
                        n.name, unit.name
                    ))
                    .at(d.line)
                })?;
                let lo = match &dim.lower {
                    Some(e) => e.const_int(&lookup).ok_or_else(|| {
                        RunError::new(format!("cannot resolve lower bound of `{}`", n.name))
                            .at(d.line)
                    })?,
                    None => 1,
                };
                bounds.push((lo, hi));
            }
            let id = m.alloc(ArrayVal::new(bounds, is_int).map_err(|e| e.at(d.line))?);
            frame.arrays.insert(n.name.clone(), id);
            if let Some(block) = &common_block {
                m.commons.insert((block.clone(), n.name.clone()), id);
            }
        }
    }
    Ok(frame)
}

/// A value bound to a dummy parameter at a call.
#[derive(Debug, Clone)]
pub enum Binding {
    /// Scalar (copy-in; copy-out is handled by the caller).
    Scalar(Value),
    /// Array, by reference.
    Array(ArrayId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocfd_fortran::parse;

    #[test]
    fn frame_implicit_and_declared_types() {
        let f = parse(
            "      program p
      real n2x
      integer xcount
      x = 1
      end
",
        )
        .unwrap();
        let mut m = Machine::default();
        let frame = build_frame(&mut m, &f.units[0], HashMap::new()).unwrap();
        assert!(frame.is_integer("i"));
        assert!(!frame.is_integer("x"));
        assert!(
            !frame.is_integer("n2x"),
            "declared real overrides implicit integer"
        );
        assert!(
            frame.is_integer("xcount"),
            "declared integer overrides implicit real"
        );
    }

    #[test]
    fn scalar_store_coerces() {
        let mut fr = Frame::default();
        fr.set_scalar("i", Value::Real(2.9)).unwrap();
        assert_eq!(fr.get_scalar("i"), Value::Int(2));
        fr.set_scalar("x", Value::Int(3)).unwrap();
        assert_eq!(fr.get_scalar("x"), Value::Real(3.0));
    }

    #[test]
    fn uninitialized_defaults() {
        let fr = Frame::default();
        assert_eq!(fr.get_scalar("i"), Value::Int(0));
        assert_eq!(fr.get_scalar("x"), Value::Real(0.0));
    }

    #[test]
    fn frame_allocates_local_arrays_with_parameters() {
        let f = parse(
            "      program p
      integer n
      parameter (n = 10)
      real v(n, 0:n+1)
      x = 1
      end
",
        )
        .unwrap();
        let mut m = Machine::default();
        let frame = build_frame(&mut m, &f.units[0], HashMap::new()).unwrap();
        let id = frame.arrays["v"];
        assert_eq!(m.array(id).bounds, vec![(1, 10), (0, 11)]);
    }

    #[test]
    fn dummy_params_not_allocated() {
        let f = parse(
            "      subroutine s(v, n)
      integer n
      real v(n, n)
      return
      end
",
        )
        .unwrap();
        let mut m = Machine::default();
        let caller_arr = m.alloc(ArrayVal::new(vec![(1, 4), (1, 4)], false).unwrap());
        let frame = build_frame(
            &mut m,
            &f.units[0],
            HashMap::from([
                ("v".to_string(), Binding::Array(caller_arr)),
                ("n".to_string(), Binding::Scalar(Value::Int(4))),
            ]),
        )
        .unwrap();
        assert_eq!(frame.arrays["v"], caller_arr);
        assert_eq!(m.arrays.len(), 1, "no duplicate allocation for the dummy");
    }

    #[test]
    fn unresolvable_bound_errors() {
        let f = parse(
            "      program p
      real v(m)
      x = 1
      end
",
        )
        .unwrap();
        let mut m = Machine::default();
        assert!(build_frame(&mut m, &f.units[0], HashMap::new()).is_err());
    }

    #[test]
    fn stmt_budget_enforced() {
        let mut m = Machine {
            stmt_limit: 3,
            ..Default::default()
        };
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert!(m.tick().is_err());
    }
}
