#![warn(missing_docs)]

//! Fortran interpreter: executes the frontend's AST.
//!
//! Auto-CFD's output is *source code*; to validate that the transformed
//! SPMD program computes the same flow field as the sequential original —
//! and to drive real parallel executions for the benchmarks — this crate
//! interprets the Fortran subset directly:
//!
//! * [`value`] — runtime values (integer/real/logical with Fortran's
//!   implicit-typing rule) and column-major arrays with declared bounds;
//! * [`machine`] — the store: scalars per frame, arrays by reference
//!   (Fortran argument semantics), list-directed I/O queues, and
//!   operation counters used by benchmarks;
//! * [`eval`] — expression evaluation including the standard intrinsics
//!   (`abs`, `max`, `min`, `sqrt`, `mod`, …) and user function calls;
//! * [`exec`] — statement execution with `do`/`do while`, block and
//!   logical `if`, `goto` (resolved against enclosing statement lists),
//!   subroutine calls with by-reference arrays and copy-back scalars;
//! * [`Hooks`] — an escape hatch for the SPMD runtime: `call acf_*`
//!   statements inserted by the restructurer are routed to a hook that
//!   performs halo exchanges / reductions through
//!   [`autocfd_runtime::Comm`] before ordinary execution resumes.
//!
//! Restrictions (documented, enforced by errors): status arrays keep
//! their names across units (no dummy-argument renaming of status
//! arrays); array dummy arguments assume the caller's shape.

pub mod elastic;
pub mod engine;
pub mod eval;
pub mod exec;
pub mod fasthash;
pub mod forecast;
pub mod kernel;
pub mod machine;
pub mod spmd;
pub mod value;

pub use elastic::repartition;
pub use engine::{kernel_nests, Engine, KernelEngine, RunConfig, TreeEngine};
pub use exec::{Hooks, LoopSplit, NoHooks};
pub use forecast::{forecast, PhaseForecast, RankTraffic};
pub use kernel::{eligible_nests, KernelSet};
pub use machine::{ArrayId, Binding, Frame, Machine, OpCounts, RunError};
pub use spmd::{
    ghost_region, owned_region, region_len, restore_into, verify_owned_regions,
    verify_rank_owned_region, CheckpointOpts, RankResult, RankRun, SpmdHooks,
};
pub use value::ArrayVal;
pub use value::Value;

// Tree-walking executor internals, exposed for the test suite and the
// codegen round-trip checks. Application code should build a
// [`engine::RunConfig`] instead — it is the one surface that carries
// engine selection and resume.
#[doc(hidden)]
pub use exec::{
    run_program, run_program_capture, run_program_capture_from, run_program_with_hooks,
};
