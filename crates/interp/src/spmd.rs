//! SPMD parallel execution of restructured programs.
//!
//! The restructurer ([`autocfd_codegen`]) emits `call acf_*` statements;
//! this module implements them through the message-passing runtime so the
//! generated parallel program actually runs on `n` rank-threads:
//!
//! * `acf_init` — bind the rank's subgrid bounds to the `acflo<a>` /
//!   `acfhi<a>` scalars used by localized loop bounds;
//! * `acf_sync_<k>` — the combined halo exchange of a synchronization
//!   point: per array and cut axis, exchange ghost slabs with both
//!   neighbors (axes in ascending order, widening the slab by the ghost
//!   layers already exchanged so corner points arrive correctly);
//! * `acf_pre_<k>` / `acf_post_<k>` — the mirror-image schedule of a
//!   self-dependent loop: `pre` ships *old* boundary values against the
//!   sweep direction and blocks on the *updated* boundary from the
//!   upstream neighbor (the pipeline); `post` forwards the freshly
//!   computed boundary downstream;
//! * `acf_reduce_<op>_<var>` — global reduction of a scalar (the CFD
//!   convergence error).
//!
//! Because every rank holds full-size arrays indexed globally, a slab is
//! identified purely by global index ranges; sender and receiver compute
//! the *same* region (from the receiving rank's subgrid), so payloads
//! need no headers.
//!
//! With overlap enabled (see [`SpmdHooks::new`]), a sync point the plan
//! marked eligible posts its *last*-axis exchange as `isend`/`irecv`
//! pairs and returns with the receives still in flight; the engine then
//! splits the following loop nest ([`crate::exec::Hooks::split_loop`])
//! so its interior runs while the messages travel, completes the
//! receives, and finishes with the two boundary strips.

use crate::exec::{run_program_capture_from_with, run_program_capture_with, Hooks, LoopSplit};
use crate::kernel::KernelSet;
use crate::machine::{ArrayId, Frame, Machine, RunError};
use crate::value::{ArrayVal, Value};
use autocfd_codegen::{SelfLoopSpec, SpmdPlan, SyncSpec};
use autocfd_fortran::ast::{Stmt, StmtId};
use autocfd_fortran::SourceFile;
use autocfd_grid::Partition;
use autocfd_runtime::checkpoint::{
    write_snapshot, ArraySnap, Cursor, DoProgress, OpsSnap, ScalarSnap, Snapshot,
};
use autocfd_runtime::{Comm, EventKind, Recorder, RecvRequest, ReduceOp, TraceEvent, WireStats};
use std::path::PathBuf;
use std::time::Instant;

/// One in-flight ghost receive with the regions its payload fills.
struct PendingRecv {
    req: RecvRequest,
    /// `(array, region)` pairs in payload order (aggregated message).
    regions: Vec<(ArrayId, Vec<(i64, i64)>)>,
}

/// The last-axis exchange a sync left in flight, to be completed by the
/// split of the nest at `stmt` (or defensively by the next hook call).
struct PendingOverlap {
    stmt: StmtId,
    split: LoopSplit,
    recvs: Vec<PendingRecv>,
}

/// Checkpoint behavior for one rank (see
/// [`crate::engine::RunConfig::checkpoint`]).
#[derive(Debug, Clone)]
pub struct CheckpointOpts {
    /// Write a snapshot every `every`-th visit of a checkpoint-safe sync
    /// point (0 disables writing; chaos injection still counts visits).
    pub every: u64,
    /// Directory snapshots go to (per-epoch subdirectories inside).
    pub dir: PathBuf,
    /// Fault injection for tests and the chaos CI job: fail the rank
    /// with a `chaos-abort` error when the visit counter reaches this
    /// value, *before* any snapshot or exchange of that visit.
    pub chaos_abort_after: Option<u64>,
}

/// The hook set wiring `acf_*` calls to the runtime.
pub struct SpmdHooks<'a> {
    /// The executable plan.
    pub plan: &'a SpmdPlan,
    /// This rank's communicator.
    pub comm: &'a Comm,
    /// Exploit the plan's overlap opportunities: split eligible nests
    /// and hide their sync's last-axis exchange behind the interior
    /// computation. Off (the default constructors) runs every sync
    /// blocking.
    pub overlap: bool,
    /// The exchange currently in flight, if any.
    pending: Option<PendingOverlap>,
    /// Whether the engine is currently executing the split nest of
    /// `pending` — inner loops of the nest must not trigger the
    /// blocking fallback of [`SpmdHooks::split_loop`].
    in_split: bool,
    /// Checkpoint/chaos configuration; `None` runs without either.
    ckpt: Option<CheckpointOpts>,
    /// Visits of checkpoint-safe sync points so far, including those
    /// replayed into a restored run (the snapshot's epoch).
    visits: u64,
    /// The last `acf_*` call site the engine reported at depth 0.
    site: Option<(StmtId, Vec<DoProgress>)>,
    /// Set on resume: the first checkpoint-safe visit is the re-executed
    /// snapshot sync itself and must not be counted (or written) again.
    resume_skip: bool,
}

impl<'a> SpmdHooks<'a> {
    /// Hook set for one rank; `overlap` enables compute/communication
    /// overlap at the plan's eligible sync points.
    pub fn new(plan: &'a SpmdPlan, comm: &'a Comm, overlap: bool) -> Self {
        Self {
            plan,
            comm,
            overlap,
            pending: None,
            in_split: false,
            ckpt: None,
            visits: 0,
            site: None,
            resume_skip: false,
        }
    }
}

/// Result of one rank's execution.
#[derive(Debug)]
pub struct RankResult {
    /// The rank's machine (arrays, output, op counts).
    pub machine: Machine,
    /// The rank's final main-program frame (array name bindings).
    pub frame: Frame,
    /// Communication statistics `(messages, f64 elements, barriers,
    /// reductions)` — real measured traffic, used by the ablation
    /// benches.
    pub comm_stats: (u64, u64, u64, u64),
    /// Wire-level counters from the transport: messages and bytes
    /// actually moved (framed size over TCP, payload size in-process).
    pub wire_stats: WireStats,
    /// Phase names in index order; `trace` events refer to these via
    /// their `phase` field.
    pub phases: Vec<String>,
    /// The rank's communication trace (see
    /// [`autocfd_runtime::trace`]): every send/recv/collective with
    /// wall-clock timestamps, renderable as a timeline.
    pub trace: Vec<autocfd_runtime::TraceEvent>,
}

impl Hooks for SpmdHooks<'_> {
    fn call(&mut self, m: &mut Machine, frame: &mut Frame, name: &str) -> Result<bool, RunError> {
        if name == "acf_init" {
            // `acf_init` only seeds the frame's subgrid bound scalars —
            // it reads no arrays, so it is exempt from the completion
            // fallback below. It is exactly the hook that runs between
            // a sync and a called subroutine's leading nest, and
            // draining there would forfeit every call-carried overlap
            // (see the restructurer's `overlap_spec`).
            self.init(frame)?;
            return Ok(true);
        }
        // Complete any exchange still in flight before handling a new
        // runtime call. Normally the split nest's `finish_split` already
        // did; this covers degraded paths where another hook runs first
        // (the receives then land in the phase of the sync that posted
        // them, keeping per-phase traffic identical to blocking mode).
        self.complete_pending(m)?;
        if let Some(rest) = name.strip_prefix("acf_sync_") {
            let id: u32 = rest
                .parse()
                .map_err(|_| RunError::new(format!("bad sync id in `{name}`")))?;
            let spec = self
                .plan
                .syncs
                .get(&id)
                .ok_or_else(|| RunError::new(format!("unknown sync id {id}")))?;
            // With `complete_pending` done and the exchange not yet
            // started, no request is in flight anywhere in this rank —
            // the consistent cut the snapshot is defined at.
            self.maybe_checkpoint(m, frame, id)?;
            self.comm.enter_phase(&format!("sync_{id}"));
            self.sync(m, frame, spec)?;
            return Ok(true);
        }
        if let Some(rest) = name.strip_prefix("acf_pre_") {
            let id: u32 = rest
                .parse()
                .map_err(|_| RunError::new(format!("bad self-loop id in `{name}`")))?;
            let spec = self.self_spec(id)?;
            self.comm.enter_phase(&format!("pre_{id}"));
            self.pre(m, frame, &spec)?;
            return Ok(true);
        }
        if let Some(rest) = name.strip_prefix("acf_post_") {
            let id: u32 = rest
                .parse()
                .map_err(|_| RunError::new(format!("bad self-loop id in `{name}`")))?;
            let spec = self.self_spec(id)?;
            self.comm.enter_phase(&format!("post_{id}"));
            self.post(m, frame, &spec)?;
            return Ok(true);
        }
        if let Some(rest) = name.strip_prefix("acf_fill_") {
            let id: u32 = rest
                .parse()
                .map_err(|_| RunError::new(format!("bad fill id in `{name}`")))?;
            let arrays = self
                .plan
                .fills
                .get(&id)
                .cloned()
                .ok_or_else(|| RunError::new(format!("unknown fill id {id}")))?;
            self.comm.enter_phase(&format!("fill_{id}"));
            self.fill(m, frame, id, &arrays)?;
            return Ok(true);
        }
        if let Some(rest) = name.strip_prefix("acf_reduce_") {
            let (op, var) = rest
                .split_once('_')
                .ok_or_else(|| RunError::new(format!("bad reduce call `{name}`")))?;
            let op = match op {
                "max" => ReduceOp::Max,
                "min" => ReduceOp::Min,
                "sum" => ReduceOp::Sum,
                other => return Err(RunError::new(format!("bad reduce op `{other}`"))),
            };
            let local = frame.get_scalar(var).as_f64()?;
            self.comm.enter_phase(&format!("reduce_{rest}"));
            let global = self
                .comm
                .allreduce(local, op)
                .map_err(|e| RunError::new(e.to_string()))?;
            frame.set_scalar(var, Value::Real(global))?;
            return Ok(true);
        }
        Ok(false)
    }

    fn split_loop(&mut self, m: &mut Machine, stmt: &Stmt) -> Result<Option<LoopSplit>, RunError> {
        if self.in_split {
            return Ok(None); // a loop inside the nest being split
        }
        let Some(p) = self.pending.as_ref() else {
            return Ok(None);
        };
        if p.stmt == stmt.id {
            self.in_split = true;
            return Ok(Some(p.split.clone()));
        }
        // A different loop runs before the overlapped nest (the nest was
        // the first statement of a loop body whose final iteration just
        // ended, or control took an unforeseen path): complete the
        // exchange now so no statement can observe stale ghost cells.
        self.complete_pending(m)?;
        Ok(None)
    }

    fn finish_split(&mut self, m: &mut Machine, _frame: &mut Frame) -> Result<(), RunError> {
        self.in_split = false;
        self.complete_pending(m)
    }

    fn recorder(&self) -> Option<&dyn Recorder> {
        Some(self.comm)
    }

    fn wants_cursor(&self) -> bool {
        self.ckpt.is_some()
    }

    fn hook_site(&mut self, stmt: StmtId, cursor: &[DoProgress]) {
        self.site = Some((stmt, cursor.to_vec()));
    }
}

impl SpmdHooks<'_> {
    fn self_spec(&self, id: u32) -> Result<SelfLoopSpec, RunError> {
        self.plan
            .self_loops
            .get(&id)
            .cloned()
            .ok_or_else(|| RunError::new(format!("unknown self-loop id {id}")))
    }

    fn init(&self, frame: &mut Frame) -> Result<(), RunError> {
        let sg = self.plan.partition.subgrid(self.comm.rank() as u32);
        for a in 0..sg.lo.len() {
            frame.set_scalar(&format!("acflo{}", a + 1), Value::Int(sg.lo[a] as i64))?;
            frame.set_scalar(&format!("acfhi{}", a + 1), Value::Int(sg.hi[a] as i64))?;
        }
        Ok(())
    }

    fn array_id(&self, frame: &Frame, array: &str) -> Result<ArrayId, RunError> {
        frame.arrays.get(array).copied().ok_or_else(|| {
            RunError::new(format!(
                "status array `{array}` is not bound in unit `{}` at a communication \
                 point (status arrays must keep their names across units)",
                frame.unit
            ))
        })
    }

    fn pack(&self, m: &Machine, id: ArrayId, region: &[(i64, i64)]) -> Vec<f64> {
        let arr = m.array(id);
        let mut out = Vec::new();
        let mut idx: Vec<i64> = region.iter().map(|&(lo, _)| lo).collect();
        loop {
            out.push(arr.get(&idx).expect("region inside bounds"));
            if !advance(&mut idx, region) {
                break;
            }
        }
        out
    }

    fn unpack(
        &self,
        m: &mut Machine,
        id: ArrayId,
        region: &[(i64, i64)],
        data: &[f64],
    ) -> Result<(), RunError> {
        let arr = m.array_mut(id);
        let mut idx: Vec<i64> = region.iter().map(|&(lo, _)| lo).collect();
        let mut k = 0usize;
        loop {
            let v = *data
                .get(k)
                .ok_or_else(|| RunError::new("halo payload shorter than region"))?;
            arr.set(&idx, v)?;
            k += 1;
            if !advance(&mut idx, region) {
                break;
            }
        }
        if k != data.len() {
            return Err(RunError::new("halo payload longer than region"));
        }
        Ok(())
    }

    /// Wait for and unpack every in-flight ghost receive. The `Recv`
    /// trace events are recorded here — at completion — which is what
    /// the profiler's "% comm hidden" figure measures the overlap span
    /// against.
    fn complete_pending(&mut self, m: &mut Machine) -> Result<(), RunError> {
        let Some(p) = self.pending.take() else {
            return Ok(());
        };
        for pr in p.recvs {
            // adaptive wait: a short test_recv spin catches messages that
            // already arrived during the interior chunk without the
            // blocking path's syscall, then parks properly
            let data = self
                .comm
                .wait_recv_adaptive(pr.req)
                .map_err(|e| RunError::new(e.to_string()))?;
            let mut off = 0usize;
            for (id, region) in &pr.regions {
                let len = region_len(region) as usize;
                let slice = data
                    .get(off..off + len)
                    .ok_or_else(|| RunError::new("aggregated halo payload shorter than regions"))?;
                self.unpack(m, *id, region, slice)?;
                off += len;
            }
            if off != data.len() {
                return Err(RunError::new("aggregated halo payload longer than regions"));
            }
        }
        Ok(())
    }

    /// Count a visit of a checkpoint-safe sync point and, when due,
    /// write this rank's snapshot. Runs at the *start* of the sync —
    /// after the universal `complete_pending` and before any exchange —
    /// so the cut is consistent by construction: every rank that reaches
    /// visit `E` has completed all communication of visits `< E` and
    /// started none of visit `E` (see [`autocfd_runtime::checkpoint`]).
    fn maybe_checkpoint(
        &mut self,
        m: &mut Machine,
        frame: &Frame,
        sync_id: u32,
    ) -> Result<(), RunError> {
        let Some(opts) = self.ckpt.clone() else {
            return Ok(());
        };
        // only syncs the plan marked checkpoint-safe (their call lives in
        // the main unit) count, and only when dispatched from that site —
        // the same sync id reached through a subroutine has no cursor
        let Some(&safe_stmt) = self.plan.checkpoint_syncs.get(&sync_id) else {
            return Ok(());
        };
        let Some((at, cursor)) = self.site.clone() else {
            return Ok(());
        };
        if at != safe_stmt {
            return Ok(());
        }
        if self.resume_skip {
            // the re-executed snapshot sync: its visit is already in
            // `visits` (the snapshot's epoch), and its snapshot exists
            self.resume_skip = false;
            return Ok(());
        }
        self.visits += 1;
        // the telemetry plane reports checkpoint lag as epochs-behind,
        // so every counted visit updates the rank's epoch counter
        self.comm.note_checkpoint_epoch(self.visits);
        if let Some(n) = opts.chaos_abort_after {
            if self.visits == n {
                return Err(RunError::new(format!(
                    "chaos-abort injected at checkpoint-safe sync visit {n}"
                )));
            }
        }
        if opts.every > 0 && self.visits.is_multiple_of(opts.every) {
            let snap = self.snapshot(m, frame, sync_id, self.visits, at, &cursor)?;
            write_snapshot(&opts.dir, &snap)
                .map_err(|e| RunError::new(format!("checkpoint write failed: {e}")))?;
        }
        Ok(())
    }

    /// Build this rank's snapshot: every live array (common blocks and
    /// main-frame locals), every main-frame scalar, the I/O queues, and
    /// the op counters, all bit-exact (f64 payloads travel as raw bits).
    fn snapshot(
        &self,
        m: &Machine,
        frame: &Frame,
        sync_id: u32,
        epoch: u64,
        at: StmtId,
        cursor: &[DoProgress],
    ) -> Result<Snapshot, RunError> {
        let array_snap = |name: &str, arr: &ArrayVal| ArraySnap {
            name: name.to_string(),
            bounds: arr.bounds.clone(),
            is_int: arr.is_int,
            data: arr.data.iter().map(|v| v.to_bits()).collect(),
        };
        let mut commons: Vec<(String, String, ArraySnap)> = m
            .commons
            .iter()
            .map(|((blk, name), id)| (blk.clone(), name.clone(), array_snap(name, m.array(*id))))
            .collect();
        commons.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let common_ids: std::collections::HashSet<usize> =
            m.commons.values().map(|id| id.0).collect();
        let mut arrays: Vec<ArraySnap> = frame
            .arrays
            .iter()
            .filter(|(_, id)| !common_ids.contains(&id.0))
            .map(|(name, id)| array_snap(name, m.array(*id)))
            .collect();
        arrays.sort_by(|a, b| a.name.cmp(&b.name));
        let mut scalars: Vec<(String, ScalarSnap)> = frame
            .scalars
            .iter()
            .map(|(name, v)| {
                let s = match v {
                    Value::Int(i) => ScalarSnap::Int(*i),
                    Value::Real(r) => ScalarSnap::Real(r.to_bits()),
                    Value::Logical(b) => ScalarSnap::Logical(*b),
                    Value::Str(s) => ScalarSnap::Str(s.clone()),
                };
                (name.clone(), s)
            })
            .collect();
        scalars.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Snapshot {
            rank: self.comm.rank(),
            ranks: self.comm.size(),
            parts: self.plan.partition.spec.parts.clone(),
            epoch,
            sync_id,
            cursor: Cursor {
                stmt: at.0,
                dos: cursor.to_vec(),
            },
            cut: self.plan.checkpoint_sites.get(&sync_id).map(|s| {
                autocfd_runtime::checkpoint::CutSite {
                    list_kind: s.list_kind,
                    list_stmt: s.list_stmt,
                    arm: s.arm,
                    gap: s.gap,
                }
            }),
            arrays,
            commons,
            scalars,
            input: m.input.iter().map(|v| v.to_bits()).collect(),
            output: m.output.clone(),
            ops: OpsSnap {
                flops: m.ops.flops,
                loads: m.ops.loads,
                stores: m.ops.stores,
                stmts: m.ops.stmts,
            },
        })
    }

    /// The combined halo exchange of one synchronization point. The
    /// paper's combining step "aggregates" the member communications:
    /// all arrays of the point travel in ONE message per neighbor per
    /// axis direction (verified by the `ablation_combine` bench, which
    /// counts real messages).
    ///
    /// With overlap enabled and this sync marked eligible, the *last*
    /// exchanged axis is posted nonblocking: sends complete at post
    /// (buffered), receives are left in flight for the following split
    /// nest to complete. Earlier axes still complete eagerly — their
    /// received corner layers widen the later axes' slabs.
    fn sync(&mut self, m: &mut Machine, frame: &Frame, spec: &SyncSpec) -> Result<(), RunError> {
        let mut gap = Instant::now();
        let me = self.comm.rank() as u32;
        let cut = self.plan.cut_axes();
        // the axis whose messages may stay in flight, with the split
        // geometry for the nest that will hide them
        let fly: Option<(usize, StmtId, LoopSplit)> = if self.overlap {
            self.plan.overlaps.get(&spec.id).map(|ov| {
                (
                    ov.axis,
                    ov.stmt,
                    LoopSplit {
                        var: ov.var.clone(),
                        low_width: ov.low_width,
                        high_width: ov.high_width,
                    },
                )
            })
        } else {
            None
        };
        let mut pending_recvs: Vec<PendingRecv> = Vec::new();
        // resolve ids/mappings once; per-array `done` widths track the
        // axes already exchanged (corner correctness)
        let mut ids = Vec::with_capacity(spec.arrays.len());
        let mut maps = Vec::with_capacity(spec.arrays.len());
        let mut done: Vec<Vec<[u64; 2]>> = Vec::with_capacity(spec.arrays.len());
        for sa in &spec.arrays {
            ids.push(self.array_id(frame, &sa.array)?);
            maps.push(self.dim_axis_of(&sa.array)?);
            done.push(vec![[0u64; 2]; sa.ghost.len()]);
        }
        for &axis in &cut {
            let in_flight = fly.as_ref().is_some_and(|&(a, _, _)| a == axis);
            // ---- sends: one aggregated message per neighbor direction
            for dir in [-1i32, 1] {
                let Some(nb) = self.plan.partition.neighbor(me, axis, dir) else {
                    continue;
                };
                let mut payload = Vec::new();
                for (ai, sa) in spec.arrays.iter().enumerate() {
                    let [gl, gh] = sa.ghost.get(axis).copied().unwrap_or([0, 0]);
                    // the neighbor in `dir` needs, from me, the layers it
                    // receives from its `-dir` side
                    let their_w = if dir > 0 { gl } else { gh };
                    if their_w == 0 {
                        continue;
                    }
                    if let Some(region) = ghost_region(
                        &self.plan.partition,
                        &m.array(ids[ai]).bounds,
                        &maps[ai],
                        nb,
                        axis,
                        -dir,
                        their_w,
                        &done[ai],
                    ) {
                        payload.extend(self.pack(m, ids[ai], &region));
                    }
                }
                if !payload.is_empty() {
                    let tag = tag_for(0, spec.id, 0, axis, -dir);
                    if in_flight {
                        self.gap_isend(&mut gap, nb as usize, tag, &payload)?;
                    } else {
                        self.gap_send(&mut gap, nb as usize, tag, &payload)?;
                    }
                }
            }
            // ---- receives: split the aggregated message back apart
            for dir in [-1i32, 1] {
                let Some(nb) = self.plan.partition.neighbor(me, axis, dir) else {
                    continue;
                };
                // compute the regions first to know whether a message is
                // expected at all
                let mut regions: Vec<(usize, Vec<(i64, i64)>)> = Vec::new();
                for (ai, sa) in spec.arrays.iter().enumerate() {
                    let [gl, gh] = sa.ghost.get(axis).copied().unwrap_or([0, 0]);
                    let w = if dir < 0 { gl } else { gh };
                    if w == 0 {
                        continue;
                    }
                    if let Some(region) = ghost_region(
                        &self.plan.partition,
                        &m.array(ids[ai]).bounds,
                        &maps[ai],
                        me,
                        axis,
                        dir,
                        w,
                        &done[ai],
                    ) {
                        regions.push((ai, region));
                    }
                }
                if regions.is_empty() {
                    continue;
                }
                let tag = tag_for(0, spec.id, 0, axis, dir);
                if in_flight {
                    // leave the receive posted; the split nest (or the
                    // next hook call) waits for and unpacks it
                    let req = self.comm.irecv(nb as usize, tag);
                    pending_recvs.push(PendingRecv {
                        req,
                        regions: regions
                            .into_iter()
                            .map(|(ai, region)| (ids[ai], region))
                            .collect(),
                    });
                    continue;
                }
                let data = self.gap_recv(&mut gap, nb as usize, tag)?;
                let mut off = 0usize;
                for (ai, region) in regions {
                    let len = region_len(&region) as usize;
                    let slice = data.get(off..off + len).ok_or_else(|| {
                        RunError::new("aggregated halo payload shorter than regions")
                    })?;
                    self.unpack(m, ids[ai], &region, slice)?;
                    off += len;
                }
                if off != data.len() {
                    return Err(RunError::new("aggregated halo payload longer than regions"));
                }
            }
            for (ai, sa) in spec.arrays.iter().enumerate() {
                done[ai][axis] = sa.ghost.get(axis).copied().unwrap_or([0, 0]);
            }
        }
        if !pending_recvs.is_empty() {
            let (_, stmt, split) = fly.expect("in-flight receives imply an overlap spec");
            self.pending = Some(PendingOverlap {
                stmt,
                split,
                recvs: pending_recvs,
            });
        }
        self.gap_end(gap);
        Ok(())
    }

    /// Mirror-image `pre`: ship old boundary values, then block on the
    /// pipeline (updated values from upstream).
    fn pre(&self, m: &mut Machine, frame: &Frame, spec: &SelfLoopSpec) -> Result<(), RunError> {
        let mut gap = Instant::now();
        let me = self.comm.rank() as u32;
        // 1) all old-value sends (captured before any modification)
        for (ai, sa) in spec.arrays.iter().enumerate() {
            let id = self.array_id(frame, &sa.array)?;
            let dim_axis = self.dim_axis_of(&sa.array)?;
            for step in &sa.mirror {
                // data flows opposite to `step.dir`: I serve the neighbor
                // on my -dir side, which receives from its `dir` side.
                if let Some(nb) = self.plan.partition.neighbor(me, step.axis, -step.dir) {
                    if let Some(region) = ghost_region(
                        &self.plan.partition,
                        &m.array(id).bounds,
                        &dim_axis,
                        nb,
                        step.axis,
                        step.dir,
                        step.width,
                        &[],
                    ) {
                        let payload = self.pack(m, id, &region);
                        let tag = tag_for(1, spec.id, ai, step.axis, step.dir);
                        self.gap_send(&mut gap, nb as usize, tag, &payload)?;
                    }
                }
            }
        }
        // 2) old-value receives
        for (ai, sa) in spec.arrays.iter().enumerate() {
            let id = self.array_id(frame, &sa.array)?;
            let dim_axis = self.dim_axis_of(&sa.array)?;
            for step in &sa.mirror {
                if let Some(nb) = self.plan.partition.neighbor(me, step.axis, step.dir) {
                    if let Some(region) = ghost_region(
                        &self.plan.partition,
                        &m.array(id).bounds,
                        &dim_axis,
                        me,
                        step.axis,
                        step.dir,
                        step.width,
                        &[],
                    ) {
                        let tag = tag_for(1, spec.id, ai, step.axis, step.dir);
                        let data = self.gap_recv(&mut gap, nb as usize, tag)?;
                        self.unpack(m, id, &region, &data)?;
                    }
                }
            }
        }
        // 3) pipeline receives (updated values; serializes the sweep)
        for (ai, sa) in spec.arrays.iter().enumerate() {
            let id = self.array_id(frame, &sa.array)?;
            let dim_axis = self.dim_axis_of(&sa.array)?;
            for step in &sa.forward {
                if let Some(nb) = self.plan.partition.neighbor(me, step.axis, step.dir) {
                    if let Some(region) = ghost_region(
                        &self.plan.partition,
                        &m.array(id).bounds,
                        &dim_axis,
                        me,
                        step.axis,
                        step.dir,
                        step.width,
                        &[],
                    ) {
                        let tag = tag_for(2, spec.id, ai, step.axis, step.dir);
                        let data = self.gap_recv(&mut gap, nb as usize, tag)?;
                        self.unpack(m, id, &region, &data)?;
                    }
                }
            }
        }
        self.gap_end(gap);
        Ok(())
    }

    /// Mirror-image `post`: forward the freshly-updated boundary
    /// downstream (continuing the pipeline).
    fn post(&self, m: &mut Machine, frame: &Frame, spec: &SelfLoopSpec) -> Result<(), RunError> {
        let mut gap = Instant::now();
        let me = self.comm.rank() as u32;
        for (ai, sa) in spec.arrays.iter().enumerate() {
            let id = self.array_id(frame, &sa.array)?;
            let dim_axis = self.dim_axis_of(&sa.array)?;
            for step in &sa.forward {
                if let Some(nb) = self.plan.partition.neighbor(me, step.axis, -step.dir) {
                    if let Some(region) = ghost_region(
                        &self.plan.partition,
                        &m.array(id).bounds,
                        &dim_axis,
                        nb,
                        step.axis,
                        step.dir,
                        step.width,
                        &[],
                    ) {
                        let payload = self.pack(m, id, &region);
                        let tag = tag_for(2, spec.id, ai, step.axis, step.dir);
                        self.gap_send(&mut gap, nb as usize, tag, &payload)?;
                    }
                }
            }
        }
        self.gap_end(gap);
        Ok(())
    }

    /// Allgather: every rank broadcasts its owned region of each array so
    /// all ranks hold the complete field (inserted before `write`
    /// statements that print status-array elements).
    fn fill(
        &self,
        m: &mut Machine,
        frame: &Frame,
        id: u32,
        arrays: &[String],
    ) -> Result<(), RunError> {
        let me = self.comm.rank() as u32;
        let ranks = self.plan.ranks();
        if ranks <= 1 {
            return Ok(());
        }
        let mut gap = Instant::now();
        for (ai, array) in arrays.iter().enumerate() {
            let aid = self.array_id(frame, array)?;
            let dim_axis = self.dim_axis_of(array)?;
            // send my owned region to everyone
            if let Some(region) =
                owned_region(&self.plan.partition, &m.array(aid).bounds, &dim_axis, me)
            {
                let payload = self.pack(m, aid, &region);
                let tag = tag_for(3, id, ai, 0, 1);
                for peer in 0..ranks {
                    if peer != me {
                        self.gap_send(&mut gap, peer as usize, tag, &payload)?;
                    }
                }
            }
            // receive every peer's owned region
            for peer in 0..ranks {
                if peer == me {
                    continue;
                }
                if let Some(region) =
                    owned_region(&self.plan.partition, &m.array(aid).bounds, &dim_axis, peer)
                {
                    let tag = tag_for(3, id, ai, 0, 1);
                    let data = self.gap_recv(&mut gap, peer as usize, tag)?;
                    self.unpack(m, aid, &region, &data)?;
                }
            }
        }
        self.gap_end(gap);
        Ok(())
    }

    fn dim_axis_of(&self, array: &str) -> Result<Vec<Option<usize>>, RunError> {
        self.plan
            .dim_axis
            .get(array)
            .cloned()
            .ok_or_else(|| RunError::new(format!("no mapping for `{array}`")))
    }

    /// Record the compute gap since `*gap` (packing and region math
    /// between communication calls), send, and restart the gap clock.
    fn gap_send(
        &self,
        gap: &mut Instant,
        to: usize,
        tag: u64,
        payload: &[f64],
    ) -> Result<(), RunError> {
        self.comm
            .record_span(EventKind::Compute, *gap, Instant::now());
        let r = self
            .comm
            .send(to, tag, payload)
            .map_err(|e| RunError::new(e.to_string()));
        *gap = Instant::now();
        r
    }

    /// Like [`SpmdHooks::gap_send`] but through the nonblocking pair:
    /// post, then complete the (buffered, immediately done) send. Used
    /// on the in-flight axis so its sends go through the same code path
    /// as its receives.
    fn gap_isend(
        &self,
        gap: &mut Instant,
        to: usize,
        tag: u64,
        payload: &[f64],
    ) -> Result<(), RunError> {
        self.comm
            .record_span(EventKind::Compute, *gap, Instant::now());
        let r = self
            .comm
            .isend(to, tag, payload)
            .and_then(|req| self.comm.wait_send(req))
            .map(|_| ())
            .map_err(|e| RunError::new(e.to_string()));
        *gap = Instant::now();
        r
    }

    /// Record the compute gap since `*gap`, receive, and restart the gap
    /// clock.
    fn gap_recv(&self, gap: &mut Instant, from: usize, tag: u64) -> Result<Vec<f64>, RunError> {
        self.comm
            .record_span(EventKind::Compute, *gap, Instant::now());
        let r = self
            .comm
            .recv(from, tag)
            .map_err(|e| RunError::new(e.to_string()));
        *gap = Instant::now();
        r
    }

    /// Record the trailing compute gap of a communication handler.
    fn gap_end(&self, gap: Instant) {
        self.comm
            .record_span(EventKind::Compute, gap, Instant::now());
    }
}

/// The global index region (one inclusive `(lo, hi)` per array
/// dimension) of the ghost slab that `recv_rank` receives from direction
/// `dir` along `axis`, for an array with declared `bounds` and
/// dimension→axis map `dim_axis`. `done` gives the ghost widths of axes
/// already exchanged (corner correctness: the slab widens to cover ghost
/// layers filled by earlier axes). `None` when clipping against the
/// declared bounds empties the slab.
///
/// This is the single source of truth for halo-slab geometry: both the
/// live SPMD handlers and the traffic forecast ([`crate::forecast()`]) call
/// it, so predicted and measured payload sizes agree by construction.
#[allow(clippy::too_many_arguments)] // a slab is genuinely 7-dimensional
pub fn ghost_region(
    partition: &Partition,
    bounds: &[(i64, i64)],
    dim_axis: &[Option<usize>],
    recv_rank: u32,
    axis: usize,
    dir: i32,
    width: u64,
    done: &[[u64; 2]],
) -> Option<Vec<(i64, i64)>> {
    let sg = partition.subgrid(recv_rank);
    let mut region = Vec::with_capacity(bounds.len());
    for (d, &(blo, bhi)) in bounds.iter().enumerate() {
        let (lo, hi) = match dim_axis.get(d).copied().flatten() {
            Some(a) if a == axis => {
                let w = width as i64;
                if dir < 0 {
                    (sg.lo[a] as i64 - w, sg.lo[a] as i64 - 1)
                } else {
                    (sg.hi[a] as i64 + 1, sg.hi[a] as i64 + w)
                }
            }
            Some(a) => {
                let g = done.get(a).copied().unwrap_or([0, 0]);
                (sg.lo[a] as i64 - g[0] as i64, sg.hi[a] as i64 + g[1] as i64)
            }
            None => (blo, bhi), // packed dimension: full extent
        };
        let (lo, hi) = (lo.max(blo), hi.min(bhi));
        if hi < lo {
            return None;
        }
        region.push((lo, hi));
    }
    Some(region)
}

/// The region of an array that `rank` owns: its subgrid slice on
/// distributed dimensions, full declared extent on packed ones. `None`
/// when the rank's subgrid misses the declared bounds entirely. Shared by
/// the allgather fill, the owned-region verifier, and the traffic
/// forecast.
pub fn owned_region(
    partition: &Partition,
    bounds: &[(i64, i64)],
    dim_axis: &[Option<usize>],
    rank: u32,
) -> Option<Vec<(i64, i64)>> {
    let sg = partition.subgrid(rank);
    let mut region = Vec::with_capacity(bounds.len());
    for (d, &(blo, bhi)) in bounds.iter().enumerate() {
        let (lo, hi) = match dim_axis.get(d).copied().flatten() {
            Some(a) => ((sg.lo[a] as i64).max(blo), (sg.hi[a] as i64).min(bhi)),
            None => (blo, bhi),
        };
        if hi < lo {
            return None;
        }
        region.push((lo, hi));
    }
    Some(region)
}

/// Number of points in an inclusive region.
pub fn region_len(region: &[(i64, i64)]) -> u64 {
    region
        .iter()
        .map(|&(lo, hi)| (hi - lo + 1) as u64)
        .product()
}

/// Odometer increment over inclusive ranges; false when exhausted.
fn advance(idx: &mut [i64], region: &[(i64, i64)]) -> bool {
    for d in 0..idx.len() {
        idx[d] += 1;
        if idx[d] <= region[d].1 {
            return true;
        }
        idx[d] = region[d].0;
    }
    false
}

/// Unique message tags: `kind` ∈ {0 sync, 1 mirror, 2 pipeline, 3 fill}.
fn tag_for(kind: u64, id: u32, array_idx: usize, axis: usize, dir: i32) -> u64 {
    let dirbit = u64::from(dir > 0);
    ((((kind * 1_000_000 + id as u64) * 64 + array_idx as u64) * 8 + axis as u64) * 2 + dirbit)
        + 1000
}

/// Everything a traced rank execution produces — statistics, phases, the
/// trace, and the journal epoch are returned even when the program
/// itself failed, so a partial trace can still be rendered and journaled
/// after a communication error.
#[derive(Debug)]
pub struct RankRun {
    /// The execution outcome: machine + final main-program frame, or the
    /// error that stopped the rank.
    pub outcome: Result<(Machine, Frame), RunError>,
    /// Communication statistics `(messages, f64 elements, barriers,
    /// reductions)`.
    pub comm_stats: (u64, u64, u64, u64),
    /// Wire-level counters from the transport.
    pub wire_stats: WireStats,
    /// Phase names in index order; `trace` events refer to these via
    /// their `phase` field.
    pub phases: Vec<String>,
    /// The rank's full trace: communication events *and* compute spans.
    pub trace: Vec<TraceEvent>,
    /// Which engine executed this rank's compute spans: `"kernel"` when
    /// a compiled-kernel set was attached, `"tree"` otherwise. Journal
    /// events carry this tag so traces from different engines stay
    /// distinguishable after the run.
    pub engine: String,
    /// The communicator epoch as unix nanoseconds — journal headers
    /// carry it so the merger can align ranks that ran in different
    /// processes.
    pub epoch_unix_ns: i128,
}

/// Overwrite a freshly built main-program machine/frame with a
/// snapshot's state: common-block arrays, main-frame local arrays,
/// scalars, the I/O queues, and the op counters. Every array the
/// snapshot names must exist with identical bounds — the snapshot only
/// restores correctly into the *same* compiled program.
pub fn restore_into(m: &mut Machine, frame: &mut Frame, snap: &Snapshot) -> Result<(), RunError> {
    fn restore_array(arr: &mut ArrayVal, s: &ArraySnap, what: &str) -> Result<(), RunError> {
        if arr.bounds != s.bounds {
            return Err(RunError::new(format!(
                "checkpoint mismatch: {what} `{}` has bounds {:?}, snapshot has {:?}",
                s.name, arr.bounds, s.bounds
            )));
        }
        arr.data = s.data.iter().map(|&b| f64::from_bits(b)).collect();
        Ok(())
    }
    for (blk, name, s) in &snap.commons {
        let id = *m.commons.get(&(blk.clone(), name.clone())).ok_or_else(|| {
            RunError::new(format!(
                "checkpoint mismatch: common /{blk}/ `{name}` not in program"
            ))
        })?;
        restore_array(m.array_mut(id), s, "common array")?;
    }
    for s in &snap.arrays {
        let id = *frame.arrays.get(&s.name).ok_or_else(|| {
            RunError::new(format!(
                "checkpoint mismatch: array `{}` not in main program",
                s.name
            ))
        })?;
        restore_array(m.array_mut(id), s, "array")?;
    }
    for (name, s) in &snap.scalars {
        let v = match s {
            ScalarSnap::Int(i) => Value::Int(*i),
            ScalarSnap::Real(bits) => Value::Real(f64::from_bits(*bits)),
            ScalarSnap::Logical(b) => Value::Logical(*b),
            ScalarSnap::Str(t) => Value::Str(t.clone()),
        };
        frame.set_scalar(name, v)?;
    }
    m.input = snap.input.iter().map(|&b| f64::from_bits(b)).collect();
    m.output = snap.output.clone();
    m.ops.flops = snap.ops.flops;
    m.ops.loads = snap.ops.loads;
    m.ops.stores = snap.ops.stores;
    m.ops.stmts = snap.ops.stmts;
    Ok(())
}

/// The full-featured rank runner: trace + statistics plus checkpointing
/// (`ckpt`), restart (`resume`), and an optional compiled-kernel set
/// (when `kernels` is `Some`, eligible comm-free loop nests execute
/// through the kernel engine, bit-exact with the tree walk).
///
/// With `resume` set, the program does not start from the top: the
/// machine is rebuilt, overwritten from the snapshot, and execution
/// re-enters the main body at the snapshot's cursor — the start of the
/// checkpoint-safe sync the snapshot was written at. Re-executing that
/// sync regenerates its exchange over the fresh connections, after
/// which the run is statement-for-statement identical to one that was
/// never interrupted (every rank must resume from the *same* epoch).
///
/// The [`crate::engine::RunConfig`] executors are the public way in;
/// this stays crate-internal so engine selection and resume have
/// exactly one surface.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_rank_traced_impl(
    file: &SourceFile,
    plan: &SpmdPlan,
    input: Vec<f64>,
    stmt_limit: u64,
    comm: &Comm,
    overlap: bool,
    ckpt: Option<CheckpointOpts>,
    resume: Option<&Snapshot>,
    kernels: Option<&KernelSet>,
) -> RankRun {
    let mut hooks = SpmdHooks::new(plan, comm, overlap);
    hooks.ckpt = ckpt;
    let mut outcome = match resume {
        None => run_program_capture_with(file, input, &mut hooks, stmt_limit, kernels),
        Some(snap) => {
            hooks.visits = snap.epoch;
            // After an elastic repartition the cursor may have been
            // translated to a *statement* (not a checkpoint sync call) of
            // the new plan; the first sync visit is then a genuinely new
            // visit, not the re-executed snapshot sync.
            hooks.resume_skip =
                plan.checkpoint_syncs.get(&snap.sync_id) == Some(&StmtId(snap.cursor.stmt));
            // the cursor only makes sense with tracking on; a resumed run
            // that doesn't checkpoint further still needs the machinery
            if hooks.ckpt.is_none() {
                hooks.ckpt = Some(CheckpointOpts {
                    every: 0,
                    dir: PathBuf::new(),
                    chaos_abort_after: None,
                });
            }
            run_program_capture_from_with(
                file,
                input,
                &mut hooks,
                stmt_limit,
                StmtId(snap.cursor.stmt),
                &snap.cursor.dos,
                |m, frame| restore_into(m, frame, snap),
                kernels,
            )
        }
    };
    // Safety net: a program that ends with an exchange still in flight
    // (its overlapped nest never ran) completes it here so receive
    // counters and traces stay consistent with blocking mode.
    if let Ok((m, _)) = &mut outcome {
        if let Err(e) = hooks.complete_pending(m) {
            outcome = Err(e);
        }
    } else {
        hooks.pending = None;
    }
    RankRun {
        outcome,
        comm_stats: comm.stats().snapshot(),
        wire_stats: comm.wire_stats(),
        phases: comm.phase_names(),
        trace: comm.take_trace(),
        engine: if kernels.is_some() { "kernel" } else { "tree" }.to_string(),
        epoch_unix_ns: autocfd_runtime::epoch_unix_ns(comm.epoch()),
    }
}

/// Verify that a *single* rank's owned region of every status array
/// equals the sequential run's values within `tol`. Returns the maximum
/// absolute difference observed on that rank. Multi-process workers use
/// this to check their own slice without shipping whole machines around.
pub fn verify_rank_owned_region(
    seq: &(Machine, Frame),
    rr: &RankResult,
    rank: usize,
    plan: &SpmdPlan,
    tol: f64,
) -> Result<f64, String> {
    let mut max_diff = 0.0f64;
    for (array, dim_axis) in &plan.dim_axis {
        let seq_id = match seq.1.arrays.get(array) {
            Some(id) => *id,
            None => continue, // not bound in main (e.g. subroutine-local)
        };
        let seq_arr = seq.0.array(seq_id);
        let par_id = rr
            .frame
            .arrays
            .get(array)
            .ok_or_else(|| format!("rank {rank}: array `{array}` missing"))?;
        let par_arr = rr.machine.array(*par_id);
        // iterate the rank's owned region (full extent on packed dims)
        let Some(region) = owned_region(&plan.partition, &seq_arr.bounds, dim_axis, rank as u32)
        else {
            continue;
        };
        let mut idx: Vec<i64> = region.iter().map(|&(lo, _)| lo).collect();
        loop {
            let s = seq_arr.get(&idx).map_err(|e| e.to_string())?;
            let p = par_arr.get(&idx).map_err(|e| e.to_string())?;
            let d = (s - p).abs();
            if d > max_diff {
                max_diff = d;
            }
            if d > tol {
                return Err(format!(
                    "array `{array}` rank {rank} at {idx:?}: sequential {s} vs parallel {p}"
                ));
            }
            if !advance(&mut idx, &region) {
                break;
            }
        }
    }
    Ok(max_diff)
}

/// Verify that every rank's *owned* region of every status array equals
/// the sequential run's values within `tol`. Returns the maximum absolute
/// difference observed.
pub fn verify_owned_regions(
    seq: &(Machine, Frame),
    par: &[RankResult],
    plan: &SpmdPlan,
    tol: f64,
) -> Result<f64, String> {
    let mut max_diff = 0.0f64;
    for (r, rr) in par.iter().enumerate() {
        let d = verify_rank_owned_region(seq, rr, r, plan, tol)?;
        if d > max_diff {
            max_diff = d;
        }
    }
    Ok(max_diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_odometer() {
        let region = [(1i64, 2), (5, 6)];
        let mut idx = vec![1i64, 5];
        let mut seen = vec![idx.clone()];
        while advance(&mut idx, &region) {
            seen.push(idx.clone());
        }
        assert_eq!(
            seen,
            vec![vec![1, 5], vec![2, 5], vec![1, 6], vec![2, 6]],
            "first index varies fastest (column-major order)"
        );
    }

    #[test]
    fn tags_unique() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        for kind in 0..4u64 {
            for id in 0..4u32 {
                for ai in 0..3usize {
                    for axis in 0..3usize {
                        for dir in [-1, 1] {
                            assert!(set.insert(tag_for(kind, id, ai, axis, dir)));
                        }
                    }
                }
            }
        }
    }
}
