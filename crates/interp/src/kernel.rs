//! Compiled kernels for comm-free loop nests.
//!
//! The tree-walk interpreter re-resolves every scalar by name and boxes
//! every intermediate in a [`Value`] on each iteration of a stencil
//! loop. This module lowers eligible `do` nests once, at plan time,
//! into typed expression trees over integer/real *slots* (scalar
//! registers) and directly-addressed flat `f64` array storage, then
//! executes them with a compact recursive VM — and, when a nest is
//! provably data-parallel in its outermost loop, splits its trips
//! across the vendored `rayon` thread pool.
//!
//! Everything observable is kept bit-exact with the tree walk:
//!
//! * arithmetic follows `eval::binop`/`apply_intrinsic` to the letter
//!   (integer ops wrap and count no flops, any real operand promotes
//!   through `f64` and counts one flop, intrinsics count one flop
//!   before their domain checks);
//! * [`OpCounts`] are accumulated locally and flushed to the
//!   [`Machine`], so `flops/loads/stores/stmts` match the tree walk
//!   exactly, including per-chunk re-ticks of overlap-split roots;
//! * runtime errors reproduce the tree walk's messages and source-line
//!   attribution (evaluation errors carry line 0 unless the statement
//!   arm would have attached one);
//! * scalars are written back through [`Frame::set_scalar`] only for
//!   names the nest statically assigns, preserving the `Int`-vs-`Real`
//!   representation of everything else for checkpoint snapshots.
//!
//! A nest that cannot be proven equivalent is simply not compiled (or
//! not *runnable* for the current frame), and the caller falls back to
//! the tree walk — eligibility is a pure optimization boundary, never
//! a semantics change.

use crate::machine::{ArrayId, Frame, Machine, OpCounts, RunError};
use crate::value::Value;
use autocfd_fortran::ast::{
    BinOp, Expr, LValue, SourceFile, Stmt, StmtId, StmtKind, Type, UnOp, Unit,
};
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// Which chunk of an overlap-split loop a kernel invocation covers.
/// Mirrors the interpreter's private clamp modes; geometry is
/// identical to `exec::clamp_range`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClamp {
    /// `[from+low, to-high]` — safe while messages are in flight.
    Interior,
    /// `[from, min(to, from+low-1)]`.
    Low,
    /// `[max(from+low, to-high+1), to]`.
    High,
}

/// Clamp geometry resolved against a kernel: which slot is the split
/// variable plus the boundary widths and chunk selector.
#[derive(Debug, Clone, Copy)]
pub struct ResolvedClamp {
    slot: usize,
    low: i64,
    high: i64,
    mode: KernelClamp,
}

fn kclamp_range(f: i64, t: i64, c: &ResolvedClamp) -> (i64, i64) {
    match c.mode {
        KernelClamp::Interior => (f + c.low, t - c.high),
        KernelClamp::Low => (f, t.min(f + c.low - 1)),
        KernelClamp::High => ((f + c.low).max(t - c.high + 1), t),
    }
}

// ---------------------------------------------------------------------------
// Compiled representation
// ---------------------------------------------------------------------------

/// One pre-resolved affine subscript: `add` plus the value of `slot`
/// (when present). Affine subscripts charge no ops and cannot fail, so
/// collapsing their expression trees at compile time is invisible to
/// everything observable — the post-compile lowering pass rewrites any
/// `i`/`i+c`/`c` subscript into this form so the hot loop skips the
/// recursive evaluator entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Aff {
    slot: Option<u32>,
    add: i64,
}

/// Integer-valued compiled expression.
#[derive(Debug, Clone, PartialEq)]
enum IExpr {
    Const(i64),
    Slot(usize),
    /// `as_i64` truncation of a real value (no ops charged).
    FromReal(Box<RExpr>),
    /// Load from an integer array (`get` rounds, then `as i64`).
    Load(usize, Vec<IExpr>),
    /// `Load` with every subscript affine — fast path, same semantics.
    LoadA(usize, Box<[Aff]>),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
    Div(Box<IExpr>, Box<IExpr>),
    Pow(Box<IExpr>, Box<IExpr>),
    Neg(Box<IExpr>),
    /// `abs`/`iabs` on an integer argument (one flop).
    Abs(Box<IExpr>),
    /// `int(x)` (one flop, truncating cast through f64).
    Cvt(Box<RExpr>),
    /// `nint(x)` (one flop, round then cast).
    Nint(Box<RExpr>),
    /// `mod(a, b)` on integers (one flop, zero divisor checked).
    Mod(Box<IExpr>, Box<IExpr>),
    /// All-integer `max`/`min`: folded in f64 like the tree walk, then
    /// cast back (one flop).
    MaxMin(bool, Vec<RExpr>),
}

/// Real-valued compiled expression.
#[derive(Debug, Clone, PartialEq)]
enum RExpr {
    Const(f64),
    Slot(usize),
    FromInt(Box<IExpr>),
    Load(usize, Vec<IExpr>),
    /// `Load` with every subscript affine — fast path, same semantics.
    LoadA(usize, Box<[Aff]>),
    /// Arithmetic with at least one real operand: one flop.
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
    Neg(Box<RExpr>),
    Abs(Box<RExpr>),
    Sqrt(Box<RExpr>),
    Exp(Box<RExpr>),
    Log(Box<RExpr>),
    Sin(Box<RExpr>),
    Cos(Box<RExpr>),
    Tan(Box<RExpr>),
    Atan(Box<RExpr>),
    Mod(Box<RExpr>, Box<RExpr>),
    Sign(Box<RExpr>, Box<RExpr>),
    /// `float`/`real`/`dble`: identity on the f64 value, one flop.
    Cvt(Box<RExpr>),
    MaxMin(bool, Vec<RExpr>),
}

/// Boolean-valued compiled expression.
#[derive(Debug, Clone, PartialEq)]
enum BExpr {
    Const(bool),
    /// Relational comparison; both sides through f64, no flop (matches
    /// `eval::binop`).
    Rel(BinOp, Box<RExpr>, Box<RExpr>),
    And(Box<BExpr>, Box<BExpr>),
    Or(Box<BExpr>, Box<BExpr>),
    Not(Box<BExpr>),
}

/// Compiled counted loop.
#[derive(Debug, Clone, PartialEq)]
struct DoLoop {
    var: usize,
    from: IExpr,
    to: IExpr,
    step: Option<IExpr>,
    body: Vec<CStmt>,
    line: u32,
}

/// Compiled statement.
#[derive(Debug, Clone, PartialEq)]
enum CStmt {
    /// Integer slot ← integer expression.
    AssignI {
        slot: usize,
        rhs: IExpr,
        line: u32,
    },
    /// Integer slot ← real expression (`set_scalar` truncates).
    AssignIFromR {
        slot: usize,
        rhs: RExpr,
        line: u32,
    },
    /// Real slot ← real expression (integer RHS pre-wrapped).
    AssignR {
        slot: usize,
        rhs: RExpr,
        line: u32,
    },
    /// Array element store.
    Store {
        arr: usize,
        idx: Vec<IExpr>,
        rhs: RExpr,
        line: u32,
    },
    /// `Store` with every subscript affine — fast path, same semantics.
    StoreA {
        arr: usize,
        idx: Box<[Aff]>,
        rhs: RExpr,
        line: u32,
    },
    If {
        cond: BExpr,
        then: Vec<CStmt>,
        elifs: Vec<(BExpr, Vec<CStmt>)>,
        els: Vec<CStmt>,
        line: u32,
    },
    LogicalIf {
        cond: BExpr,
        stmt: Box<CStmt>,
        line: u32,
    },
    Do(DoLoop),
    /// `continue`: ticks, does nothing.
    Continue {
        line: u32,
    },
}

/// One scalar register of a kernel.
#[derive(Debug, Clone)]
struct SlotInfo {
    name: String,
    is_int: bool,
}

/// One array a kernel touches.
#[derive(Debug, Clone)]
struct ArrInfo {
    name: String,
    is_int: bool,
    written: bool,
}

/// A compiled loop nest, keyed by the root `do` statement's id.
#[derive(Debug)]
pub struct Kernel {
    /// Identity of the root `do` statement this kernel replaces.
    pub id: StmtId,
    root: DoLoop,
    slots: Vec<SlotInfo>,
    arrays: Vec<ArrInfo>,
    /// Slots the nest statically assigns (targets and loop variables);
    /// only these are written back to the frame.
    assigned: Vec<usize>,
    /// Whether outer-loop trips may be split across threads.
    threadable: bool,
}

/// The compiled kernels of one program plus the shared thread pool.
pub struct KernelSet {
    kernels: HashMap<u32, Kernel>,
    pool: Option<rayon::ThreadPool>,
    threads: usize,
}

impl KernelSet {
    /// Compile every eligible nest of `file`. When `hints` is given
    /// (the plan's kernel-nest marking), only listed nests are
    /// compiled; hinted-but-ineligible ids are silently skipped so a
    /// stale or optimistic plan can never change semantics. `threads`
    /// is the worker count for data-parallel nests (1 = sequential).
    pub fn build(file: &SourceFile, hints: Option<&[StmtId]>, threads: usize) -> KernelSet {
        let mut kernels = HashMap::new();
        for unit in &file.units {
            collect_kernels(unit, &unit.body, hints, &mut kernels);
        }
        let threads = threads.max(1);
        let pool = if threads > 1 && kernels.values().any(|k| k.threadable) {
            Some(rayon::ThreadPool::new(threads))
        } else {
            None
        };
        KernelSet {
            kernels,
            pool,
            threads,
        }
    }

    /// An empty set (pure tree-walk execution).
    pub fn empty() -> KernelSet {
        KernelSet {
            kernels: HashMap::new(),
            pool: None,
            threads: 1,
        }
    }

    /// The kernel compiled for a root `do` statement, if any.
    pub fn get(&self, id: StmtId) -> Option<&Kernel> {
        self.kernels.get(&id.0)
    }

    /// Number of compiled kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True when no nest was compiled.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Ids of compiled nests in ascending order (diagnostics, tests).
    pub fn ids(&self) -> Vec<StmtId> {
        let mut v: Vec<StmtId> = self.kernels.keys().map(|&k| StmtId(k)).collect();
        v.sort_by_key(|s| s.0);
        v
    }

    /// How many compiled nests may run threaded.
    pub fn threadable_count(&self) -> usize {
        self.kernels.values().filter(|k| k.threadable).count()
    }
}

/// Ids of every kernel-eligible outermost `do` nest in `file`, in
/// source order. This is the marking the compiler records in the plan
/// (`SpmdPlan::kernel_nests`) so remote executions compile the same
/// kernels as local ones.
pub fn eligible_nests(file: &SourceFile) -> Vec<StmtId> {
    let mut out = Vec::new();
    for unit in &file.units {
        let mut sink = |s: &Stmt, k: Option<Kernel>| {
            if k.is_some() {
                out.push(s.id);
            }
        };
        walk_nests(unit, &unit.body, &mut sink);
    }
    out
}

fn collect_kernels(
    unit: &Unit,
    stmts: &[Stmt],
    hints: Option<&[StmtId]>,
    into: &mut HashMap<u32, Kernel>,
) {
    let mut sink = |s: &Stmt, k: Option<Kernel>| {
        if let Some(k) = k {
            if hints.is_none_or(|h| h.contains(&s.id)) {
                into.insert(s.id.0, k);
            }
        }
    };
    walk_nests(unit, stmts, &mut sink);
}

/// Walk statements, attempting compilation at every outermost `do`;
/// descend into the bodies of everything that did not compile.
fn walk_nests(unit: &Unit, stmts: &[Stmt], sink: &mut impl FnMut(&Stmt, Option<Kernel>)) {
    for s in stmts {
        match &s.kind {
            StmtKind::Do { body, .. } => {
                let k = Compiler::compile(unit, s);
                let missed = k.is_none();
                sink(s, k);
                if missed {
                    walk_nests(unit, body, sink);
                }
            }
            StmtKind::DoWhile { body, .. } => walk_nests(unit, body, sink),
            StmtKind::If {
                then,
                else_ifs,
                els,
                ..
            } => {
                walk_nests(unit, then, sink);
                for (_, b) in else_ifs {
                    walk_nests(unit, b, sink);
                }
                if let Some(b) = els {
                    walk_nests(unit, b, sink);
                }
            }
            StmtKind::LogicalIf { stmt, .. } => walk_nests(unit, std::slice::from_ref(stmt), sink),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Typed compile result of one AST expression.
enum CE {
    I(IExpr),
    R(RExpr),
    B(BExpr),
}

impl CE {
    /// Coerce to a subscript/bound value the way `as_i64` would.
    fn index(self) -> Option<IExpr> {
        match self {
            CE::I(e) => Some(e),
            CE::R(e) => Some(IExpr::FromReal(Box::new(e))),
            CE::B(_) => None,
        }
    }

    /// Coerce to f64 the way `as_f64` would.
    fn real(self) -> Option<RExpr> {
        match self {
            CE::R(e) => Some(e),
            CE::I(e) => Some(RExpr::FromInt(Box::new(e))),
            CE::B(_) => None,
        }
    }

    fn boolean(self) -> Option<BExpr> {
        match self {
            CE::B(e) => Some(e),
            _ => None,
        }
    }
}

struct Compiler<'u> {
    unit: &'u Unit,
    slots: Vec<SlotInfo>,
    slot_ix: HashMap<String, usize>,
    arrays: Vec<ArrInfo>,
    arr_ix: HashMap<String, usize>,
    /// Slots that are loop variables anywhere in the nest.
    loop_slots: HashSet<usize>,
    /// Slots assigned by the nest (targets + loop variables).
    assigned: HashSet<usize>,
    /// True once any scalar `Assign` target was seen (disables
    /// threading — per-iteration scalar state would race).
    scalar_writes: bool,
    /// Array store sites: `(array, subscripts)` for the disjointness
    /// proof.
    stores: Vec<(usize, Vec<IExpr>)>,
    /// Array load sites, for constraining reads of written arrays.
    loads: Vec<(usize, Vec<IExpr>)>,
}

impl<'u> Compiler<'u> {
    /// Compile the nest rooted at `s` (a `do` statement); `None` when
    /// any construct inside escapes the supported subset.
    fn compile(unit: &'u Unit, s: &Stmt) -> Option<Kernel> {
        let mut c = Compiler {
            unit,
            slots: Vec::new(),
            slot_ix: HashMap::new(),
            arrays: Vec::new(),
            arr_ix: HashMap::new(),
            loop_slots: HashSet::new(),
            assigned: HashSet::new(),
            scalar_writes: false,
            stores: Vec::new(),
            loads: Vec::new(),
        };
        let mut root = c.compile_do(s)?;
        let threadable = !c.scalar_writes && c.prove_store_disjointness(&root);
        opt_do(&mut root);
        let mut assigned: Vec<usize> = c.assigned.iter().copied().collect();
        assigned.sort_unstable();
        Some(Kernel {
            id: s.id,
            root,
            slots: c.slots,
            arrays: c.arrays,
            assigned,
            threadable,
        })
    }

    /// Integer-ness of a scalar, matching `Frame::is_integer` (declared
    /// type overrides implicit); `None` for `logical` (unsupported).
    fn scalar_is_int(&self, name: &str) -> Option<bool> {
        match self.unit.type_of(name) {
            Some(Type::Integer) => Some(true),
            Some(Type::Real) | Some(Type::DoublePrecision) => Some(false),
            Some(Type::Logical) => None,
            None => Some(crate::value::implicit_is_integer(name)),
        }
    }

    fn slot(&mut self, name: &str) -> Option<usize> {
        if self.unit.is_array(name) {
            return None; // array used as a scalar — tree walk errors
        }
        if let Some(&i) = self.slot_ix.get(name) {
            return Some(i);
        }
        let is_int = self.scalar_is_int(name)?;
        let i = self.slots.len();
        self.slots.push(SlotInfo {
            name: name.to_string(),
            is_int,
        });
        self.slot_ix.insert(name.to_string(), i);
        Some(i)
    }

    fn array(&mut self, name: &str, written: bool) -> Option<usize> {
        if !self.unit.is_array(name) {
            return None;
        }
        let is_int = self.scalar_is_int(name)?; // same typing rule
        let i = match self.arr_ix.get(name) {
            Some(&i) => i,
            None => {
                let i = self.arrays.len();
                self.arrays.push(ArrInfo {
                    name: name.to_string(),
                    is_int,
                    written: false,
                });
                self.arr_ix.insert(name.to_string(), i);
                i
            }
        };
        if written {
            self.arrays[i].written = true;
        }
        Some(i)
    }

    fn compile_do(&mut self, s: &Stmt) -> Option<DoLoop> {
        let StmtKind::Do {
            var,
            from,
            to,
            step,
            body,
            ..
        } = &s.kind
        else {
            return None;
        };
        let vslot = self.slot(var)?;
        if !self.slots[vslot].is_int {
            return None; // real loop variables stay on the tree walk
        }
        self.loop_slots.insert(vslot);
        self.assigned.insert(vslot);
        let from = self.expr(from)?.index()?;
        let to = self.expr(to)?.index()?;
        let step = match step {
            Some(e) => Some(self.expr(e)?.index()?),
            None => None,
        };
        let body = self.stmts(body)?;
        Some(DoLoop {
            var: vslot,
            from,
            to,
            step,
            body,
            line: s.line,
        })
    }

    fn stmts(&mut self, list: &[Stmt]) -> Option<Vec<CStmt>> {
        // Labels inside the nest are inert: no goto can exist in an
        // eligible nest (`Goto` fails compilation), and a goto outside
        // the nest cannot resolve into a loop body (`exec_stmts` only
        // searches its own statement list).
        list.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &Stmt) -> Option<CStmt> {
        match &s.kind {
            StmtKind::Assign { target, value } => self.assign(target, value, s.line),
            StmtKind::Do { .. } => Some(CStmt::Do(self.compile_do(s)?)),
            StmtKind::If {
                cond,
                then,
                else_ifs,
                els,
            } => {
                let cond = self.expr(cond)?.boolean()?;
                let then = self.stmts(then)?;
                let mut elifs = Vec::with_capacity(else_ifs.len());
                for (c, b) in else_ifs {
                    elifs.push((self.expr(c)?.boolean()?, self.stmts(b)?));
                }
                let els = match els {
                    Some(b) => self.stmts(b)?,
                    None => Vec::new(),
                };
                Some(CStmt::If {
                    cond,
                    then,
                    elifs,
                    els,
                    line: s.line,
                })
            }
            StmtKind::LogicalIf { cond, stmt } => {
                let cond = self.expr(cond)?.boolean()?;
                let inner = self.stmt(stmt)?;
                Some(CStmt::LogicalIf {
                    cond,
                    stmt: Box::new(inner),
                    line: s.line,
                })
            }
            StmtKind::Continue => Some(CStmt::Continue { line: s.line }),
            // Calls (communication!), goto/return/stop (escaping
            // control flow), I/O and do-while stay on the tree walk.
            _ => None,
        }
    }

    fn assign(&mut self, lv: &LValue, value: &Expr, line: u32) -> Option<CStmt> {
        let rhs = self.expr(value)?;
        if lv.indices.is_empty() {
            let slot = self.slot(&lv.name)?;
            self.assigned.insert(slot);
            self.scalar_writes = true;
            return Some(if self.slots[slot].is_int {
                match rhs {
                    CE::I(e) => CStmt::AssignI { slot, rhs: e, line },
                    CE::R(e) => CStmt::AssignIFromR { slot, rhs: e, line },
                    CE::B(_) => return None,
                }
            } else {
                CStmt::AssignR {
                    slot,
                    rhs: rhs.real()?,
                    line,
                }
            });
        }
        let arr = self.array(&lv.name, true)?;
        let idx: Option<Vec<IExpr>> = lv
            .indices
            .iter()
            .map(|e| self.expr(e).and_then(CE::index))
            .collect();
        let idx = idx?;
        self.stores.push((arr, idx.clone()));
        Some(CStmt::Store {
            arr,
            idx,
            rhs: rhs.real()?,
            line,
        })
    }

    fn expr(&mut self, e: &Expr) -> Option<CE> {
        match e {
            Expr::IntLit(v) => Some(CE::I(IExpr::Const(*v))),
            Expr::RealLit(v) => Some(CE::R(RExpr::Const(*v))),
            Expr::LogicalLit(b) => Some(CE::B(BExpr::Const(*b))),
            Expr::StrLit(_) => None,
            Expr::Var(name) => {
                let slot = self.slot(name)?;
                Some(if self.slots[slot].is_int {
                    CE::I(IExpr::Slot(slot))
                } else {
                    CE::R(RExpr::Slot(slot))
                })
            }
            Expr::Index { name, indices } => {
                if self.unit.is_array(name) {
                    let arr = self.array(name, false)?;
                    let idx: Option<Vec<IExpr>> = indices
                        .iter()
                        .map(|e| self.expr(e).and_then(CE::index))
                        .collect();
                    let idx = idx?;
                    self.loads.push((arr, idx.clone()));
                    return Some(if self.arrays[arr].is_int {
                        CE::I(IExpr::Load(arr, idx))
                    } else {
                        CE::R(RExpr::Load(arr, idx))
                    });
                }
                if crate::eval::is_intrinsic_name(name) {
                    return self.intrinsic(name, indices);
                }
                None // user function call
            }
            Expr::Bin { op, lhs, rhs } => {
                if *op == BinOp::And || *op == BinOp::Or {
                    let l = self.expr(lhs)?.boolean()?;
                    let r = self.expr(rhs)?.boolean()?;
                    return Some(CE::B(if *op == BinOp::And {
                        BExpr::And(Box::new(l), Box::new(r))
                    } else {
                        BExpr::Or(Box::new(l), Box::new(r))
                    }));
                }
                let l = self.expr(lhs)?;
                let r = self.expr(rhs)?;
                if op.is_relational() {
                    let l = l.real()?;
                    let r = r.real()?;
                    return Some(CE::B(BExpr::Rel(*op, Box::new(l), Box::new(r))));
                }
                match (l, r) {
                    (CE::I(a), CE::I(b)) => {
                        let (a, b) = (Box::new(a), Box::new(b));
                        Some(CE::I(match op {
                            BinOp::Add => IExpr::Add(a, b),
                            BinOp::Sub => IExpr::Sub(a, b),
                            BinOp::Mul => IExpr::Mul(a, b),
                            BinOp::Div => IExpr::Div(a, b),
                            BinOp::Pow => IExpr::Pow(a, b),
                            _ => return None,
                        }))
                    }
                    (a, b) => {
                        let a = a.real()?;
                        let b = b.real()?;
                        Some(CE::R(RExpr::Bin(*op, Box::new(a), Box::new(b))))
                    }
                }
            }
            Expr::Un { op, expr } => {
                let v = self.expr(expr)?;
                match op {
                    UnOp::Neg => match v {
                        CE::I(e) => Some(CE::I(fold_neg(e))),
                        CE::R(e) => Some(CE::R(RExpr::Neg(Box::new(e)))),
                        CE::B(_) => None,
                    },
                    UnOp::Not => Some(CE::B(BExpr::Not(Box::new(v.boolean()?)))),
                }
            }
        }
    }

    fn intrinsic(&mut self, name: &str, args: &[Expr]) -> Option<CE> {
        let compiled: Option<Vec<CE>> = args.iter().map(|a| self.expr(a)).collect();
        let mut args = compiled?;
        // The tree walk evaluates *all* arguments, then most intrinsics
        // consume a prefix; reject surplus arguments instead of
        // modeling their evaluation (the fallback handles them).
        let exact = |n: usize, args: &[CE]| args.len() == n;
        match name {
            "abs" => {
                if !exact(1, &args) {
                    return None;
                }
                Some(match args.pop().unwrap() {
                    CE::I(e) => CE::I(IExpr::Abs(Box::new(e))),
                    CE::R(e) => CE::R(RExpr::Abs(Box::new(e))),
                    CE::B(_) => return None,
                })
            }
            "iabs" => {
                if !exact(1, &args) {
                    return None;
                }
                Some(CE::I(IExpr::Abs(Box::new(args.pop().unwrap().index()?))))
            }
            "max" | "amax1" | "min" | "amin1" => {
                if args.is_empty() {
                    return None;
                }
                let is_max = name == "max" || name == "amax1";
                let all_int =
                    (name == "max" || name == "min") && args.iter().all(|a| matches!(a, CE::I(_)));
                let reals: Option<Vec<RExpr>> = args.into_iter().map(CE::real).collect();
                let reals = reals?;
                Some(if all_int {
                    CE::I(IExpr::MaxMin(is_max, reals))
                } else {
                    CE::R(RExpr::MaxMin(is_max, reals))
                })
            }
            "sqrt" | "exp" | "log" | "sin" | "cos" | "tan" | "atan" => {
                if !exact(1, &args) {
                    return None;
                }
                let a = Box::new(args.pop().unwrap().real()?);
                Some(CE::R(match name {
                    "sqrt" => RExpr::Sqrt(a),
                    "exp" => RExpr::Exp(a),
                    "log" => RExpr::Log(a),
                    "sin" => RExpr::Sin(a),
                    "cos" => RExpr::Cos(a),
                    "tan" => RExpr::Tan(a),
                    _ => RExpr::Atan(a),
                }))
            }
            "mod" => {
                if !exact(2, &args) {
                    return None;
                }
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                match (a, b) {
                    (CE::I(a), CE::I(b)) => Some(CE::I(IExpr::Mod(Box::new(a), Box::new(b)))),
                    (a, b) => Some(CE::R(RExpr::Mod(Box::new(a.real()?), Box::new(b.real()?)))),
                }
            }
            "sign" => {
                if !exact(2, &args) {
                    return None;
                }
                let b = args.pop().unwrap().real()?;
                let a = args.pop().unwrap().real()?;
                Some(CE::R(RExpr::Sign(Box::new(a), Box::new(b))))
            }
            "float" | "real" | "dble" => {
                if !exact(1, &args) {
                    return None;
                }
                Some(CE::R(RExpr::Cvt(Box::new(args.pop().unwrap().real()?))))
            }
            "int" => {
                if !exact(1, &args) {
                    return None;
                }
                Some(CE::I(IExpr::Cvt(Box::new(args.pop().unwrap().real()?))))
            }
            "nint" => {
                if !exact(1, &args) {
                    return None;
                }
                Some(CE::I(IExpr::Nint(Box::new(args.pop().unwrap().real()?))))
            }
            _ => None, // recognized but unimplemented — tree walk errors
        }
    }

    /// Prove that splitting the root loop's trips across threads can
    /// never make two threads touch the same element: every store to
    /// an array must carry the root variable, with a compile-time
    /// nonzero coefficient, in exactly one dimension whose remaining
    /// terms are loop-invariant; all *other* dimensions must not
    /// mention the root variable; and all stores to the same array
    /// must agree on that dimension's subscript. Loads of a written
    /// array must sit at the *same* root coordinate as its stores
    /// (identical owner-dimension subscript, root variable absent
    /// elsewhere) — cross-iteration reads like `a(i, j-1)` under
    /// stores to `a(i, j)` would cross chunk boundaries. Name aliasing
    /// (two names bound to one array) is caught at invocation time by
    /// the runtime `ArrayId` disjointness check.
    fn prove_store_disjointness(&self, root: &DoLoop) -> bool {
        let rv = root.var;
        // (array → (dim, owner subscript)) agreed across sites
        let mut owners: HashMap<usize, (usize, &IExpr)> = HashMap::new();
        for (arr, idx) in &self.stores {
            let mut owner: Option<usize> = None;
            for (d, sub) in idx.iter().enumerate() {
                match affine_root_coeff(sub, rv, &self.loop_slots) {
                    Some(0) => {}
                    Some(_) => {
                        if owner.is_some() {
                            return false; // root var in two dimensions
                        }
                        owner = Some(d);
                    }
                    None => {
                        // Nonlinear in the root variable, or mentions
                        // it through a load: only safe if the root
                        // variable does not occur at all.
                        if mentions_slot_i(sub, rv) {
                            return false;
                        }
                    }
                }
            }
            let Some(d) = owner else { return false };
            match owners.get(arr) {
                Some(&(pd, pe)) => {
                    if pd != d || pe != &idx[d] {
                        return false;
                    }
                }
                None => {
                    owners.insert(*arr, (d, &idx[d]));
                }
            }
        }
        // A nest with no stores mutates nothing; threading it is
        // pointless (and scalar_writes already gates reductions).
        if self.stores.is_empty() {
            return false;
        }
        // Loads of written arrays must match the store's root
        // coordinate exactly.
        for (arr, idx) in &self.loads {
            let Some(&(d, owner)) = owners.get(arr) else {
                continue; // read-only array: any subscript is fine
            };
            if idx.len() <= d || &idx[d] != owner {
                return false;
            }
            for (d2, sub) in idx.iter().enumerate() {
                if d2 != d && mentions_slot_i(sub, rv) {
                    return false;
                }
            }
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Post-compile lowering: affine subscript fast path
// ---------------------------------------------------------------------------

/// Recognize `c`, `i`, `i+c`, `c+i`, and `i-c` subscript shapes. The
/// value computed by [`Vm::offset_aff`] (`ints[slot].wrapping_add(add)`)
/// is identical to the recursive evaluation (which also wraps), and
/// affine subscripts charge no ops and cannot error, so the rewrite is
/// unobservable.
fn as_aff(e: &IExpr) -> Option<Aff> {
    match e {
        IExpr::Const(c) => Some(Aff {
            slot: None,
            add: *c,
        }),
        IExpr::Slot(s) => Some(Aff {
            slot: Some(*s as u32),
            add: 0,
        }),
        IExpr::Add(a, b) => match (&**a, &**b) {
            (IExpr::Slot(s), IExpr::Const(c)) | (IExpr::Const(c), IExpr::Slot(s)) => Some(Aff {
                slot: Some(*s as u32),
                add: *c,
            }),
            _ => None,
        },
        IExpr::Sub(a, b) => match (&**a, &**b) {
            // `i - c` wraps like `i + (-c)` except at `c == i64::MIN`.
            (IExpr::Slot(s), IExpr::Const(c)) => Some(Aff {
                slot: Some(*s as u32),
                add: c.checked_neg()?,
            }),
            _ => None,
        },
        _ => None,
    }
}

fn aff_idx(idx: &[IExpr]) -> Option<Box<[Aff]>> {
    idx.iter().map(as_aff).collect()
}

fn opt_do(d: &mut DoLoop) {
    opt_i(&mut d.from);
    opt_i(&mut d.to);
    if let Some(s) = &mut d.step {
        opt_i(s);
    }
    for s in &mut d.body {
        opt_stmt(s);
    }
}

fn opt_stmt(s: &mut CStmt) {
    match s {
        CStmt::AssignI { rhs, .. } => opt_i(rhs),
        CStmt::AssignIFromR { rhs, .. } | CStmt::AssignR { rhs, .. } => opt_r(rhs),
        CStmt::Store {
            arr,
            idx,
            rhs,
            line,
        } => {
            opt_r(rhs);
            for e in idx.iter_mut() {
                opt_i(e);
            }
            if let Some(aff) = aff_idx(idx) {
                let (arr, rhs, line) = (*arr, std::mem::replace(rhs, RExpr::Const(0.0)), *line);
                *s = CStmt::StoreA {
                    arr,
                    idx: aff,
                    rhs,
                    line,
                };
            }
        }
        CStmt::StoreA { idx: _, rhs, .. } => opt_r(rhs),
        CStmt::If {
            cond,
            then,
            elifs,
            els,
            ..
        } => {
            opt_b(cond);
            for st in then.iter_mut().chain(els.iter_mut()) {
                opt_stmt(st);
            }
            for (c, b) in elifs {
                opt_b(c);
                for st in b {
                    opt_stmt(st);
                }
            }
        }
        CStmt::LogicalIf { cond, stmt, .. } => {
            opt_b(cond);
            opt_stmt(stmt);
        }
        CStmt::Do(d) => opt_do(d),
        CStmt::Continue { .. } => {}
    }
}

fn opt_i(e: &mut IExpr) {
    match e {
        IExpr::Const(_) | IExpr::Slot(_) | IExpr::LoadA(..) => {}
        IExpr::FromReal(r) | IExpr::Cvt(r) | IExpr::Nint(r) => opt_r(r),
        IExpr::Load(arr, idx) => {
            for i in idx.iter_mut() {
                opt_i(i);
            }
            if let Some(aff) = aff_idx(idx) {
                *e = IExpr::LoadA(*arr, aff);
            }
        }
        IExpr::Add(a, b)
        | IExpr::Sub(a, b)
        | IExpr::Mul(a, b)
        | IExpr::Div(a, b)
        | IExpr::Pow(a, b)
        | IExpr::Mod(a, b) => {
            opt_i(a);
            opt_i(b);
        }
        IExpr::Neg(a) | IExpr::Abs(a) => opt_i(a),
        IExpr::MaxMin(_, args) => args.iter_mut().for_each(opt_r),
    }
}

fn opt_r(e: &mut RExpr) {
    match e {
        RExpr::Const(_) | RExpr::Slot(_) | RExpr::LoadA(..) => {}
        RExpr::FromInt(i) => opt_i(i),
        RExpr::Load(arr, idx) => {
            for i in idx.iter_mut() {
                opt_i(i);
            }
            if let Some(aff) = aff_idx(idx) {
                *e = RExpr::LoadA(*arr, aff);
            }
        }
        RExpr::Bin(_, a, b) | RExpr::Mod(a, b) | RExpr::Sign(a, b) => {
            opt_r(a);
            opt_r(b);
        }
        RExpr::Neg(a)
        | RExpr::Abs(a)
        | RExpr::Sqrt(a)
        | RExpr::Exp(a)
        | RExpr::Log(a)
        | RExpr::Sin(a)
        | RExpr::Cos(a)
        | RExpr::Tan(a)
        | RExpr::Atan(a)
        | RExpr::Cvt(a) => opt_r(a),
        RExpr::MaxMin(_, args) => args.iter_mut().for_each(opt_r),
    }
}

fn opt_b(e: &mut BExpr) {
    match e {
        BExpr::Const(_) => {}
        BExpr::Rel(_, a, b) => {
            opt_r(a);
            opt_r(b);
        }
        BExpr::And(a, b) | BExpr::Or(a, b) => {
            opt_b(a);
            opt_b(b);
        }
        BExpr::Not(a) => opt_b(a),
    }
}

/// Fold `-(literal)` into a constant so affine analysis sees it.
fn fold_neg(e: IExpr) -> IExpr {
    match e {
        IExpr::Const(v) => IExpr::Const(-v),
        other => IExpr::Neg(Box::new(other)),
    }
}

/// Coefficient of slot `rv` in `e` when `e` is linear in `rv` with a
/// compile-time constant coefficient and a remainder free of *all*
/// loop variables; `None` otherwise. `Some(0)` means "no dependence on
/// any loop variable at all" for the owner-dimension remainder rule.
fn affine_root_coeff(e: &IExpr, rv: usize, loop_slots: &HashSet<usize>) -> Option<i64> {
    match e {
        IExpr::Const(_) => Some(0),
        IExpr::Slot(s) => {
            if *s == rv {
                Some(1)
            } else if loop_slots.contains(s) {
                None
            } else {
                Some(0)
            }
        }
        IExpr::Add(a, b) => Some(
            affine_root_coeff(a, rv, loop_slots)?
                .checked_add(affine_root_coeff(b, rv, loop_slots)?)?,
        ),
        IExpr::Sub(a, b) => Some(
            affine_root_coeff(a, rv, loop_slots)?
                .checked_sub(affine_root_coeff(b, rv, loop_slots)?)?,
        ),
        IExpr::Neg(a) => affine_root_coeff(a, rv, loop_slots)?.checked_neg(),
        IExpr::Mul(a, b) => {
            let scale = |k: &IExpr, x: &IExpr| -> Option<i64> {
                let IExpr::Const(k) = k else { return None };
                affine_root_coeff(x, rv, loop_slots)?.checked_mul(*k)
            };
            scale(a, b).or_else(|| scale(b, a))
        }
        // Anything else is fine only when it involves no loop variable.
        other => {
            if mentions_any_slot_i(other, loop_slots) {
                None
            } else {
                Some(0)
            }
        }
    }
}

fn mentions_slot_i(e: &IExpr, slot: usize) -> bool {
    let mut set = HashSet::new();
    set.insert(slot);
    mentions_any_slot_i(e, &set)
}

fn mentions_any_slot_i(e: &IExpr, slots: &HashSet<usize>) -> bool {
    match e {
        IExpr::Const(_) => false,
        IExpr::Slot(s) => slots.contains(s),
        IExpr::FromReal(r) | IExpr::Cvt(r) | IExpr::Nint(r) => mentions_any_slot_r(r, slots),
        IExpr::Load(_, idx) => idx.iter().any(|i| mentions_any_slot_i(i, slots)),
        IExpr::LoadA(_, idx) => idx
            .iter()
            .any(|a| a.slot.is_some_and(|s| slots.contains(&(s as usize)))),
        IExpr::Add(a, b)
        | IExpr::Sub(a, b)
        | IExpr::Mul(a, b)
        | IExpr::Div(a, b)
        | IExpr::Pow(a, b)
        | IExpr::Mod(a, b) => mentions_any_slot_i(a, slots) || mentions_any_slot_i(b, slots),
        IExpr::Neg(a) | IExpr::Abs(a) => mentions_any_slot_i(a, slots),
        IExpr::MaxMin(_, args) => args.iter().any(|a| mentions_any_slot_r(a, slots)),
    }
}

fn mentions_any_slot_r(e: &RExpr, slots: &HashSet<usize>) -> bool {
    match e {
        RExpr::Const(_) => false,
        RExpr::Slot(s) => slots.contains(s),
        RExpr::FromInt(i) => mentions_any_slot_i(i, slots),
        RExpr::Load(_, idx) => idx.iter().any(|i| mentions_any_slot_i(i, slots)),
        RExpr::LoadA(_, idx) => idx
            .iter()
            .any(|a| a.slot.is_some_and(|s| slots.contains(&(s as usize)))),
        RExpr::Bin(_, a, b) | RExpr::Mod(a, b) | RExpr::Sign(a, b) => {
            mentions_any_slot_r(a, slots) || mentions_any_slot_r(b, slots)
        }
        RExpr::Neg(a)
        | RExpr::Abs(a)
        | RExpr::Sqrt(a)
        | RExpr::Exp(a)
        | RExpr::Log(a)
        | RExpr::Sin(a)
        | RExpr::Cos(a)
        | RExpr::Tan(a)
        | RExpr::Atan(a)
        | RExpr::Cvt(a) => mentions_any_slot_r(a, slots),
        RExpr::MaxMin(_, args) => args.iter().any(|a| mentions_any_slot_r(a, slots)),
    }
}

// ---------------------------------------------------------------------------
// Invocation
// ---------------------------------------------------------------------------

/// Entry state captured *without side effects*: the caller may still
/// fall back to the tree walk if this returns `None`.
pub struct Ready {
    ints: Vec<i64>,
    reals: Vec<f64>,
    arr_ids: Vec<ArrayId>,
    clamp: Option<ResolvedClamp>,
}

/// Runtime view of one array: raw base pointer plus bounds. The
/// pointer is only dereferenced at offsets validated against `bounds`
/// (the same check `ArrayVal::offset` performs).
#[derive(Clone)]
struct ArrRt {
    ptr: *mut f64,
    bounds: Vec<(i64, i64)>,
    is_int: bool,
}

/// Shared thread-broadcast state; Sync is sound because the store
/// disjointness proof (plus the runtime read/write id check) makes all
/// concurrent pointer accesses race-free.
struct ShareArrs<'a>(&'a [ArrRt]);
unsafe impl Sync for ShareArrs<'_> {}

impl Kernel {
    /// Check this kernel can run against the current frame and capture
    /// its scalar entry state. Pure: no machine or frame mutation, so
    /// `None` (a scalar holding an unexpected representation, a
    /// missing array, an unresolvable clamp variable) lets the caller
    /// take the tree walk from an identical state.
    pub fn begin(
        &self,
        frame: &Frame,
        clamp: Option<(&crate::exec::LoopSplit, KernelClamp)>,
    ) -> Option<Ready> {
        let mut ints = vec![0i64; self.slots.len()];
        let mut reals = vec![0f64; self.slots.len()];
        for (i, s) in self.slots.iter().enumerate() {
            if frame.arrays.contains_key(&s.name) {
                return None; // compile-time scalar is a runtime array
            }
            match (frame.scalars.get(&s.name), s.is_int) {
                (None, _) => {}
                (Some(Value::Int(v)), true) => ints[i] = *v,
                (Some(Value::Real(v)), false) => reals[i] = *v,
                // Representation differs from the static type (e.g. a
                // parameter constant stored as Int under a real name):
                // the tree walk's dynamic typing must decide.
                _ => return None,
            }
        }
        let mut arr_ids = Vec::with_capacity(self.arrays.len());
        for a in &self.arrays {
            let id = *frame.arrays.get(&a.name)?;
            arr_ids.push(id);
        }
        let clamp = match clamp {
            None => None,
            Some((split, mode)) => {
                let slot = self
                    .slots
                    .iter()
                    .position(|s| s.name == split.var && s.is_int)?;
                Some(ResolvedClamp {
                    slot,
                    low: split.low_width as i64,
                    high: split.high_width as i64,
                    mode,
                })
            }
        };
        Some(Ready {
            ints,
            reals,
            arr_ids,
            clamp,
        })
    }

    /// Execute the nest. `root_ticked` is true when the interpreter's
    /// `do` arm already charged the root statement's tick (the unsplit
    /// path); split chunks tick per invocation like the clamped tree
    /// walk. Ops are flushed and assigned scalars written back even on
    /// error (the run is aborting either way; counters stay sane).
    pub fn run(
        &self,
        set: &KernelSet,
        ready: Ready,
        m: &mut Machine,
        frame: &mut Frame,
        root_ticked: bool,
    ) -> Result<(), RunError> {
        let Ready {
            ints,
            reals,
            arr_ids,
            clamp,
        } = ready;
        let arrs: Vec<ArrRt> = arr_ids
            .iter()
            .map(|id| {
                let a = m.array_mut(*id);
                ArrRt {
                    ptr: a.data.as_mut_ptr(),
                    bounds: a.bounds.clone(),
                    is_int: a.is_int,
                }
            })
            .collect();
        let mut ctx = Vm {
            ints,
            reals,
            arrs: &arrs,
            ops: OpCounts::default(),
            base_stmts: m.ops.stmts,
            limit: m.stmt_limit,
            clamp,
        };
        let result = self.run_root(set, &mut ctx, &arr_ids, root_ticked);
        // Flush ops and write scalars back whether or not we errored —
        // a failing run aborts, but the machine should still account
        // for the work done.
        m.ops.flops += ctx.ops.flops;
        m.ops.loads += ctx.ops.loads;
        m.ops.stores += ctx.ops.stores;
        m.ops.stmts += ctx.ops.stmts;
        for &i in &self.assigned {
            let s = &self.slots[i];
            let v = if s.is_int {
                Value::Int(ctx.ints[i])
            } else {
                Value::Real(ctx.reals[i])
            };
            frame.set_scalar(&s.name, v)?;
        }
        result
    }

    /// Root-loop driver: bound evaluation, clamping, and the
    /// sequential-vs-threaded trip split.
    fn run_root(
        &self,
        set: &KernelSet,
        ctx: &mut Vm<'_>,
        arr_ids: &[ArrayId],
        root_ticked: bool,
    ) -> Result<(), RunError> {
        let d = &self.root;
        if !root_ticked {
            ctx.tick(d.line)?;
        }
        let f = ctx.eval_i(&d.from)?;
        let t = ctx.eval_i(&d.to)?;
        let step = match &d.step {
            Some(e) => ctx.eval_i(e)?,
            None => 1,
        };
        if step == 0 {
            return Err(RunError::new("zero do-loop step").at(d.line));
        }
        let root_clamp = ctx.clamp.filter(|c| c.slot == d.var);
        let (f, t, step) = match &root_clamp {
            Some(c) => {
                if step != 1 {
                    return Err(RunError::new("overlapped loop must have unit step").at(d.line));
                }
                // Below the clamped loop the body runs unmodified.
                ctx.clamp = None;
                let (cf, ct) = kclamp_range(f, t, c);
                (cf, ct, 1)
            }
            None => (f, t, step),
        };
        let trips = ((t - f + step) / step).max(0);
        let threaded = self.threadable
            && ctx.limit == 0
            && trips >= 2
            && set.pool.is_some()
            && rw_disjoint(&self.arrays, arr_ids);
        if threaded {
            self.run_threaded(set, ctx, f, step, trips)?;
        } else {
            let mut iv = f;
            for _ in 0..trips {
                ctx.ints[d.var] = iv;
                for s in &d.body {
                    ctx.exec(s)?;
                }
                iv += step;
            }
        }
        // Loop variable rests one past the last value.
        ctx.ints[d.var] = f + trips.max(0) * step;
        Ok(())
    }

    /// Split `trips` root iterations into contiguous chunks across the
    /// pool. Each chunk runs an independent VM over cloned scalar
    /// banks; op counters are summed (order-independent totals) and
    /// final scalar state is taken from the last chunk, which by
    /// construction executed the final iterations.
    fn run_threaded(
        &self,
        set: &KernelSet,
        ctx: &mut Vm<'_>,
        f: i64,
        step: i64,
        trips: i64,
    ) -> Result<(), RunError> {
        let pool = set.pool.as_ref().expect("threaded gate checked pool");
        let nchunks = pool.threads().min(trips as usize).max(1);
        type ChunkOut = (Result<(), RunError>, OpCounts, Vec<i64>, Vec<f64>);
        let results: Vec<Mutex<Option<ChunkOut>>> =
            (0..nchunks).map(|_| Mutex::new(None)).collect();
        let share = ShareArrs(ctx.arrs);
        let (ints0, reals0, clamp) = (&ctx.ints, &ctx.reals, ctx.clamp);
        let d = &self.root;
        pool.broadcast(nchunks, &|k| {
            let share = &share;
            let lo = trips as usize * k / nchunks;
            let hi = trips as usize * (k + 1) / nchunks;
            let mut vm = Vm {
                ints: ints0.clone(),
                reals: reals0.clone(),
                arrs: share.0,
                ops: OpCounts::default(),
                base_stmts: 0,
                limit: 0,
                clamp,
            };
            let mut iv = f + lo as i64 * step;
            let mut res = Ok(());
            'chunk: for _ in lo..hi {
                vm.ints[d.var] = iv;
                for s in &d.body {
                    if let Err(e) = vm.exec(s) {
                        res = Err(e);
                        break 'chunk;
                    }
                }
                iv += step;
            }
            *results[k].lock().unwrap() = Some((res, vm.ops, vm.ints, vm.reals));
        });
        let mut first_err = None;
        for slot in &results {
            let (res, ops, ints, reals) = slot
                .lock()
                .unwrap()
                .take()
                .expect("broadcast filled every chunk slot");
            ctx.ops.flops += ops.flops;
            ctx.ops.loads += ops.loads;
            ctx.ops.stores += ops.stores;
            ctx.ops.stmts += ops.stmts;
            if first_err.is_none() {
                if let Err(e) = res {
                    first_err = Some(e);
                }
            }
            // Last chunk ran the final iterations: its scalar banks are
            // the sequential end state.
            ctx.ints = ints;
            ctx.reals = reals;
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Runtime read/write disjointness by resolved `ArrayId`: argument
/// binding can alias two names to one array, which would defeat the
/// compile-time proof.
fn rw_disjoint(arrays: &[ArrInfo], ids: &[ArrayId]) -> bool {
    let written: Vec<ArrayId> = arrays
        .iter()
        .zip(ids)
        .filter(|(a, _)| a.written)
        .map(|(_, id)| *id)
        .collect();
    for (i, w) in written.iter().enumerate() {
        if written[..i].contains(w) {
            return false; // two written names alias one array
        }
    }
    arrays
        .iter()
        .zip(ids)
        .filter(|(a, _)| !a.written)
        .all(|(_, id)| !written.contains(id))
}

// ---------------------------------------------------------------------------
// The VM
// ---------------------------------------------------------------------------

struct Vm<'k> {
    ints: Vec<i64>,
    reals: Vec<f64>,
    arrs: &'k [ArrRt],
    ops: OpCounts,
    base_stmts: u64,
    limit: u64,
    clamp: Option<ResolvedClamp>,
}

impl Vm<'_> {
    /// `Machine::tick` with the statement's line attached, against the
    /// locally accumulated count.
    fn tick(&mut self, line: u32) -> Result<(), RunError> {
        self.ops.stmts += 1;
        if self.limit != 0 && self.base_stmts + self.ops.stmts > self.limit {
            return Err(RunError::new(format!(
                "statement budget of {} exceeded (non-converging loop?)",
                self.limit
            ))
            .at(line));
        }
        Ok(())
    }

    /// Column-major offset with `ArrayVal::offset`'s exact checks.
    fn offset_of(&self, arr: usize, idx: &[i64]) -> Result<usize, RunError> {
        let a = &self.arrs[arr];
        if idx.len() != a.bounds.len() {
            return Err(RunError::new(format!(
                "rank mismatch: {} subscripts for rank-{} array",
                idx.len(),
                a.bounds.len()
            )));
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for (d, (&i, &(lo, hi))) in idx.iter().zip(&a.bounds).enumerate() {
            if i < lo || i > hi {
                return Err(RunError::new(format!(
                    "subscript {i} out of bounds {lo}:{hi} in dimension {}",
                    d + 1
                )));
            }
            off += (i - lo) as usize * stride;
            stride *= (hi - lo + 1) as usize;
        }
        Ok(off)
    }

    /// Column-major offset for pre-resolved affine subscripts, with the
    /// same per-dimension checks and error text as [`Vm::offset_of`].
    #[inline]
    fn offset_aff(&self, arr: usize, idx: &[Aff]) -> Result<usize, RunError> {
        let a = &self.arrs[arr];
        if idx.len() != a.bounds.len() {
            return Err(RunError::new(format!(
                "rank mismatch: {} subscripts for rank-{} array",
                idx.len(),
                a.bounds.len()
            )));
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for (d, (aff, &(lo, hi))) in idx.iter().zip(&a.bounds).enumerate() {
            let i = match aff.slot {
                Some(s) => self.ints[s as usize].wrapping_add(aff.add),
                None => aff.add,
            };
            if i < lo || i > hi {
                return Err(RunError::new(format!(
                    "subscript {i} out of bounds {lo}:{hi} in dimension {}",
                    d + 1
                )));
            }
            off += (i - lo) as usize * stride;
            stride *= (hi - lo + 1) as usize;
        }
        Ok(off)
    }

    /// [`Vm::load`] for affine subscripts: they evaluate without ops or
    /// errors, so the load counter ticks first and the value comes
    /// straight off the precomputed offset.
    #[inline]
    fn load_aff(&mut self, arr: usize, idx: &[Aff]) -> Result<f64, RunError> {
        self.ops.loads += 1;
        let off = self.offset_aff(arr, idx)?;
        let a = &self.arrs[arr];
        // SAFETY: as in `load` — offset validated against the bounds,
        // pointer live for the invocation, races excluded by the
        // disjointness proof.
        let v = unsafe { *a.ptr.add(off) };
        Ok(if a.is_int { v.round() } else { v })
    }

    /// Array element load: subscripts, then `loads += 1`, then the
    /// bounds-checked read (rounded when declared integer) — the exact
    /// order of `eval`'s `Index` arm.
    fn load(&mut self, arr: usize, idx: &[IExpr]) -> Result<f64, RunError> {
        let is_int = self.arrs[arr].is_int;
        // Subscripts first (their loads/errors), then this load.
        let mut vals = [0i64; 8];
        let n = idx.len();
        let off = if n <= vals.len() {
            for (k, e) in idx.iter().enumerate() {
                vals[k] = self.eval_i(e)?;
            }
            self.ops.loads += 1;
            self.offset_of(arr, &vals[..n])?
        } else {
            let mut vals = Vec::with_capacity(n);
            for e in idx {
                vals.push(self.eval_i(e)?);
            }
            self.ops.loads += 1;
            self.offset_of(arr, &vals)?
        };
        // SAFETY: `off` was validated against the array bounds, whose
        // product is the data length; the pointer is live for the
        // whole invocation and concurrent access is race-free by the
        // disjointness proof.
        let v = unsafe { *self.arrs[arr].ptr.add(off) };
        Ok(if is_int { v.round() } else { v })
    }

    fn eval_i(&mut self, e: &IExpr) -> Result<i64, RunError> {
        Ok(match e {
            IExpr::Const(v) => *v,
            IExpr::Slot(s) => self.ints[*s],
            IExpr::FromReal(r) => self.eval_r(r)? as i64,
            IExpr::Load(arr, idx) => self.load(*arr, idx)? as i64,
            IExpr::LoadA(arr, idx) => self.load_aff(*arr, idx)? as i64,
            IExpr::Add(a, b) => self.eval_i(a)?.wrapping_add(self.eval_i(b)?),
            IExpr::Sub(a, b) => self.eval_i(a)?.wrapping_sub(self.eval_i(b)?),
            IExpr::Mul(a, b) => self.eval_i(a)?.wrapping_mul(self.eval_i(b)?),
            IExpr::Div(a, b) => {
                let a = self.eval_i(a)?;
                let b = self.eval_i(b)?;
                if b == 0 {
                    return Err(RunError::new("integer division by zero"));
                }
                a / b
            }
            IExpr::Pow(a, b) => {
                let a = self.eval_i(a)?;
                let b = self.eval_i(b)?;
                if b >= 0 {
                    let mut acc = 1i64;
                    for _ in 0..b {
                        acc = acc.wrapping_mul(a);
                    }
                    acc
                } else {
                    match a {
                        1 => 1,
                        -1 => {
                            if b % 2 == 0 {
                                1
                            } else {
                                -1
                            }
                        }
                        0 => return Err(RunError::new("0 ** negative exponent")),
                        _ => 0,
                    }
                }
            }
            IExpr::Neg(a) => -self.eval_i(a)?,
            IExpr::Abs(a) => {
                let v = self.eval_i(a)?;
                self.ops.flops += 1;
                v.abs()
            }
            IExpr::Cvt(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                v as i64
            }
            IExpr::Nint(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                v.round() as i64
            }
            IExpr::Mod(a, b) => {
                let a = self.eval_i(a)?;
                let b = self.eval_i(b)?;
                self.ops.flops += 1;
                if b == 0 {
                    return Err(RunError::new("mod by zero"));
                }
                a % b
            }
            IExpr::MaxMin(is_max, args) => self.max_min(*is_max, args)? as i64,
        })
    }

    fn max_min(&mut self, is_max: bool, args: &[RExpr]) -> Result<f64, RunError> {
        let mut vals = [0f64; 8];
        let n = args.len();
        let mut heap;
        let slice: &mut [f64] = if n <= vals.len() {
            for (k, a) in args.iter().enumerate() {
                vals[k] = self.eval_r(a)?;
            }
            &mut vals[..n]
        } else {
            heap = Vec::with_capacity(n);
            for a in args {
                heap.push(self.eval_r(a)?);
            }
            &mut heap
        };
        self.ops.flops += 1;
        let mut acc = slice[0];
        for &v in &slice[1..] {
            acc = if is_max { acc.max(v) } else { acc.min(v) };
        }
        Ok(acc)
    }

    fn eval_r(&mut self, e: &RExpr) -> Result<f64, RunError> {
        Ok(match e {
            RExpr::Const(v) => *v,
            RExpr::Slot(s) => self.reals[*s],
            RExpr::FromInt(i) => self.eval_i(i)? as f64,
            RExpr::Load(arr, idx) => self.load(*arr, idx)?,
            RExpr::LoadA(arr, idx) => self.load_aff(*arr, idx)?,
            RExpr::Bin(op, a, b) => {
                let a = self.eval_r(a)?;
                let b = self.eval_r(b)?;
                self.ops.flops += 1;
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(b),
                    _ => unreachable!("logical/relational ops compile to BExpr"),
                }
            }
            RExpr::Neg(a) => -self.eval_r(a)?,
            RExpr::Abs(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                v.abs()
            }
            RExpr::Sqrt(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                if v < 0.0 {
                    return Err(RunError::new("sqrt of negative value"));
                }
                v.sqrt()
            }
            RExpr::Exp(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                v.exp()
            }
            RExpr::Log(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                if v <= 0.0 {
                    return Err(RunError::new("log of non-positive value"));
                }
                v.ln()
            }
            RExpr::Sin(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                v.sin()
            }
            RExpr::Cos(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                v.cos()
            }
            RExpr::Tan(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                v.tan()
            }
            RExpr::Atan(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                v.atan()
            }
            RExpr::Mod(a, b) => {
                let a = self.eval_r(a)?;
                let b = self.eval_r(b)?;
                self.ops.flops += 1;
                a % b
            }
            RExpr::Sign(a, b) => {
                let a = self.eval_r(a)?;
                let b = self.eval_r(b)?;
                self.ops.flops += 1;
                if b < 0.0 {
                    -a.abs()
                } else {
                    a.abs()
                }
            }
            RExpr::Cvt(a) => {
                let v = self.eval_r(a)?;
                self.ops.flops += 1;
                v
            }
            RExpr::MaxMin(is_max, args) => self.max_min(*is_max, args)?,
        })
    }

    fn eval_b(&mut self, e: &BExpr) -> Result<bool, RunError> {
        Ok(match e {
            BExpr::Const(b) => *b,
            BExpr::Rel(op, a, b) => {
                let a = self.eval_r(a)?;
                let b = self.eval_r(b)?;
                match op {
                    BinOp::Eq => a == b,
                    BinOp::Ne => a != b,
                    BinOp::Lt => a < b,
                    BinOp::Le => a <= b,
                    BinOp::Gt => a > b,
                    BinOp::Ge => a >= b,
                    _ => unreachable!("non-relational op in Rel"),
                }
            }
            BExpr::And(a, b) => self.eval_b(a)? && self.eval_b(b)?,
            BExpr::Or(a, b) => self.eval_b(a)? || self.eval_b(b)?,
            BExpr::Not(a) => !self.eval_b(a)?,
        })
    }

    fn exec(&mut self, s: &CStmt) -> Result<(), RunError> {
        match s {
            CStmt::AssignI { slot, rhs, line } => {
                self.tick(*line)?;
                let v = self.eval_i(rhs).map_err(|e| e.at(*line))?;
                self.ints[*slot] = v;
                Ok(())
            }
            CStmt::AssignIFromR { slot, rhs, line } => {
                self.tick(*line)?;
                let v = self.eval_r(rhs).map_err(|e| e.at(*line))?;
                // set_scalar coerces Real → declared-integer as `as i64`
                self.ints[*slot] = v as i64;
                Ok(())
            }
            CStmt::AssignR { slot, rhs, line } => {
                self.tick(*line)?;
                let v = self.eval_r(rhs).map_err(|e| e.at(*line))?;
                self.reals[*slot] = v;
                Ok(())
            }
            CStmt::Store {
                arr,
                idx,
                rhs,
                line,
            } => {
                self.tick(*line)?;
                // RHS first, then subscripts, then the store counter,
                // then the bounds check — `assign`'s exact order.
                let v = self.eval_r(rhs).map_err(|e| e.at(*line))?;
                let res: Result<(), RunError> = (|| {
                    let mut vals = [0i64; 8];
                    let n = idx.len();
                    let off = if n <= vals.len() {
                        for (k, e) in idx.iter().enumerate() {
                            vals[k] = self.eval_i(e)?;
                        }
                        self.ops.stores += 1;
                        self.offset_of(*arr, &vals[..n])?
                    } else {
                        let mut vals = Vec::with_capacity(n);
                        for e in idx {
                            vals.push(self.eval_i(e)?);
                        }
                        self.ops.stores += 1;
                        self.offset_of(*arr, &vals)?
                    };
                    let a = &self.arrs[*arr];
                    let stored = if a.is_int { v.trunc() } else { v };
                    // SAFETY: offset validated; writes are race-free by
                    // the disjointness proof (threaded) or exclusive
                    // access (sequential).
                    unsafe { *a.ptr.add(off) = stored };
                    Ok(())
                })();
                res.map_err(|e| e.at(*line))
            }
            CStmt::StoreA {
                arr,
                idx,
                rhs,
                line,
            } => {
                self.tick(*line)?;
                // Same order as `Store`: RHS, then (op-free, error-free)
                // subscripts, then the store counter, then the bounds
                // check inside `offset_aff`.
                let v = self.eval_r(rhs).map_err(|e| e.at(*line))?;
                self.ops.stores += 1;
                let off = self.offset_aff(*arr, idx).map_err(|e| e.at(*line))?;
                let a = &self.arrs[*arr];
                let stored = if a.is_int { v.trunc() } else { v };
                // SAFETY: as in `Store` — offset validated, writes
                // race-free by the disjointness proof or exclusivity.
                unsafe { *a.ptr.add(off) = stored };
                Ok(())
            }
            CStmt::If {
                cond,
                then,
                elifs,
                els,
                line,
            } => {
                self.tick(*line)?;
                if self.eval_b(cond)? {
                    return self.exec_all(then);
                }
                for (c, body) in elifs {
                    if self.eval_b(c)? {
                        return self.exec_all(body);
                    }
                }
                self.exec_all(els)
            }
            CStmt::LogicalIf { cond, stmt, line } => {
                self.tick(*line)?;
                if self.eval_b(cond)? {
                    self.exec(stmt)
                } else {
                    Ok(())
                }
            }
            CStmt::Do(d) => self.exec_do(d),
            CStmt::Continue { line } => self.tick(*line),
        }
    }

    fn exec_all(&mut self, list: &[CStmt]) -> Result<(), RunError> {
        for s in list {
            self.exec(s)?;
        }
        Ok(())
    }

    fn exec_do(&mut self, d: &DoLoop) -> Result<(), RunError> {
        self.tick(d.line)?;
        let f = self.eval_i(&d.from)?;
        let t = self.eval_i(&d.to)?;
        let step = match &d.step {
            Some(e) => self.eval_i(e)?,
            None => 1,
        };
        if step == 0 {
            return Err(RunError::new("zero do-loop step").at(d.line));
        }
        let clamped = self.clamp.filter(|c| c.slot == d.var);
        let (f, t, step) = match &clamped {
            Some(c) => {
                if step != 1 {
                    return Err(RunError::new("overlapped loop must have unit step").at(d.line));
                }
                let (cf, ct) = kclamp_range(f, t, c);
                (cf, ct, 1)
            }
            None => (f, t, step),
        };
        // Below the clamped loop the body runs unmodified; the clamp
        // stays active for sibling statements after this loop.
        let saved = if clamped.is_some() {
            self.clamp.take()
        } else {
            None
        };
        let trips = ((t - f + step) / step).max(0);
        let mut iv = f;
        for _ in 0..trips {
            self.ints[d.var] = iv;
            if let Err(e) = self.exec_all(&d.body) {
                if clamped.is_some() {
                    self.clamp = saved;
                }
                return Err(e);
            }
            iv += step;
        }
        if clamped.is_some() {
            self.clamp = saved;
        }
        self.ints[d.var] = iv;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        autocfd_fortran::parse(src).expect("test program parses")
    }

    fn nest_ids(src: &str) -> Vec<StmtId> {
        eligible_nests(&parse(src))
    }

    const STENCIL: &str = "      program p
      real a(10,10), b(10,10)
      integer i, j
      do 11 j = 1, 10
      do 10 i = 1, 10
      a(i,j) = real(i) * 2.0 + real(j)
 10   continue
 11   continue
      do 21 j = 2, 9
      do 20 i = 2, 9
      b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
 20   continue
 21   continue
      end
";

    #[test]
    fn stencil_nests_are_eligible_and_threadable() {
        let file = parse(STENCIL);
        let ids = eligible_nests(&file);
        assert_eq!(ids.len(), 2, "both outermost nests compile");
        let set = KernelSet::build(&file, None, 4);
        assert_eq!(set.len(), 2);
        for id in &ids {
            let k = set.get(*id).expect("kernel compiled");
            assert!(k.threadable, "pure stencil nest must be threadable");
        }
    }

    #[test]
    fn stencil_subscripts_lower_to_the_affine_fast_path() {
        // every subscript in STENCIL is `i`, `i±1`, or `j±1`, so after
        // lowering no generic Load/Store should survive in either nest
        fn generic_free(s: &CStmt) -> bool {
            fn ok_i(e: &IExpr) -> bool {
                !matches!(e, IExpr::Load(..))
            }
            fn ok_r(e: &RExpr) -> bool {
                match e {
                    RExpr::Load(..) => false,
                    RExpr::Bin(_, a, b) => ok_r(a) && ok_r(b),
                    RExpr::FromInt(i) => ok_i(i),
                    _ => true,
                }
            }
            match s {
                CStmt::Store { .. } => false,
                CStmt::StoreA { rhs, .. } => ok_r(rhs),
                CStmt::Do(d) => d.body.iter().all(generic_free),
                _ => true,
            }
        }
        let file = parse(STENCIL);
        let set = KernelSet::build(&file, None, 1);
        for id in set.ids() {
            let k = set.get(id).unwrap();
            assert!(
                k.root.body.iter().all(generic_free),
                "nest {id:?} kept a generic load/store after lowering"
            );
        }
    }

    #[test]
    fn affine_recognition_matches_wrapping_semantics() {
        let slot_minus = |c: i64| IExpr::Sub(Box::new(IExpr::Slot(0)), Box::new(IExpr::Const(c)));
        assert_eq!(
            as_aff(&slot_minus(3)),
            Some(Aff {
                slot: Some(0),
                add: -3
            })
        );
        // `i - i64::MIN` has no wrapping-equivalent `i + c`: must stay
        // on the generic evaluator rather than silently mis-fold
        assert_eq!(as_aff(&slot_minus(i64::MIN)), None);
        let c_plus_slot = IExpr::Add(Box::new(IExpr::Const(7)), Box::new(IExpr::Slot(2)));
        assert_eq!(
            as_aff(&c_plus_slot),
            Some(Aff {
                slot: Some(2),
                add: 7
            })
        );
        // non-affine shapes are left alone
        let scaled = IExpr::Mul(Box::new(IExpr::Slot(0)), Box::new(IExpr::Const(2)));
        assert_eq!(as_aff(&scaled), None);
    }

    #[test]
    fn hints_filter_compiled_nests() {
        let file = parse(STENCIL);
        let ids = eligible_nests(&file);
        let set = KernelSet::build(&file, Some(&ids[..1]), 1);
        assert_eq!(set.len(), 1);
        assert!(set.get(ids[0]).is_some());
        assert!(set.get(ids[1]).is_none());
        // A bogus hint id is silently skipped.
        let set = KernelSet::build(&file, Some(&[StmtId(9999)]), 1);
        assert!(set.is_empty());
    }

    #[test]
    fn escaping_control_flow_is_ineligible() {
        let ids = nest_ids(
            "      program p
      real a(10)
      integer i
      do 10 i = 1, 10
      if (a(i) .gt. 5.0) goto 20
      a(i) = a(i) + 1.0
 10   continue
 20   continue
      end
",
        );
        assert!(
            ids.is_empty(),
            "goto inside nest must stay on the tree walk"
        );
    }

    #[test]
    fn call_inside_nest_is_ineligible_but_inner_nest_compiles() {
        let ids = nest_ids(
            "      program p
      real a(10,10)
      integer i, j, k
      do 30 k = 1, 3
      call acf_sync_1()
      do 21 j = 1, 10
      do 20 i = 1, 10
      a(i,j) = a(i,j) + 1.0
 20   continue
 21   continue
 30   continue
      end
",
        );
        // The k loop contains a call; only the inner j/i nest compiles.
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn in_place_same_row_update_threads_but_carried_dependence_does_not() {
        // Reads at the store's own root coordinate (j) are chunk-local
        // even in-place: the i-carried dependence runs inside one trip.
        let file = parse(
            "      program p
      real a(10,10)
      integer i, j
      do 21 j = 2, 9
      do 20 i = 2, 9
      a(i,j) = a(i-1,j) + a(i,j)
 20   continue
 21   continue
      end
",
        );
        let ids = eligible_nests(&file);
        assert_eq!(ids.len(), 1);
        let set = KernelSet::build(&file, None, 4);
        assert!(set.get(ids[0]).unwrap().threadable);

        // A read at j-1 crosses chunk boundaries: must not thread.
        let file = parse(
            "      program p
      real a(10,10)
      integer i, j
      do 21 j = 2, 9
      do 20 i = 2, 9
      a(i,j) = a(i,j-1) + 1.0
 20   continue
 21   continue
      end
",
        );
        let ids = eligible_nests(&file);
        assert_eq!(ids.len(), 1);
        let set = KernelSet::build(&file, None, 4);
        assert!(!set.get(ids[0]).unwrap().threadable);
    }

    #[test]
    fn aliased_names_rejected_at_runtime() {
        // Two names bound to the same ArrayId defeat the static proof;
        // the invocation-time check catches it.
        let a = ArrInfo {
            name: "a".into(),
            is_int: false,
            written: true,
        };
        let b = ArrInfo {
            name: "b".into(),
            is_int: false,
            written: false,
        };
        assert!(rw_disjoint(
            &[a.clone(), b.clone()],
            &[ArrayId(0), ArrayId(1)]
        ));
        assert!(!rw_disjoint(
            &[a.clone(), b.clone()],
            &[ArrayId(0), ArrayId(0)]
        ));
        let w2 = ArrInfo {
            name: "c".into(),
            is_int: false,
            written: true,
        };
        assert!(!rw_disjoint(&[a, w2], &[ArrayId(3), ArrayId(3)]));
    }

    #[test]
    fn scalar_accumulation_disables_threading() {
        let file = parse(
            "      program p
      real a(10), s
      integer i
      s = 0.0
      do 10 i = 1, 10
      s = s + a(i)
      a(i) = s
 10   continue
      end
",
        );
        let ids = eligible_nests(&file);
        assert_eq!(ids.len(), 1, "reduction still compiles sequentially");
        let set = KernelSet::build(&file, None, 4);
        assert!(!set.get(ids[0]).unwrap().threadable);
    }

    #[test]
    fn boundary_write_without_root_var_disables_threading() {
        let file = parse(
            "      program p
      real a(10,10)
      integer i, j
      do 20 j = 1, 10
      do 10 i = 1, 10
      a(i,j) = 1.0
 10   continue
      a(1,j) = 0.0
      a(5,5) = 2.0
 20   continue
      end
",
        );
        let ids = eligible_nests(&file);
        assert_eq!(ids.len(), 1);
        let set = KernelSet::build(&file, None, 4);
        // a(5,5) has no j dependence in any dimension ⇒ two outer
        // iterations write the same element ⇒ not threadable.
        assert!(!set.get(ids[0]).unwrap().threadable);
    }

    fn run_both(src: &str, threads: usize) {
        let file = parse(src);
        let mut h1 = crate::exec::NoHooks;
        let (mt, ft) =
            crate::exec::run_program_capture(&file, vec![], &mut h1, 0).expect("tree runs");
        let set = KernelSet::build(&file, None, threads);
        assert!(!set.is_empty(), "at least one nest must compile");
        let mut h2 = crate::exec::NoHooks;
        let (mk, fk) = crate::exec::run_program_capture_with(&file, vec![], &mut h2, 0, Some(&set))
            .expect("kernel runs");
        assert_eq!(mt.ops, mk.ops, "op counters must match bit-for-bit");
        assert_eq!(mt.arrays.len(), mk.arrays.len());
        for (a, b) in mt.arrays.iter().zip(&mk.arrays) {
            assert_eq!(a.bounds, b.bounds);
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "array data must be bit-exact");
            }
        }
        for (name, v) in &ft.scalars {
            assert_eq!(Some(v), fk.scalars.get(name), "scalar `{name}` differs");
        }
        assert_eq!(ft.scalars.len(), fk.scalars.len());
    }

    #[test]
    fn kernel_matches_tree_walk_bit_for_bit() {
        let src = "      program p
      real a(40,40), b(40,40), s
      integer i, j, it
      do 11 j = 1, 40
      do 10 i = 1, 40
      a(i,j) = real(i) * 0.5 + real(j) * 0.25
 10   continue
 11   continue
      do 40 it = 1, 5
      do 21 j = 2, 39
      do 20 i = 2, 39
      b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
 20   continue
 21   continue
      do 31 j = 2, 39
      do 30 i = 2, 39
      a(i,j) = b(i,j)
 30   continue
 31   continue
 40   continue
      s = a(20,20) + a(3,3)
      write(*,*) s
      end
";
        run_both(src, 1);
        run_both(src, 4);
    }

    #[test]
    fn kernel_matches_tree_with_conditionals_and_intrinsics() {
        let src = "      program p
      real a(30), b(30), s
      integer i, n
      n = 30
      do 10 i = 1, n
      a(i) = sin(real(i)) * 2.0 + sqrt(real(i))
 10   continue
      do 20 i = 2, n - 1
      if (a(i) .gt. 1.0) then
      b(i) = max(a(i-1), a(i+1), 0.5) + abs(a(i) - 2.0)
      else if (a(i) .lt. -1.0) then
      b(i) = min(a(i-1), a(i+1)) - exp(a(i))
      else
      b(i) = mod(a(i), 3.0) + sign(1.5, a(i)) + atan(a(i))
      endif
      if (b(i) .ge. 10.0) b(i) = log(b(i))
 20   continue
      s = 0.0
      do 30 i = 1, n
      s = s + b(i)
 30   continue
      write(*,*) s
      end
";
        run_both(src, 1);
        run_both(src, 4);
    }

    #[test]
    fn kernel_matches_tree_integer_arrays_and_wrapping() {
        let src = "      program p
      integer m(20), i, k
      real w(20)
      do 10 i = 1, 20
      m(i) = mod(i * 7, 5) + i / 3 + 2 ** mod(i, 4)
 10   continue
      do 20 i = 1, 20
      w(i) = float(m(i)) * 1.5 + real(iabs(3 - i)) + real(nint(0.6 * real(i)))
 20   continue
      k = m(7) + int(w(11))
      write(*,*) k
      end
";
        run_both(src, 1);
        run_both(src, 4);
    }

    #[test]
    fn out_of_bounds_error_matches_tree_walk() {
        let src = "      program p
      real a(10)
      integer i
      do 10 i = 1, 11
      a(i) = 1.0
 10   continue
      end
";
        let file = parse(src);
        let mut h1 = crate::exec::NoHooks;
        let te = crate::exec::run_program_capture(&file, vec![], &mut h1, 0)
            .expect_err("tree walk must report out-of-bounds");
        let set = KernelSet::build(&file, None, 1);
        assert!(!set.is_empty());
        let mut h2 = crate::exec::NoHooks;
        let ke = crate::exec::run_program_capture_with(&file, vec![], &mut h2, 0, Some(&set))
            .expect_err("kernel must report out-of-bounds");
        assert_eq!(
            format!("{te}"),
            format!("{ke}"),
            "error text and line must match"
        );
    }

    #[test]
    fn statement_budget_matches_tree_walk() {
        let src = "      program p
      real a(50)
      integer i
      do 10 i = 1, 50
      a(i) = real(i)
 10   continue
      end
";
        let file = parse(src);
        for limit in [1u64, 10, 25, 51, 52, 1000] {
            let mut h1 = crate::exec::NoHooks;
            let tr = crate::exec::run_program_capture(&file, vec![], &mut h1, limit);
            let set = KernelSet::build(&file, None, 1);
            let mut h2 = crate::exec::NoHooks;
            let kr =
                crate::exec::run_program_capture_with(&file, vec![], &mut h2, limit, Some(&set));
            match (tr, kr) {
                (Ok((mt, _)), Ok((mk, _))) => assert_eq!(mt.ops, mk.ops),
                (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}")),
                (a, b) => panic!(
                    "budget {limit}: tree {:?} vs kernel {:?}",
                    a.map(|_| ()),
                    b.map(|_| ())
                ),
            }
        }
    }

    #[test]
    fn affine_coefficient_analysis() {
        let mut loops = HashSet::new();
        loops.insert(0usize);
        loops.insert(1usize);
        let i = || IExpr::Slot(0);
        let j = || IExpr::Slot(1);
        let c = IExpr::Add(Box::new(i()), Box::new(IExpr::Const(3)));
        assert_eq!(affine_root_coeff(&c, 0, &loops), Some(1));
        let c = IExpr::Sub(Box::new(IExpr::Const(3)), Box::new(i()));
        assert_eq!(affine_root_coeff(&c, 0, &loops), Some(-1));
        let c = IExpr::Mul(Box::new(IExpr::Const(2)), Box::new(i()));
        assert_eq!(affine_root_coeff(&c, 0, &loops), Some(2));
        // i + j: remainder mentions another loop var ⇒ rejected
        let c = IExpr::Add(Box::new(i()), Box::new(j()));
        assert_eq!(affine_root_coeff(&c, 0, &loops), None);
        // j alone: fine for a non-owner dimension of var 0? No — the
        // analysis only says "no root dependence" via Some(0) for
        // loop-invariant terms; j is loop-variant ⇒ None.
        assert_eq!(affine_root_coeff(&j(), 0, &loops), None);
        // plain scalar (slot 2, not a loop var)
        assert_eq!(affine_root_coeff(&IExpr::Slot(2), 0, &loops), Some(0));
        // i * i: nonlinear
        let c = IExpr::Mul(Box::new(i()), Box::new(i()));
        assert_eq!(affine_root_coeff(&c, 0, &loops), None);
    }
}
