//! Expression evaluation and intrinsic functions.

use crate::exec::{Exec, Hooks};
use crate::machine::{Frame, Machine, RunError};
use crate::value::Value;
use autocfd_fortran::{BinOp, Expr, UnOp};

impl<'p, H: Hooks> Exec<'p, H> {
    /// Evaluate an expression in the given frame.
    pub fn eval(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        e: &Expr,
    ) -> Result<Value, RunError> {
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::RealLit(v) => Ok(Value::Real(*v)),
            Expr::StrLit(s) => Ok(Value::Str(s.clone())),
            Expr::LogicalLit(b) => Ok(Value::Logical(*b)),
            Expr::Var(name) => {
                if frame.arrays.contains_key(name) {
                    return Err(RunError::new(format!(
                        "array `{name}` used as a scalar value"
                    )));
                }
                Ok(frame.get_scalar(name))
            }
            Expr::Index { name, indices } => {
                if let Some(&id) = frame.arrays.get(name) {
                    let mut idx = Vec::with_capacity(indices.len());
                    for ix in indices {
                        idx.push(self.eval(m, frame, ix)?.as_i64()?);
                    }
                    m.ops.loads += 1;
                    let v = m.array(id).get(&idx)?;
                    return Ok(if m.array(id).is_int {
                        Value::Int(v as i64)
                    } else {
                        Value::Real(v)
                    });
                }
                if is_intrinsic_name(name) {
                    let mut vals = Vec::with_capacity(indices.len());
                    for ix in indices {
                        vals.push(self.eval(m, frame, ix)?);
                    }
                    return apply_intrinsic(m, name, &vals);
                }
                self.call_function(m, frame, name, indices)
            }
            Expr::Bin { op, lhs, rhs } => {
                // short-circuit logicals
                if *op == BinOp::And {
                    let l = self.eval(m, frame, lhs)?.as_bool()?;
                    if !l {
                        return Ok(Value::Logical(false));
                    }
                    return Ok(Value::Logical(self.eval(m, frame, rhs)?.as_bool()?));
                }
                if *op == BinOp::Or {
                    let l = self.eval(m, frame, lhs)?.as_bool()?;
                    if l {
                        return Ok(Value::Logical(true));
                    }
                    return Ok(Value::Logical(self.eval(m, frame, rhs)?.as_bool()?));
                }
                let l = self.eval(m, frame, lhs)?;
                let r = self.eval(m, frame, rhs)?;
                binop(m, *op, l, r)
            }
            Expr::Un { op, expr } => {
                let v = self.eval(m, frame, expr)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Real(r) => Ok(Value::Real(-r)),
                        _ => Err(RunError::new("negation of non-numeric value")),
                    },
                    UnOp::Not => Ok(Value::Logical(!v.as_bool()?)),
                }
            }
        }
    }
}

/// Apply a numeric/relational binary operator with Fortran promotion
/// rules (int⊕int stays integer; any real operand promotes).
pub fn binop(m: &mut Machine, op: BinOp, l: Value, r: Value) -> Result<Value, RunError> {
    use BinOp::*;
    if op.is_relational() {
        let res = match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => compare(op, *a as f64, *b as f64),
            _ => compare(op, l.as_f64()?, r.as_f64()?),
        };
        return Ok(Value::Logical(res));
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                Div => {
                    if b == 0 {
                        return Err(RunError::new("integer division by zero"));
                    }
                    a / b
                }
                Pow => {
                    if b >= 0 {
                        let mut acc = 1i64;
                        for _ in 0..b {
                            acc = acc.wrapping_mul(a);
                        }
                        acc
                    } else {
                        // Fortran integer power with negative exponent
                        match a {
                            1 => 1,
                            -1 => {
                                if b % 2 == 0 {
                                    1
                                } else {
                                    -1
                                }
                            }
                            0 => return Err(RunError::new("0 ** negative exponent")),
                            _ => 0,
                        }
                    }
                }
                _ => unreachable!("logical ops handled by caller"),
            };
            Ok(Value::Int(v))
        }
        (l, r) => {
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            m.ops.flops += 1;
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Pow => a.powf(b),
                _ => unreachable!("logical ops handled by caller"),
            };
            Ok(Value::Real(v))
        }
    }
}

fn compare(op: BinOp, a: f64, b: f64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!(),
    }
}

/// Names recognized as intrinsic functions.
pub fn is_intrinsic_name(name: &str) -> bool {
    autocfd_ir::build::is_intrinsic(name)
}

/// Apply an intrinsic to evaluated arguments.
pub fn apply_intrinsic(m: &mut Machine, name: &str, args: &[Value]) -> Result<Value, RunError> {
    let need = |n: usize| -> Result<(), RunError> {
        if args.len() < n {
            Err(RunError::new(format!("`{name}` needs {n} argument(s)")))
        } else {
            Ok(())
        }
    };
    let f = |i: usize| args[i].as_f64();
    m.ops.flops += 1;
    match name {
        "abs" => {
            need(1)?;
            match &args[0] {
                Value::Int(v) => Ok(Value::Int(v.abs())),
                v => Ok(Value::Real(v.as_f64()?.abs())),
            }
        }
        "iabs" => {
            need(1)?;
            Ok(Value::Int(args[0].as_i64()?.abs()))
        }
        "max" | "amax1" => {
            need(1)?;
            let all_int = name == "max" && args.iter().all(Value::is_int);
            let mut acc = f(0)?;
            for (i, _) in args.iter().enumerate().skip(1) {
                acc = acc.max(f(i)?);
            }
            Ok(if all_int {
                Value::Int(acc as i64)
            } else {
                Value::Real(acc)
            })
        }
        "min" | "amin1" => {
            need(1)?;
            let all_int = name == "min" && args.iter().all(Value::is_int);
            let mut acc = f(0)?;
            for (i, _) in args.iter().enumerate().skip(1) {
                acc = acc.min(f(i)?);
            }
            Ok(if all_int {
                Value::Int(acc as i64)
            } else {
                Value::Real(acc)
            })
        }
        "sqrt" => {
            need(1)?;
            let v = f(0)?;
            if v < 0.0 {
                return Err(RunError::new("sqrt of negative value"));
            }
            Ok(Value::Real(v.sqrt()))
        }
        "exp" => {
            need(1)?;
            Ok(Value::Real(f(0)?.exp()))
        }
        "log" => {
            need(1)?;
            let v = f(0)?;
            if v <= 0.0 {
                return Err(RunError::new("log of non-positive value"));
            }
            Ok(Value::Real(v.ln()))
        }
        "sin" => {
            need(1)?;
            Ok(Value::Real(f(0)?.sin()))
        }
        "cos" => {
            need(1)?;
            Ok(Value::Real(f(0)?.cos()))
        }
        "tan" => {
            need(1)?;
            Ok(Value::Real(f(0)?.tan()))
        }
        "atan" => {
            need(1)?;
            Ok(Value::Real(f(0)?.atan()))
        }
        "mod" => {
            need(2)?;
            match (&args[0], &args[1]) {
                (Value::Int(a), Value::Int(b)) => {
                    if *b == 0 {
                        return Err(RunError::new("mod by zero"));
                    }
                    Ok(Value::Int(a % b))
                }
                _ => Ok(Value::Real(f(0)? % f(1)?)),
            }
        }
        "sign" => {
            // sign(a, b) = |a| with the sign of b
            need(2)?;
            let (a, b) = (f(0)?, f(1)?);
            Ok(Value::Real(if b < 0.0 { -a.abs() } else { a.abs() }))
        }
        "float" | "real" | "dble" => {
            need(1)?;
            Ok(Value::Real(f(0)?))
        }
        "int" => {
            need(1)?;
            Ok(Value::Int(f(0)? as i64))
        }
        "nint" => {
            need(1)?;
            Ok(Value::Int(f(0)?.round() as i64))
        }
        other => Err(RunError::new(format!("unimplemented intrinsic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {

    use crate::exec::run_program;
    use autocfd_fortran::parse;

    fn eval_str(expr: &str) -> String {
        let src = format!("      program p\n      r = {expr}\n      write(*,*) r\n      end\n");
        let m = run_program(&parse(&src).unwrap(), vec![]).unwrap();
        m.output.last().unwrap().clone()
    }

    fn eval_int(expr: &str) -> String {
        let src = format!("      program p\n      i = {expr}\n      write(*,*) i\n      end\n");
        let m = run_program(&parse(&src).unwrap(), vec![]).unwrap();
        m.output.last().unwrap().clone()
    }

    #[test]
    fn intrinsics_numeric() {
        assert_eq!(eval_str("abs(-2.5)"), "2.500000");
        assert_eq!(eval_str("sqrt(16.0)"), "4.000000");
        assert_eq!(eval_str("max(1.0, 5.0, 3.0)"), "5.000000");
        assert_eq!(eval_str("min(1.0, 5.0, -3.0)"), "-3.000000");
        assert_eq!(eval_str("exp(0.0)"), "1.000000");
        assert_eq!(eval_str("sign(3.0, -1.0)"), "-3.000000");
        assert_eq!(eval_str("sign(-3.0, 2.0)"), "3.000000");
        assert_eq!(eval_str("amax1(1.5, 2.5)"), "2.500000");
    }

    #[test]
    fn intrinsics_integer() {
        assert_eq!(eval_int("mod(7, 3)"), "1");
        assert_eq!(eval_int("iabs(-4)"), "4");
        assert_eq!(eval_int("int(3.9)"), "3");
        assert_eq!(eval_int("nint(3.9)"), "4");
        assert_eq!(eval_int("max(2, 7, 5)"), "7");
    }

    #[test]
    fn integer_pow() {
        assert_eq!(eval_int("2 ** 10"), "1024");
        assert_eq!(eval_int("2 ** 0"), "1");
        assert_eq!(eval_int("3 ** (-1)"), "0"); // Fortran integer semantics
        assert_eq!(eval_int("(-1) ** 5"), "-1");
    }

    #[test]
    fn real_pow() {
        assert_eq!(eval_str("2.0 ** 0.5"), format!("{:.6}", 2.0f64.sqrt()));
    }

    #[test]
    fn mixed_promotion() {
        assert_eq!(eval_str("1 + 0.5"), "1.500000");
        assert_eq!(eval_int("7 / 2"), "3");
        assert_eq!(eval_str("7 / 2.0"), "3.500000");
    }

    #[test]
    fn short_circuit_and() {
        // if .and. did not short-circuit, v(0) would be out of bounds
        let src = "
      program p
      real v(5)
      i = 0
      if (i .ge. 1 .and. v(i) .gt. 0.0) then
        write(*,*) 'yes'
      else
        write(*,*) 'no'
      end if
      end
";
        let m = run_program(&parse(src).unwrap(), vec![]).unwrap();
        assert_eq!(m.output, vec!["no"]);
    }

    #[test]
    fn short_circuit_or() {
        let src = "
      program p
      real v(5)
      i = 0
      if (i .lt. 1 .or. v(i) .gt. 0.0) then
        write(*,*) 'yes'
      end if
      end
";
        let m = run_program(&parse(src).unwrap(), vec![]).unwrap();
        assert_eq!(m.output, vec!["yes"]);
    }

    #[test]
    fn not_operator() {
        let src = "
      program p
      if (.not. (1 .gt. 2)) then
        write(*,*) 'ok'
      end if
      end
";
        let m = run_program(&parse(src).unwrap(), vec![]).unwrap();
        assert_eq!(m.output, vec!["ok"]);
    }

    #[test]
    fn division_by_zero_errors() {
        let src = "      program p\n      i = 1 / 0\n      end\n";
        assert!(run_program(&parse(src).unwrap(), vec![]).is_err());
        let src = "      program p\n      x = sqrt(-1.0)\n      end\n";
        assert!(run_program(&parse(src).unwrap(), vec![]).is_err());
    }

    #[test]
    fn array_as_scalar_errors() {
        let src = "      program p\n      real v(5)\n      x = v + 1.0\n      end\n";
        let e = run_program(&parse(src).unwrap(), vec![]).unwrap_err();
        assert!(e.message.contains("used as a scalar"));
    }
}
