//! Static per-visit traffic forecast for a restructured program.
//!
//! Walks an [`SpmdPlan`] and predicts — without running anything — the
//! message traffic each `acf_*` communication phase generates *per
//! visit*: how many transport frames each rank sends and receives and
//! how many payload bytes they carry. The slab geometry comes from the
//! same [`ghost_region`] / [`owned_region`] functions the live SPMD
//! handlers use, so predicted and measured payload sizes agree by
//! construction; the only free variable left is how many times the
//! program visits each phase, which the cross-validation in `acfc
//! stats` recovers from the measured trace.
//!
//! Array bounds are obtained by building the main program's frame
//! (declarations and `parameter` constants are evaluated; no statement
//! runs), exactly as the interpreter itself would.

use crate::machine::{build_frame, Machine, RunError};
use crate::spmd::{ghost_region, owned_region, region_len};
use autocfd_codegen::SpmdPlan;
use autocfd_fortran::SourceFile;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Per-visit message traffic of one rank in one communication phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankTraffic {
    /// Trace events the rank records per visit: one per send, one per
    /// receive, or the single allreduce event of a reduce phase.
    pub events: u64,
    /// Transport frames the rank sends per visit.
    pub frames_out: u64,
    /// Transport frames the rank receives per visit.
    pub frames_in: u64,
    /// Payload bytes sent per visit (8 bytes per `f64` element; wire
    /// framing is transport-specific and added by the caller).
    pub payload_out: u64,
    /// Payload bytes received per visit.
    pub payload_in: u64,
}

impl RankTraffic {
    /// Total payload bytes moved (both directions).
    pub fn payload(&self) -> u64 {
        self.payload_out + self.payload_in
    }

    /// Total transport frames (both directions).
    pub fn frames(&self) -> u64 {
        self.frames_out + self.frames_in
    }
}

/// Predicted per-visit traffic of one communication phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseForecast {
    /// Phase label, matching the trace phase names (`sync_<id>`,
    /// `pre_<id>`, `post_<id>`, `fill_<id>`, `reduce_<op>_<var>`).
    pub phase: String,
    /// Traffic per rank, indexed by rank.
    pub per_rank: Vec<RankTraffic>,
}

impl PhaseForecast {
    /// Sum of trace events across ranks per visit.
    pub fn events(&self) -> u64 {
        self.per_rank.iter().map(|t| t.events).sum()
    }

    /// Sum of payload bytes across ranks per visit (each payload counted
    /// on both the sending and the receiving side, matching how per-rank
    /// traces account for it).
    pub fn payload(&self) -> u64 {
        self.per_rank.iter().map(|t| t.payload()).sum()
    }

    /// Sum of transport frames across ranks per visit (counted on both
    /// sides, like [`PhaseForecast::payload`]).
    pub fn frames(&self) -> u64 {
        self.per_rank.iter().map(|t| t.frames()).sum()
    }
}

/// Predict the per-visit traffic of every communication phase of `plan`.
///
/// `file` must be the *transformed* source (the one the SPMD interpreter
/// runs): its main program declares the status arrays whose bounds the
/// slab geometry needs. Errors if the main unit is missing or a plan
/// array is not declared there.
pub fn forecast(file: &SourceFile, plan: &SpmdPlan) -> Result<Vec<PhaseForecast>, RunError> {
    let main = file
        .main_unit()
        .ok_or_else(|| RunError::new("no `program` unit"))?;
    let mut m = Machine::new(vec![]);
    let frame = build_frame(&mut m, main, HashMap::new())?;
    let mut bounds: BTreeMap<&str, Vec<(i64, i64)>> = BTreeMap::new();
    for name in plan.dim_axis.keys() {
        let id = frame.arrays.get(name).ok_or_else(|| {
            RunError::new(format!(
                "array `{name}` is not declared in the main program; the \
                 traffic forecast needs its declared bounds"
            ))
        })?;
        bounds.insert(name.as_str(), m.array(*id).bounds.clone());
    }
    let dim_axis_of = |array: &str| -> Result<&Vec<Option<usize>>, RunError> {
        plan.dim_axis
            .get(array)
            .ok_or_else(|| RunError::new(format!("no mapping for `{array}`")))
    };
    let n = plan.ranks();
    let cut = plan.cut_axes();
    let mut out = Vec::new();

    // ---- sync phases: one aggregated frame per neighbor per direction
    for spec in plan.syncs.values() {
        let mut per_rank = vec![RankTraffic::default(); n as usize];
        for (me, t) in per_rank.iter_mut().enumerate() {
            let me = me as u32;
            let mut done: Vec<Vec<[u64; 2]>> = spec
                .arrays
                .iter()
                .map(|sa| vec![[0u64; 2]; sa.ghost.len()])
                .collect();
            for &axis in &cut {
                for dir in [-1i32, 1] {
                    let Some(nb) = plan.partition.neighbor(me, axis, dir) else {
                        continue;
                    };
                    let mut total = 0u64;
                    for (ai, sa) in spec.arrays.iter().enumerate() {
                        let [gl, gh] = sa.ghost.get(axis).copied().unwrap_or([0, 0]);
                        let their_w = if dir > 0 { gl } else { gh };
                        if their_w == 0 {
                            continue;
                        }
                        if let Some(region) = ghost_region(
                            &plan.partition,
                            &bounds[sa.array.as_str()],
                            dim_axis_of(&sa.array)?,
                            nb,
                            axis,
                            -dir,
                            their_w,
                            &done[ai],
                        ) {
                            total += region_len(&region);
                        }
                    }
                    if total > 0 {
                        t.frames_out += 1;
                        t.payload_out += 8 * total;
                    }
                }
                for dir in [-1i32, 1] {
                    if plan.partition.neighbor(me, axis, dir).is_none() {
                        continue;
                    }
                    let mut total = 0u64;
                    let mut any = false;
                    for (ai, sa) in spec.arrays.iter().enumerate() {
                        let [gl, gh] = sa.ghost.get(axis).copied().unwrap_or([0, 0]);
                        let w = if dir < 0 { gl } else { gh };
                        if w == 0 {
                            continue;
                        }
                        if let Some(region) = ghost_region(
                            &plan.partition,
                            &bounds[sa.array.as_str()],
                            dim_axis_of(&sa.array)?,
                            me,
                            axis,
                            dir,
                            w,
                            &done[ai],
                        ) {
                            any = true;
                            total += region_len(&region);
                        }
                    }
                    if any {
                        t.frames_in += 1;
                        t.payload_in += 8 * total;
                    }
                }
                for (ai, sa) in spec.arrays.iter().enumerate() {
                    done[ai][axis] = sa.ghost.get(axis).copied().unwrap_or([0, 0]);
                }
            }
            t.events = t.frames_out + t.frames_in;
        }
        out.push(PhaseForecast {
            phase: format!("sync_{}", spec.id),
            per_rank,
        });
    }

    // ---- self-loop phases: mirror traffic in `pre`, pipeline split
    // between `pre` (receives) and `post` (sends)
    for spec in plan.self_loops.values() {
        let mut pre = vec![RankTraffic::default(); n as usize];
        let mut post = vec![RankTraffic::default(); n as usize];
        for me in 0..n {
            let (tp, to) = (&mut pre[me as usize], &mut post[me as usize]);
            for sa in &spec.arrays {
                let b = &bounds[sa.array.as_str()];
                let map = dim_axis_of(&sa.array)?;
                for step in &sa.mirror {
                    // old-value send to the -dir neighbor…
                    if let Some(nb) = plan.partition.neighbor(me, step.axis, -step.dir) {
                        if let Some(region) = ghost_region(
                            &plan.partition,
                            b,
                            map,
                            nb,
                            step.axis,
                            step.dir,
                            step.width,
                            &[],
                        ) {
                            tp.frames_out += 1;
                            tp.payload_out += 8 * region_len(&region);
                        }
                    }
                    // …and the matching receive from the +dir neighbor
                    if plan.partition.neighbor(me, step.axis, step.dir).is_some() {
                        if let Some(region) = ghost_region(
                            &plan.partition,
                            b,
                            map,
                            me,
                            step.axis,
                            step.dir,
                            step.width,
                            &[],
                        ) {
                            tp.frames_in += 1;
                            tp.payload_in += 8 * region_len(&region);
                        }
                    }
                }
                for step in &sa.forward {
                    // pipeline receive (in `pre`) of the updated slab
                    if plan.partition.neighbor(me, step.axis, step.dir).is_some() {
                        if let Some(region) = ghost_region(
                            &plan.partition,
                            b,
                            map,
                            me,
                            step.axis,
                            step.dir,
                            step.width,
                            &[],
                        ) {
                            tp.frames_in += 1;
                            tp.payload_in += 8 * region_len(&region);
                        }
                    }
                    // pipeline forward (in `post`) to the -dir neighbor
                    if let Some(nb) = plan.partition.neighbor(me, step.axis, -step.dir) {
                        if let Some(region) = ghost_region(
                            &plan.partition,
                            b,
                            map,
                            nb,
                            step.axis,
                            step.dir,
                            step.width,
                            &[],
                        ) {
                            to.frames_out += 1;
                            to.payload_out += 8 * region_len(&region);
                        }
                    }
                }
            }
            tp.events = tp.frames_out + tp.frames_in;
            to.events = to.frames_out + to.frames_in;
        }
        out.push(PhaseForecast {
            phase: format!("pre_{}", spec.id),
            per_rank: pre,
        });
        out.push(PhaseForecast {
            phase: format!("post_{}", spec.id),
            per_rank: post,
        });
    }

    // ---- fill phases: allgather of each listed array's owned regions
    for (id, arrays) in &plan.fills {
        let mut per_rank = vec![RankTraffic::default(); n as usize];
        if n > 1 {
            for (me, t) in per_rank.iter_mut().enumerate() {
                let me = me as u32;
                for array in arrays {
                    let b = &bounds[array.as_str()];
                    let map = dim_axis_of(array)?;
                    if let Some(region) = owned_region(&plan.partition, b, map, me) {
                        t.frames_out += u64::from(n - 1);
                        t.payload_out += 8 * region_len(&region) * u64::from(n - 1);
                    }
                    for peer in 0..n {
                        if peer == me {
                            continue;
                        }
                        if let Some(region) = owned_region(&plan.partition, b, map, peer) {
                            t.frames_in += 1;
                            t.payload_in += 8 * region_len(&region);
                        }
                    }
                }
                t.events = t.frames_out + t.frames_in;
            }
        }
        out.push(PhaseForecast {
            phase: format!("fill_{id}"),
            per_rank,
        });
    }

    // ---- reduce phases: gather-to-0 + broadcast of one f64; the trace
    // records a single allreduce event per rank (none when n == 1 — the
    // runtime short-circuits before touching the transport)
    for spec in &plan.reduces {
        let mut per_rank = vec![RankTraffic::default(); n as usize];
        if n > 1 {
            for (me, t) in per_rank.iter_mut().enumerate() {
                t.events = 1;
                let peers = u64::from(n - 1);
                if me == 0 {
                    t.frames_in = peers;
                    t.frames_out = peers;
                    t.payload_in = 8 * peers;
                    t.payload_out = 8 * peers;
                } else {
                    t.frames_in = 1;
                    t.frames_out = 1;
                    t.payload_in = 8;
                    t.payload_out = 8;
                }
            }
        }
        out.push(PhaseForecast {
            phase: format!("reduce_{}_{}", spec.op, spec.var),
            per_rank,
        });
    }
    Ok(out)
}
