//! Runtime values and arrays.

use crate::machine::RunError;

/// A scalar runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Fortran `integer`.
    Int(i64),
    /// Fortran `real` / `double precision` (both stored as f64).
    Real(f64),
    /// Fortran `logical`.
    Logical(bool),
    /// Character value (only flows into `write`).
    Str(String),
}

impl Value {
    /// Coerce to f64 (Fortran numeric context).
    pub fn as_f64(&self) -> Result<f64, RunError> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Real(v) => Ok(*v),
            Value::Logical(_) | Value::Str(_) => {
                Err(RunError::new("logical/character used in numeric context"))
            }
        }
    }

    /// Coerce to i64 (subscript / loop-bound context; reals truncate like
    /// Fortran assignment to integer).
    pub fn as_i64(&self) -> Result<i64, RunError> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Real(v) => Ok(*v as i64),
            Value::Logical(_) | Value::Str(_) => {
                Err(RunError::new("logical/character used in integer context"))
            }
        }
    }

    /// Coerce to logical.
    pub fn as_bool(&self) -> Result<bool, RunError> {
        match self {
            Value::Logical(b) => Ok(*b),
            _ => Err(RunError::new("numeric value used in logical context")),
        }
    }

    /// True if this is an integer value.
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }
}

/// Fortran's implicit typing rule: names starting with i–n are integer,
/// everything else real.
pub fn implicit_is_integer(name: &str) -> bool {
    matches!(name.chars().next(), Some('i'..='n'))
}

/// A column-major array with per-dimension declared bounds, storing f64
/// elements (integer arrays round on load — adequate for the CFD subset,
/// where status and work arrays are real).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayVal {
    /// Declared `(lower, upper)` bounds per dimension.
    pub bounds: Vec<(i64, i64)>,
    /// Column-major element storage.
    pub data: Vec<f64>,
    /// True if declared `integer` (loads round to the nearest integer).
    pub is_int: bool,
}

impl ArrayVal {
    /// Allocate a zero-filled array.
    pub fn new(bounds: Vec<(i64, i64)>, is_int: bool) -> Result<Self, RunError> {
        let mut len = 1usize;
        for &(lo, hi) in &bounds {
            if hi < lo {
                return Err(RunError::new(format!("array bound {hi} < {lo}")));
            }
            len = len
                .checked_mul((hi - lo + 1) as usize)
                .ok_or_else(|| RunError::new("array too large"))?;
        }
        if len > 1 << 30 {
            return Err(RunError::new("array too large"));
        }
        Ok(Self {
            bounds,
            data: vec![0.0; len],
            is_int,
        })
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.bounds.len()
    }

    /// Extent of dimension `d`.
    pub fn extent(&self, d: usize) -> i64 {
        let (lo, hi) = self.bounds[d];
        hi - lo + 1
    }

    /// Column-major linear offset of `idx`, bounds-checked.
    pub fn offset(&self, idx: &[i64]) -> Result<usize, RunError> {
        if idx.len() != self.bounds.len() {
            return Err(RunError::new(format!(
                "rank mismatch: {} subscripts for rank-{} array",
                idx.len(),
                self.bounds.len()
            )));
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for (d, (&i, &(lo, hi))) in idx.iter().zip(&self.bounds).enumerate() {
            if i < lo || i > hi {
                return Err(RunError::new(format!(
                    "subscript {i} out of bounds {lo}:{hi} in dimension {}",
                    d + 1
                )));
            }
            off += (i - lo) as usize * stride;
            stride *= (hi - lo + 1) as usize;
        }
        Ok(off)
    }

    /// Load element at `idx`.
    pub fn get(&self, idx: &[i64]) -> Result<f64, RunError> {
        let off = self.offset(idx)?;
        let v = self.data[off];
        Ok(if self.is_int { v.round() } else { v })
    }

    /// Store element at `idx`.
    pub fn set(&mut self, idx: &[i64], v: f64) -> Result<(), RunError> {
        let off = self.offset(idx)?;
        self.data[off] = if self.is_int { v.trunc() } else { v };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_typing_rule() {
        assert!(implicit_is_integer("i"));
        assert!(implicit_is_integer("n"));
        assert!(implicit_is_integer("index"));
        assert!(!implicit_is_integer("x"));
        assert!(!implicit_is_integer("err"));
        assert!(!implicit_is_integer("a"));
        assert!(!implicit_is_integer("omega"));
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Real(2.7).as_i64().unwrap(), 2);
        assert_eq!(Value::Real(-2.7).as_i64().unwrap(), -2); // truncation
        assert!(Value::Logical(true).as_bool().unwrap());
        assert!(Value::Logical(true).as_f64().is_err());
        assert!(Value::Int(1).as_bool().is_err());
    }

    #[test]
    fn column_major_layout() {
        // a(2,3): offsets a(1,1)=0, a(2,1)=1, a(1,2)=2 — first index fastest
        let a = ArrayVal::new(vec![(1, 2), (1, 3)], false).unwrap();
        assert_eq!(a.offset(&[1, 1]).unwrap(), 0);
        assert_eq!(a.offset(&[2, 1]).unwrap(), 1);
        assert_eq!(a.offset(&[1, 2]).unwrap(), 2);
        assert_eq!(a.offset(&[2, 3]).unwrap(), 5);
        assert_eq!(a.data.len(), 6);
    }

    #[test]
    fn custom_lower_bounds() {
        let a = ArrayVal::new(vec![(0, 11), (-1, 1)], false).unwrap();
        assert_eq!(a.rank(), 2);
        assert_eq!(a.extent(0), 12);
        assert_eq!(a.extent(1), 3);
        assert_eq!(a.offset(&[0, -1]).unwrap(), 0);
        assert_eq!(a.offset(&[11, 1]).unwrap(), 35);
    }

    #[test]
    fn bounds_checking() {
        let a = ArrayVal::new(vec![(1, 5)], false).unwrap();
        assert!(a.offset(&[0]).is_err());
        assert!(a.offset(&[6]).is_err());
        assert!(a.offset(&[1, 1]).is_err()); // rank mismatch
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = ArrayVal::new(vec![(1, 4), (1, 4)], false).unwrap();
        a.set(&[2, 3], 1.5).unwrap();
        assert_eq!(a.get(&[2, 3]).unwrap(), 1.5);
        assert_eq!(a.get(&[3, 2]).unwrap(), 0.0);
    }

    #[test]
    fn integer_array_truncates() {
        let mut a = ArrayVal::new(vec![(1, 3)], true).unwrap();
        a.set(&[1], 2.9).unwrap();
        assert_eq!(a.get(&[1]).unwrap(), 2.0);
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(ArrayVal::new(vec![(5, 1)], false).is_err());
    }
}
