//! A fast, non-cryptographic hasher for the interpreter's variable maps.
//!
//! The interpreter resolves scalar and array names through `HashMap`s on
//! every expression evaluation; the standard SipHash hasher dominates
//! profiles there. This is the classic FNV-1a-with-multiply mix (the
//! rustc "Fx" construction): excellent for short identifier keys, not
//! HashDoS-resistant — which is irrelevant for interpreting trusted
//! Fortran sources. Only the allowed dependency set is used (none).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word-at-a-time hasher (Fx construction).
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(s: &str) -> u64 {
        FastBuild::default().hash_one(s)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of("acflo1"), hash_of("acflo1"));
    }

    #[test]
    fn distinguishes_typical_identifiers() {
        use std::collections::BTreeSet;
        let names = [
            "i", "j", "k", "it", "err", "v", "vn", "u1", "u2", "f1", "f2", "acflo1", "acfhi1",
            "acflo2", "acfhi2", "psi", "psin", "coarse", "fine", "resid",
        ];
        let hashes: BTreeSet<u64> = names.iter().map(|n| hash_of(n)).collect();
        assert_eq!(
            hashes.len(),
            names.len(),
            "no collisions among common names"
        );
    }

    #[test]
    fn map_works_as_drop_in() {
        let mut m: FastMap<String, i32> = FastMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        assert_eq!(m.get("z"), None);
        assert_eq!(m.len(), 2);
    }
}
