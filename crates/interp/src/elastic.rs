//! Elastic repartitioning: re-decompose a consistent checkpoint cut
//! onto a different rank count.
//!
//! PR 4's snapshots are cut at checkpoint-safe syncs, where no message
//! is in flight anywhere in the mesh — so the only rank-count-specific
//! state they carry is *geometry*: which slice of each globally-indexed
//! array the rank owns, and the `acflo<a>`/`acfhi<a>` subgrid-bound
//! scalars `acf_init` seeded. Everything else (the loop cursor, the
//! reduced convergence scalars, the I/O queues) is identical on every
//! rank of the cut.
//!
//! [`repartition`] exploits that:
//!
//! 1. **Regather** — for every status array, stitch the true global
//!    field by copying each old rank's *owned region* (the same
//!    [`crate::spmd::owned_region`] geometry the live handlers and the
//!    traffic forecast use) out of its snapshot into one full-size
//!    buffer. Owned regions tile the distributed extents, so the stitch
//!    covers every point some rank owns; points outside (boundary
//!    layers on packed dimensions) agree on all ranks and come from
//!    rank 0's copy.
//! 2. **Scatter** — give every new rank the full stitched field (every
//!    rank holds full-size globally-indexed arrays, so scatter is a
//!    whole-array copy) and rewrite its `acflo<a>`/`acfhi<a>` scalars
//!    from the *new* partition's subgrid. Ghost values need no special
//!    handling: a resumed run re-executes the cut sync, which exchanges
//!    every ghost slab the downstream statements read (any ghost cell
//!    read *without* an intervening sync was last synced before the
//!    cut, and its owner cannot have rewritten it since — otherwise the
//!    dependence analysis would have placed a sync — so the stitched
//!    owner value it now holds is the value the stale copy had).
//!
//! 3. **Cursor translation** — the snapshot cursor names the *plan's*
//!    statement id of the cut sync call, and sync ids and inserted
//!    statement ids are partition-specific (different cut axes produce
//!    different sync sets). What IS stable across partitions are the
//!    *source* statement ids the parser minted, so each snapshot also
//!    carries its [`CutSite`]: which source statement list the cut gap
//!    sits in and how many source statements precede it. The target
//!    plan's [`SpmdPlan::checkpoint_sites`] inverts that: same sync id
//!    at the same site keeps the cut verbatim (the `M == N` identity
//!    path); a different sync at the same site re-enters there
//!    (re-executing a sync post-scatter is a no-op — every ghost
//!    already holds its owner's value); and a site with no target-plan
//!    sync at all re-enters at the first statement after the gap
//!    (skipping an exchange is equally a no-op, for the same reason).
//!
//! The result is a set of snapshots indistinguishable from a cut taken
//! by an uninterrupted run on the new partition, which is why `acfc
//! resume --ranks M` holds bit-exact against such a run.

use autocfd_codegen::{CutSite, SpmdPlan};
use autocfd_fortran::ast::{SourceFile, Stmt, StmtId, StmtKind};
use autocfd_grid::{partition, Partition, PartitionSpec};
use autocfd_runtime::checkpoint::{copy_region, ArraySnap, Cursor, ScalarSnap, Snapshot};

use crate::spmd::owned_region;

/// Reconstruct the partition a set of snapshots was cut for, on the
/// grid shape of the target `plan` (the grid directive is part of the
/// source, so old and new runs share it).
fn source_partition(snaps: &[Snapshot], plan: &SpmdPlan) -> Result<Partition, String> {
    let parts = &snaps[0].parts;
    if parts.is_empty() {
        return Err("snapshots predate geometry recording (schema 1): \
             they can resume on their original rank count but not repartition"
            .to_string());
    }
    let shape = &plan.partition.shape;
    if parts.len() != shape.extents.len() {
        return Err(format!(
            "snapshot partition {:?} has {} axes but the grid has {}",
            parts,
            parts.len(),
            shape.extents.len()
        ));
    }
    let tasks: u64 = parts.iter().map(|&p| u64::from(p)).product();
    if tasks as usize != snaps.len() {
        return Err(format!(
            "snapshot partition {:?} implies {tasks} ranks but the epoch has {}",
            parts,
            snaps.len()
        ));
    }
    for (a, (&p, &e)) in parts.iter().zip(&shape.extents).enumerate() {
        if u64::from(p) > e {
            return Err(format!(
                "snapshot partition {parts:?} axis {a} splits {e} points into {p} parts"
            ));
        }
    }
    Ok(partition(shape, &PartitionSpec::new(parts)))
}

/// Find a statement by parser-minted id anywhere under `list`.
fn find_stmt(list: &[Stmt], id: u32) -> Option<&Stmt> {
    for s in list {
        if s.id.0 == id {
            return Some(s);
        }
        for body in s.child_bodies() {
            if let Some(f) = find_stmt(body, id) {
                return Some(f);
            }
        }
    }
    None
}

/// Resolve a cut site's owning statement list in the target plan's
/// (transformed) main unit. Source nesting is identical across plans —
/// restructuring only inserts `acf_*` calls — so the owning statement
/// exists with the same id and the same arm structure.
fn cut_list<'a>(main_body: &'a [Stmt], cut: &CutSite) -> Result<&'a [Stmt], String> {
    if cut.list_kind == 0 {
        return Ok(main_body);
    }
    let owner = find_stmt(main_body, cut.list_stmt).ok_or_else(|| {
        format!(
            "cut site: owning statement {} is not in the main unit",
            cut.list_stmt
        )
    })?;
    let err = || {
        format!(
            "cut site: statement {} does not own a kind-{} list",
            cut.list_stmt, cut.list_kind
        )
    };
    match (&owner.kind, cut.list_kind) {
        (StmtKind::Do { body, .. }, 1) | (StmtKind::DoWhile { body, .. }, 1) => Ok(body.as_slice()),
        (StmtKind::If { then, .. }, 2) => Ok(then.as_slice()),
        (StmtKind::If { else_ifs, .. }, 3) => else_ifs
            .get(cut.arm as usize)
            .map(|(_, b)| b.as_slice())
            .ok_or_else(err),
        (StmtKind::If { els, .. }, 4) => els.as_deref().ok_or_else(err),
        _ => Err(err()),
    }
}

/// The statement a cursor anchored `gap` source statements into `list`
/// re-enters when the target plan has no sync call in that gap: the
/// gap's own `acf_fill`/`acf_pre` prologue if present, else the source
/// statement itself. Trailing calls of the *previous* gap (`acf_post`,
/// reduces) and stray sync calls are stepped over — they already ran
/// before the cut, respectively exchange data every rank already holds.
fn first_after_gap(list: &[Stmt], gap: u64) -> Option<StmtId> {
    let mut seen = 0u64;
    for s in list {
        let inserted = match &s.kind {
            StmtKind::Call { name, .. } => name.starts_with("acf_"),
            _ => false,
        };
        if seen >= gap {
            if !inserted {
                return Some(s.id);
            }
            if let StmtKind::Call { name, .. } = &s.kind {
                if name.starts_with("acf_fill_") || name.starts_with("acf_pre_") {
                    return Some(s.id);
                }
            }
        } else if !inserted {
            seen += 1;
        }
    }
    None
}

/// Map the cut's `(sync id, cursor statement)` onto the target plan via
/// the recorded source-coordinate [`CutSite`].
fn translate_cursor(
    first: &Snapshot,
    plan: &SpmdPlan,
    file: &SourceFile,
) -> Result<(u32, u32), String> {
    let cut = first.cut.ok_or_else(|| {
        "snapshots predate cut-site recording (schema 1): \
         they can resume on their original rank count but not repartition"
            .to_string()
    })?;
    let site = CutSite {
        list_kind: cut.list_kind,
        list_stmt: cut.list_stmt,
        arm: cut.arm,
        gap: cut.gap,
    };
    // The same sync id anchoring the same source gap: keep the cut
    // verbatim (this is the M == N identity path).
    if plan.checkpoint_sites.get(&first.sync_id) == Some(&site) {
        return Ok((first.sync_id, plan.checkpoint_syncs[&first.sync_id].0));
    }
    // A different sync of the target plan sits in the same gap: re-enter
    // at it.
    if let Some((&id, _)) = plan.checkpoint_sites.iter().find(|&(_, s)| *s == site) {
        return Ok((id, plan.checkpoint_syncs[&id].0));
    }
    // The target plan has no sync in this gap at all: re-enter at the
    // first statement after it.
    let main = file
        .main_unit()
        .ok_or_else(|| "cut site: parallel program has no main unit".to_string())?;
    let list = cut_list(&main.body, &site)?;
    let stmt = first_after_gap(list, site.gap).ok_or_else(|| {
        format!(
            "cut site: gap {} is past the end of its statement list in the target plan",
            cut.gap
        )
    })?;
    Ok((first.sync_id, stmt.0))
}

/// Stitch the global field of one array from every old rank's owned
/// region. `pick` selects the array's snapshot on a given rank.
fn stitch<'a>(
    snaps: &'a [Snapshot],
    old: &Partition,
    dim_axis: Option<&[Option<usize>]>,
    what: &str,
    pick: impl Fn(&'a Snapshot) -> Option<&'a ArraySnap>,
) -> Result<ArraySnap, String> {
    let first = pick(&snaps[0]).ok_or_else(|| format!("{what}: missing on rank 0"))?;
    let mut global = first.clone();
    // Arrays without a dimension→axis mapping are not distributed:
    // every rank executed the same statements on them, rank 0's copy
    // *is* the global field.
    let Some(axes) = dim_axis else {
        return Ok(global);
    };
    for (r, snap) in snaps.iter().enumerate() {
        let arr = pick(snap).ok_or_else(|| format!("{what}: missing on rank {r}"))?;
        if arr.bounds != first.bounds || arr.is_int != first.is_int {
            return Err(format!(
                "{what}: rank {r} declares bounds {:?}, rank 0 declares {:?}",
                arr.bounds, first.bounds
            ));
        }
        let Some(region) = owned_region(old, &arr.bounds, axes, r as u32) else {
            continue; // this rank's subgrid misses the array entirely
        };
        copy_region(&arr.bounds, &region, &arr.data, &mut global.data)
            .map_err(|e| format!("{what}: {e}"))?;
    }
    Ok(global)
}

/// Re-decompose the consistent cut `snaps` (one snapshot per old rank,
/// as returned by [`autocfd_runtime::checkpoint::load_epoch`]) onto the
/// partition of `plan`, producing one snapshot per new rank. The old
/// geometry comes from the snapshots themselves (recorded since schema
/// 2); the new geometry — partition, dimension→axis mapping, and the
/// transformed AST `file` the cursor is translated against — from the
/// target compile, which must be of the same source (same grid
/// directive, same status arrays).
///
/// At `M == N` with the same parts this is the identity on every owned
/// region, scalar (the subgrid bounds are recomputed to the same
/// values), cursor, and I/O queue — property-tested on both case
/// studies.
pub fn repartition(
    snaps: &[Snapshot],
    plan: &SpmdPlan,
    file: &SourceFile,
) -> Result<Vec<Snapshot>, String> {
    if snaps.is_empty() {
        return Err("repartition: no snapshots".to_string());
    }
    let first = &snaps[0];
    for (r, s) in snaps.iter().enumerate() {
        if s.rank != r || s.ranks != snaps.len() {
            return Err(format!(
                "repartition: slot {r} holds rank {}/{}",
                s.rank, s.ranks
            ));
        }
        if s.epoch != first.epoch || s.sync_id != first.sync_id || s.cursor != first.cursor {
            return Err(format!("repartition: rank {r} is from a different cut"));
        }
        if s.parts != first.parts {
            return Err(format!("repartition: rank {r} has different geometry"));
        }
    }
    let old = source_partition(snaps, plan)?;
    let (sync_id, cursor_stmt) = translate_cursor(first, plan, file)?;
    let new = &plan.partition;
    let m = plan.ranks() as usize;

    // ---- regather: one global stitch per array and common member
    let axes_of = |name: &str| plan.dim_axis.get(name).map(Vec::as_slice);
    let arrays: Vec<ArraySnap> = first
        .arrays
        .iter()
        .map(|a| {
            stitch(
                snaps,
                &old,
                axes_of(&a.name),
                &format!("array `{}`", a.name),
                |s| s.arrays.iter().find(|x| x.name == a.name),
            )
        })
        .collect::<Result<_, _>>()?;
    let commons: Vec<(String, String, ArraySnap)> = first
        .commons
        .iter()
        .map(|(blk, name, _)| {
            let stitched = stitch(
                snaps,
                &old,
                axes_of(name),
                &format!("common /{blk}/ `{name}`"),
                |s| {
                    s.commons
                        .iter()
                        .find(|(b, n, _)| b == blk && n == name)
                        .map(|(_, _, a)| a)
                },
            )?;
            Ok::<_, String>((blk.clone(), name.clone(), stitched))
        })
        .collect::<Result<_, _>>()?;

    // ---- scatter: every new rank gets the full global field plus its
    // own subgrid-bound scalars
    let out = (0..m)
        .map(|rank| {
            let sg = new.subgrid(rank as u32);
            let mut scalars = first.scalars.clone();
            for a in 0..sg.lo.len() {
                for (name, val) in [
                    (format!("acflo{}", a + 1), sg.lo[a] as i64),
                    (format!("acfhi{}", a + 1), sg.hi[a] as i64),
                ] {
                    match scalars.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, v)) => *v = ScalarSnap::Int(val),
                        None => scalars.push((name, ScalarSnap::Int(val))),
                    }
                }
            }
            scalars.sort_by(|a, b| a.0.cmp(&b.0));
            Snapshot {
                rank,
                ranks: m,
                parts: new.spec.parts.clone(),
                epoch: first.epoch,
                sync_id,
                cursor: Cursor {
                    stmt: cursor_stmt,
                    dos: first.cursor.dos.clone(),
                },
                cut: first.cut,
                arrays: arrays.clone(),
                commons: commons.clone(),
                scalars,
                input: first.input.clone(),
                output: first.output.clone(),
                ops: first.ops,
            }
        })
        .collect();
    Ok(out)
}
