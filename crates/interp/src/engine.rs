//! The unified execution API: [`Engine`] backends driven by a
//! [`RunConfig`] builder.
//!
//! Every way of executing a compiled program — sequential reference run,
//! one rank over an existing communicator, a whole in-process mesh,
//! checkpointed or resumed — goes through one [`RunConfig`]. The config
//! collects the knobs that used to be positional parameters (plan,
//! input, statement budget, overlap, checkpoint cadence) plus the engine
//! selection, builds the chosen [`Engine`] once, and shares it across
//! every rank thread of a parallel run.
//!
//! Two engines exist, and they are bit-exact with each other:
//!
//! * [`TreeEngine`] — the reference tree-walk over the AST
//!   ([`crate::exec`]); always correct, never surprising.
//! * [`KernelEngine`] — comm-free loop nests the kernel compiler proved
//!   eligible ([`crate::kernel`]) run as fused compiled kernels with
//!   pre-resolved strides, optionally split across worker threads;
//!   everything else falls back to the tree walk mid-run with no
//!   observable difference (op counters, error text and line
//!   attribution, trace span structure all match).
//!
//! Which engine runs is an [`EnginePref`] carried in the
//! [`SpmdPlan`] itself, so a plan artifact executed remotely uses the
//! engine the submitting client chose; [`RunConfig::engine`] overrides
//! it per run.

use std::path::PathBuf;

use crate::elastic::repartition;
use crate::exec::{run_program_capture_with, Hooks, NoHooks};
use crate::kernel::{eligible_nests, KernelSet};
use crate::machine::{Frame, Machine, RunError};
use crate::spmd::{run_rank_traced_impl, CheckpointOpts, RankResult, RankRun};
use autocfd_codegen::{EnginePref, SpmdPlan};
use autocfd_fortran::ast::StmtId;
use autocfd_fortran::SourceFile;
use autocfd_runtime::checkpoint::{latest_consistent_epoch, load_epoch, Snapshot};
use autocfd_runtime::{run_spmd, Comm, TelemetryConfig};

/// An execution backend. Both implementations produce bit-identical
/// machines, frames, op counters, errors, and trace span structure; the
/// trait exists so callers can hold either without caring which.
pub trait Engine: Send + Sync {
    /// Which backend this is (the value recorded in plans and traces).
    fn kind(&self) -> EnginePref;

    /// The compiled kernel set, when this engine has one. `None` makes
    /// the executor tree-walk everything.
    fn kernels(&self) -> Option<&KernelSet>;
}

/// The reference tree-walk engine: statement dispatch over the AST.
#[derive(Debug, Default)]
pub struct TreeEngine;

impl Engine for TreeEngine {
    fn kind(&self) -> EnginePref {
        EnginePref::Tree
    }

    fn kernels(&self) -> Option<&KernelSet> {
        None
    }
}

/// The compiled-kernel engine: eligible comm-free loop nests run as
/// fused kernels (threaded across `threads` workers when the nest is
/// provably race-free); everything else tree-walks.
pub struct KernelEngine {
    set: KernelSet,
}

impl KernelEngine {
    /// Compile kernels for `file`'s eligible nests. `hints` restricts
    /// compilation to the listed outermost `do` statements (a plan's
    /// `kernel_nests`); `None` discovers eligibility by walking the
    /// whole program. `threads` > 1 adds a worker pool for the interior
    /// split.
    pub fn compile(file: &SourceFile, hints: Option<&[StmtId]>, threads: u32) -> KernelEngine {
        KernelEngine {
            set: KernelSet::build(file, hints, threads as usize),
        }
    }

    /// The compiled kernel set (mainly for introspection in tests).
    pub fn set(&self) -> &KernelSet {
        &self.set
    }
}

impl Engine for KernelEngine {
    fn kind(&self) -> EnginePref {
        EnginePref::Kernel
    }

    fn kernels(&self) -> Option<&KernelSet> {
        Some(&self.set)
    }
}

/// Builder for one execution of a (transformed or sequential) program.
///
/// ```
/// use autocfd_interp::engine::RunConfig;
/// use autocfd_codegen::EnginePref;
/// # let src = "      program t\n      x = 1.0\n      end\n";
/// let file = autocfd_fortran::parse(src).unwrap();
/// let (m, frame) = RunConfig::new(&file)
///     .engine(EnginePref::Kernel)
///     .threads(4)
///     .run_sequential()
///     .unwrap();
/// assert_eq!(frame.get_scalar("x"), autocfd_interp::Value::Real(1.0));
/// # let _ = m;
/// ```
///
/// Engine resolution, weakest to strongest: the default ([`Tree`]), the
/// attached plan's `engine`/`threads` fields, then explicit
/// [`RunConfig::engine`] / [`RunConfig::threads`] calls.
///
/// [`Tree`]: EnginePref::Tree
pub struct RunConfig<'a> {
    file: &'a SourceFile,
    plan: Option<&'a SpmdPlan>,
    input: Vec<f64>,
    stmt_limit: u64,
    overlap: bool,
    engine: Option<EnginePref>,
    threads: Option<u32>,
    ckpt: Option<CheckpointOpts>,
    resume_dir: Option<PathBuf>,
    resume_epoch: Option<u64>,
    telemetry: Option<TelemetryConfig>,
}

impl<'a> RunConfig<'a> {
    /// A fresh config for `file`: no plan, empty input, unlimited
    /// statements, overlap off, tree engine.
    pub fn new(file: &'a SourceFile) -> RunConfig<'a> {
        RunConfig {
            file,
            plan: None,
            input: Vec::new(),
            stmt_limit: 0,
            overlap: false,
            engine: None,
            threads: None,
            ckpt: None,
            resume_dir: None,
            resume_epoch: None,
            telemetry: None,
        }
    }

    /// Attach the SPMD plan (required for the parallel executors). The
    /// plan's `engine`/`threads`/`kernel_nests` become the defaults for
    /// this run; explicit [`RunConfig::engine`]/[`RunConfig::threads`]
    /// calls override them regardless of call order.
    pub fn plan(mut self, plan: &'a SpmdPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The program's list-directed input queue (each rank of a parallel
    /// run gets its own copy).
    pub fn input(mut self, input: Vec<f64>) -> Self {
        self.input = input;
        self
    }

    /// Statement budget; 0 (the default) is unlimited.
    pub fn stmt_limit(mut self, limit: u64) -> Self {
        self.stmt_limit = limit;
        self
    }

    /// Hide eligible halo exchanges behind interior computation.
    pub fn overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Select the execution engine explicitly, overriding the plan.
    pub fn engine(mut self, kind: EnginePref) -> Self {
        self.engine = Some(kind);
        self
    }

    /// Kernel-engine worker threads (≥ 1), overriding the plan. Ignored
    /// by the tree engine.
    pub fn threads(mut self, n: u32) -> Self {
        self.threads = Some(n);
        self
    }

    /// Write per-rank snapshots at checkpoint-safe sync points.
    pub fn checkpoint(mut self, opts: CheckpointOpts) -> Self {
        self.ckpt = Some(opts);
        self
    }

    /// Stream live per-rank stat frames while the program runs (see
    /// [`autocfd_runtime::telemetry`]): each rank aggregates its trace
    /// spans into periodic frames published over the transport and, when
    /// the config names a spool directory, to
    /// `telemetry-rank-<r>.jsonl` files `acfc top DIR` tails. The
    /// config's `engine` label is overwritten with the engine this run
    /// resolves to.
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Resume the parallel executors from the checkpoint directory
    /// `dir` instead of starting fresh. By default the newest epoch
    /// every rank of the *recorded* mesh completed is used; pin one
    /// with [`RunConfig::resume_epoch`]. The snapshots need not match
    /// the attached plan's rank count — when they differ (or the
    /// partition shape differs) the cut is elastically re-decomposed
    /// through [`crate::elastic::repartition`], so an N-rank checkpoint
    /// resumes bit-exactly on an M-rank plan.
    pub fn resume_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume_dir = Some(dir.into());
        self
    }

    /// Pin the epoch a [`RunConfig::resume_from`] run loads, instead of
    /// the newest consistent one. Required when several processes of
    /// one mesh resume from a directory that is still being written to
    /// (a launcher picks the epoch once; workers must not re-infer it).
    pub fn resume_epoch(mut self, epoch: u64) -> Self {
        self.resume_epoch = Some(epoch);
        self
    }

    /// Load (and, when geometry differs, elastically repartition) the
    /// snapshots this config resumes from: `Ok(None)` when the config
    /// has no resume directory, otherwise one snapshot per rank of
    /// `plan`. Deterministic, so every process of a mesh that calls it
    /// independently reconstructs the identical state.
    fn load_resume_snaps(&self, plan: &SpmdPlan) -> Result<Option<Vec<Snapshot>>, RunError> {
        let Some(dir) = &self.resume_dir else {
            return Ok(None);
        };
        let epoch = match self.resume_epoch {
            Some(e) => e,
            None => latest_consistent_epoch(dir).ok_or_else(|| {
                RunError::new(format!(
                    "resume: no consistent epoch under {}",
                    dir.display()
                ))
            })?,
        };
        let snaps = load_epoch(dir, epoch).map_err(|e| RunError::new(format!("resume: {e}")))?;
        let same_geometry = snaps.len() == plan.ranks() as usize
            && (snaps[0].parts.is_empty() || snaps[0].parts == plan.partition.spec.parts);
        if same_geometry {
            return Ok(Some(snaps));
        }
        repartition(&snaps, plan, self.file)
            .map(Some)
            .map_err(|e| RunError::new(format!("resume: {e}")))
    }

    /// The engine this config resolves to (explicit > plan > tree).
    pub fn resolved_engine(&self) -> EnginePref {
        self.engine
            .or(self.plan.map(|p| p.engine))
            .unwrap_or_default()
    }

    /// The thread count this config resolves to (explicit > plan > 1).
    pub fn resolved_threads(&self) -> u32 {
        self.threads
            .or(self.plan.map(|p| p.threads))
            .unwrap_or(1)
            .max(1)
    }

    /// Build the resolved engine for this config's file. Kernel
    /// compilation honors the plan's `kernel_nests` hints when present
    /// (the transformed program's proven-eligible nests); without a plan
    /// the whole program is walked for eligibility.
    pub fn build_engine(&self) -> Box<dyn Engine> {
        match self.resolved_engine() {
            EnginePref::Tree => Box::new(TreeEngine),
            EnginePref::Kernel => {
                let hints = self
                    .plan
                    .map(|p| p.kernel_nests.as_slice())
                    .filter(|h| !h.is_empty());
                Box::new(KernelEngine::compile(
                    self.file,
                    hints,
                    self.resolved_threads(),
                ))
            }
        }
    }

    /// Run the program sequentially (no hooks, no plan required) on the
    /// resolved engine.
    pub fn run_sequential(&self) -> Result<(Machine, Frame), RunError> {
        let engine = self.build_engine();
        let mut hooks = NoHooks;
        run_program_capture_with(
            self.file,
            self.input.clone(),
            &mut hooks,
            self.stmt_limit,
            engine.kernels(),
        )
    }

    /// Run the program sequentially with caller-supplied hooks (the
    /// escape hatch for custom instrumentation).
    pub fn run_with_hooks<H: Hooks>(&self, hooks: &mut H) -> Result<(Machine, Frame), RunError> {
        let engine = self.build_engine();
        run_program_capture_with(
            self.file,
            self.input.clone(),
            hooks,
            self.stmt_limit,
            engine.kernels(),
        )
    }

    fn plan_or_err(&self) -> Result<&'a SpmdPlan, RunError> {
        self.plan.ok_or_else(|| {
            RunError::new("RunConfig: parallel execution needs a plan (use .plan())")
        })
    }

    /// Attach this config's telemetry sink (if any) to `comm`, stamping
    /// the frames with the engine the run resolved to.
    fn attach_telemetry(&self, comm: &Comm, kernels: bool) {
        if let Some(config) = &self.telemetry {
            let mut config = config.clone();
            config.engine = if kernels { "kernel" } else { "tree" }.to_string();
            comm.enable_telemetry(config);
        }
    }

    /// Execute one rank over an existing communicator; the rank identity
    /// comes from `comm.rank()`.
    pub fn run_rank(&self, comm: &Comm) -> Result<RankResult, RunError> {
        let run = self.run_rank_traced(comm);
        let (machine, frame) = run.outcome?;
        Ok(RankResult {
            machine,
            frame,
            comm_stats: run.comm_stats,
            wire_stats: run.wire_stats,
            phases: run.phases,
            trace: run.trace,
        })
    }

    /// Execute one rank, always returning trace and statistics — even
    /// when the program fails mid-run. When the config carries a
    /// [`RunConfig::resume_from`] directory, the machine is rebuilt,
    /// overwritten from this rank's (possibly repartitioned) snapshot,
    /// and execution re-enters at the snapshot's cursor by re-executing
    /// the cut sync.
    pub fn run_rank_traced(&self, comm: &Comm) -> RankRun {
        let fail = |e: RunError| RankRun {
            outcome: Err(e),
            comm_stats: comm.stats().snapshot(),
            wire_stats: comm.wire_stats(),
            phases: comm.phase_names(),
            trace: comm.take_trace(),
            engine: "tree".to_string(),
            epoch_unix_ns: autocfd_runtime::epoch_unix_ns(comm.epoch()),
        };
        let plan = match self.plan_or_err() {
            Ok(p) => p,
            Err(e) => return fail(e),
        };
        let snaps = match self.load_resume_snaps(plan) {
            Ok(s) => s,
            Err(e) => return fail(e),
        };
        let engine = self.build_engine();
        self.attach_telemetry(comm, engine.kernels().is_some());
        run_rank_traced_impl(
            self.file,
            plan,
            self.input.clone(),
            self.stmt_limit,
            comm,
            self.overlap,
            self.ckpt.clone(),
            snaps.as_ref().map(|s| &s[comm.rank()]),
            engine.kernels(),
        )
    }

    /// Run the plan's full mesh on `plan.ranks()` in-process rank
    /// threads. The engine is built once and shared by every rank (one
    /// kernel compilation, one worker pool); likewise any resume
    /// snapshots are loaded and repartitioned once.
    pub fn run_parallel(&self) -> Result<Vec<RankResult>, RunError> {
        let plan = self.plan_or_err()?;
        let snaps = self.load_resume_snaps(plan)?;
        let engine = self.build_engine();
        let kernels = engine.kernels();
        let n = plan.ranks() as usize;
        let results = run_spmd(n, |comm| {
            self.attach_telemetry(&comm, kernels.is_some());
            let run = run_rank_traced_impl(
                self.file,
                plan,
                self.input.clone(),
                self.stmt_limit,
                &comm,
                self.overlap,
                self.ckpt.clone(),
                snaps.as_ref().map(|s| &s[comm.rank()]),
                kernels,
            );
            let (machine, frame) = run.outcome?;
            Ok(RankResult {
                machine,
                frame,
                comm_stats: run.comm_stats,
                wire_stats: run.wire_stats,
                phases: run.phases,
                trace: run.trace,
            })
        });
        results.into_iter().collect()
    }

    /// Like [`RunConfig::run_parallel`], but every rank returns a
    /// [`RankRun`] — traces and statistics survive individual rank
    /// failures.
    pub fn run_parallel_traced(&self) -> Vec<RankRun> {
        let dead = |e: RunError| {
            vec![RankRun {
                outcome: Err(e),
                comm_stats: (0, 0, 0, 0),
                wire_stats: Default::default(),
                phases: Vec::new(),
                trace: Vec::new(),
                engine: "tree".to_string(),
                epoch_unix_ns: 0,
            }]
        };
        let plan = match self.plan_or_err() {
            Ok(p) => p,
            Err(e) => return dead(e),
        };
        let snaps = match self.load_resume_snaps(plan) {
            Ok(s) => s,
            Err(e) => return dead(e),
        };
        let engine = self.build_engine();
        let kernels = engine.kernels();
        let n = plan.ranks() as usize;
        run_spmd(n, |comm| {
            self.attach_telemetry(&comm, kernels.is_some());
            run_rank_traced_impl(
                self.file,
                plan,
                self.input.clone(),
                self.stmt_limit,
                &comm,
                self.overlap,
                self.ckpt.clone(),
                snaps.as_ref().map(|s| &s[comm.rank()]),
                kernels,
            )
        })
    }
}

/// Statement ids of the outermost comm-free loop nests in `file` the
/// kernel compiler accepts — what a driver stores into a plan's
/// `kernel_nests` so remote executions compile the same set. Re-exported
/// from [`crate::kernel::eligible_nests`].
pub fn kernel_nests(file: &SourceFile) -> Vec<StmtId> {
    eligible_nests(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        autocfd_fortran::parse(src).unwrap()
    }

    const STENCIL: &str = "
      program s
      real a(16,16), b(16,16)
      integer i, j
      do 11 j = 1, 16
        do 10 i = 1, 16
          a(i,j) = i + 2*j
10      continue
11    continue
      do 21 j = 2, 15
        do 20 i = 2, 15
          b(i,j) = 0.25*(a(i-1,j)+a(i+1,j)+a(i,j-1)+a(i,j+1))
20      continue
21    continue
      write(*,*) b(8,8)
      end
";

    #[test]
    fn tree_and_kernel_sequential_runs_are_bit_identical() {
        let file = parse(STENCIL);
        let (mt, ft) = RunConfig::new(&file).run_sequential().unwrap();
        let (mk, fk) = RunConfig::new(&file)
            .engine(EnginePref::Kernel)
            .threads(4)
            .run_sequential()
            .unwrap();
        assert_eq!(mt.ops, mk.ops);
        assert_eq!(mt.output, mk.output);
        assert_eq!(ft.scalars.len(), fk.scalars.len());
    }

    #[test]
    fn resolution_order_is_explicit_over_plan_over_default() {
        let file = parse(STENCIL);
        let cfg = RunConfig::new(&file);
        assert_eq!(cfg.resolved_engine(), EnginePref::Tree);
        assert_eq!(cfg.resolved_threads(), 1);
        let cfg = cfg.engine(EnginePref::Kernel).threads(3);
        assert_eq!(cfg.resolved_engine(), EnginePref::Kernel);
        assert_eq!(cfg.resolved_threads(), 3);
    }

    #[test]
    fn parallel_without_plan_is_a_runtime_error_not_a_panic() {
        let file = parse(STENCIL);
        let err = RunConfig::new(&file).run_parallel().unwrap_err();
        assert!(err.to_string().contains("needs a plan"), "{err}");
    }

    #[test]
    fn kernel_engine_compiles_hinted_subset() {
        let file = parse(STENCIL);
        let all = kernel_nests(&file);
        assert_eq!(all.len(), 2, "both nests are eligible");
        let eng = KernelEngine::compile(&file, Some(&all[..1]), 2);
        assert_eq!(eng.set().len(), 1, "hints restrict compilation");
        assert_eq!(eng.kind(), EnginePref::Kernel);
        assert!(eng.kernels().is_some());
    }
}
