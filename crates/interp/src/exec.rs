//! Statement execution and program driving.

use crate::kernel::{KernelClamp, KernelSet};
use crate::machine::{build_frame, ArrayId, Binding, Frame, Machine, RunError};
use crate::value::Value;
use autocfd_fortran::ast::{LValue, SourceFile, Stmt, StmtId, StmtKind, UnitKind};
use autocfd_runtime::{DoProgress, EventKind, Recorder};
use std::collections::HashMap;
use std::time::Instant;

/// Control flow outcome of executing a statement (list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Fall through to the next statement.
    Normal,
    /// `goto` to a label, to be resolved by an enclosing statement list.
    Goto(u32),
    /// `return` from the current unit.
    Return,
    /// `stop` — terminate the whole program.
    Stop,
}

/// Interior/boundary split geometry for one overlapped loop nest (see
/// [`Hooks::split_loop`]). The widths clamp the named loop variable's
/// evaluated range `[from, to]` into three disjoint chunks that exactly
/// cover it: the interior `[from+low, to-high]`, the low strip
/// `[from, min(to, from+low-1)]`, and the high strip
/// `[max(from+low, to-high+1), to]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSplit {
    /// Loop variable to clamp — a loop inside the split `do` statement's
    /// perfect-nest prefix (possibly the split statement itself).
    pub var: String,
    /// Boundary width at the low end of the variable's range.
    pub low_width: u64,
    /// Boundary width at the high end.
    pub high_width: u64,
}

/// Hook interface for `call acf_*` statements inserted by the
/// restructurer. Return `Ok(true)` when the call was handled; `Ok(false)`
/// falls through to ordinary subroutine dispatch.
pub trait Hooks {
    /// Handle a runtime call in the current frame.
    fn call(&mut self, m: &mut Machine, frame: &mut Frame, name: &str) -> Result<bool, RunError>;

    /// When `Ok(Some(..))`, the engine executes this `do` statement in
    /// three chunks — interior first, then (after
    /// [`Hooks::finish_split`]) the low and high boundary strips — so
    /// messages a preceding hook call left in flight are hidden behind
    /// the interior computation. Called for every `do` statement with
    /// the machine borrowed mutably so an implementation can *complete*
    /// in-flight communication when a different loop runs first (the
    /// blocking fallback). The default never splits.
    fn split_loop(&mut self, m: &mut Machine, stmt: &Stmt) -> Result<Option<LoopSplit>, RunError> {
        let _ = (m, stmt);
        Ok(None)
    }

    /// Complete the communication an earlier hook call left in flight;
    /// runs between the interior chunk and the boundary strips of a
    /// split loop. The default has nothing to complete.
    fn finish_split(&mut self, m: &mut Machine, frame: &mut Frame) -> Result<(), RunError> {
        let _ = (m, frame);
        Ok(())
    }

    /// Where the engine should record compute spans (timed loop-nest
    /// executions), or `None` (the default) to skip span tracking
    /// entirely. SPMD hooks return their rank's communicator so compute
    /// and communication land on one timeline.
    fn recorder(&self) -> Option<&dyn Recorder> {
        None
    }

    /// Whether the engine should maintain a resume cursor — the stack of
    /// top-level `do`-loop positions — and report it through
    /// [`Hooks::hook_site`]. Off by default (zero overhead); checkpoint
    /// hooks turn it on.
    fn wants_cursor(&self) -> bool {
        false
    }

    /// Called just before [`Hooks::call`] for every `acf_*` call at the
    /// main program's call depth, when [`Hooks::wants_cursor`] is on:
    /// `stmt` is the call statement's identity and `cursor` the enclosing
    /// top-level `do` loops outermost-first. Together they pin the exact
    /// execution point a checkpoint must restore to.
    fn hook_site(&mut self, stmt: StmtId, cursor: &[DoProgress]) {
        let _ = (stmt, cursor);
    }
}

/// The no-op hook set (sequential execution).
pub struct NoHooks;

impl Hooks for NoHooks {
    fn call(&mut self, _: &mut Machine, _: &mut Frame, _: &str) -> Result<bool, RunError> {
        Ok(false)
    }
}

/// The execution engine: a program plus its hook set.
pub struct Exec<'p, H: Hooks> {
    /// The program being interpreted.
    pub program: &'p SourceFile,
    /// Runtime hooks.
    pub hooks: &'p mut H,
    /// Current call depth (Fortran 77 forbids recursion; a cycle in the
    /// call graph is reported instead of overflowing the stack).
    pub depth: u32,
    // Completed comm-free loop executions not yet handed to the
    // recorder. An enclosing comm-free loop replaces its children with
    // one merged span, so what ends up recorded is the *maximal*
    // comm-free loop nests; flushed before every `acf_*` hook call to
    // keep the rank's trace chronological.
    pending: Vec<(Instant, Instant)>,
    // Monotone count of `acf_*` hook dispatches; a loop whose body left
    // it unchanged was communication-free.
    hook_calls: u64,
    // Resume-cursor tracking (see [`Hooks::wants_cursor`]): the stack of
    // depth-0 `do` loops currently executing, outermost first. Only
    // maintained when `track` is set — sequential runs pay nothing.
    cursor: Vec<DoProgress>,
    track: bool,
    // Compiled kernels for eligible loop nests (the kernel engine).
    // `None` tree-walks everything. A `do` statement with a compiled
    // kernel whose entry check passes runs fused; otherwise it falls
    // back to the tree walk from an identical state.
    kernels: Option<&'p KernelSet>,
}

/// Scalar copy-out obligations after a call: `(dummy, caller variable)`.
type CopyBacks = Vec<(String, String)>;

/// Run the program's `program` unit to completion sequentially.
pub fn run_program(file: &SourceFile, input: Vec<f64>) -> Result<Machine, RunError> {
    let mut hooks = NoHooks;
    run_program_with_hooks(file, input, &mut hooks, 0)
}

/// Run with hooks and a statement budget (0 = unlimited).
pub fn run_program_with_hooks<H: Hooks>(
    file: &SourceFile,
    input: Vec<f64>,
    hooks: &mut H,
    stmt_limit: u64,
) -> Result<Machine, RunError> {
    run_program_capture(file, input, hooks, stmt_limit).map(|(m, _)| m)
}

/// Like [`run_program_with_hooks`], but also returns the main program's
/// final frame so callers can inspect named arrays and scalars (used by
/// the sequential-vs-parallel equivalence checks).
pub fn run_program_capture<H: Hooks>(
    file: &SourceFile,
    input: Vec<f64>,
    hooks: &mut H,
    stmt_limit: u64,
) -> Result<(Machine, Frame), RunError> {
    run_program_capture_with(file, input, hooks, stmt_limit, None)
}

/// [`run_program_capture`] with an optional compiled-kernel set: `do`
/// nests with a compiled kernel execute fused (and possibly threaded)
/// instead of tree-walked, bit-exactly. This is the full-surface entry
/// the [`crate::engine`] backends drive.
pub fn run_program_capture_with<H: Hooks>(
    file: &SourceFile,
    input: Vec<f64>,
    hooks: &mut H,
    stmt_limit: u64,
    kernels: Option<&KernelSet>,
) -> Result<(Machine, Frame), RunError> {
    let main = file
        .main_unit()
        .ok_or_else(|| RunError::new("no `program` unit"))?;
    let mut m = Machine::new(input);
    m.stmt_limit = stmt_limit;
    let track = hooks.wants_cursor();
    let mut exec = Exec {
        program: file,
        hooks,
        depth: 0,
        pending: Vec::new(),
        hook_calls: 0,
        cursor: Vec::new(),
        track,
        kernels,
    };
    let mut frame = build_frame(&mut m, main, HashMap::new())?;
    let flow = exec.exec_stmts(&mut m, &mut frame, &main.body)?;
    exec.flush_spans();
    if let Flow::Goto(l) = flow {
        return Err(RunError::new(format!("unresolved goto {l} at top level")));
    }
    Ok((m, frame))
}

/// Resume a program at a checkpointed execution point instead of from
/// the top: build the main frame, let `seed` overwrite it with restored
/// state, then walk the *static* path from the main body to the
/// statement `target` (the checkpoint-safe `acf_sync_*` call the
/// snapshot was taken at), re-entering each enclosing top-level `do`
/// loop mid-flight per `dos` (outermost first). Execution re-runs the
/// target statement itself — the checkpoint was written *before* its
/// exchange, so re-executing it regenerates all communication — and
/// continues normally from there.
///
/// Control flow below the target needs no saved state: `if` arms are
/// re-derived from restored scalars, and a `do while` re-evaluates its
/// condition. Only counted `do` loops carry hidden position (the trips
/// already run), which is exactly what `dos` supplies.
pub fn run_program_capture_from<H: Hooks>(
    file: &SourceFile,
    input: Vec<f64>,
    hooks: &mut H,
    stmt_limit: u64,
    target: StmtId,
    dos: &[DoProgress],
    seed: impl FnOnce(&mut Machine, &mut Frame) -> Result<(), RunError>,
) -> Result<(Machine, Frame), RunError> {
    run_program_capture_from_with(file, input, hooks, stmt_limit, target, dos, seed, None)
}

/// [`run_program_capture_from`] with an optional compiled-kernel set
/// (see [`run_program_capture_with`]). Resume targets are
/// checkpoint-safe sync calls, which can never sit inside a
/// kernel-eligible nest, so the resume walk itself is unaffected;
/// kernels only accelerate the re-executed remainder.
#[allow(clippy::too_many_arguments)]
pub fn run_program_capture_from_with<H: Hooks>(
    file: &SourceFile,
    input: Vec<f64>,
    hooks: &mut H,
    stmt_limit: u64,
    target: StmtId,
    dos: &[DoProgress],
    seed: impl FnOnce(&mut Machine, &mut Frame) -> Result<(), RunError>,
    kernels: Option<&KernelSet>,
) -> Result<(Machine, Frame), RunError> {
    let main = file
        .main_unit()
        .ok_or_else(|| RunError::new("no `program` unit"))?;
    let mut m = Machine::new(input);
    m.stmt_limit = stmt_limit;
    let track = hooks.wants_cursor();
    let mut exec = Exec {
        program: file,
        hooks,
        depth: 0,
        pending: Vec::new(),
        hook_calls: 0,
        cursor: Vec::new(),
        track,
        kernels,
    };
    let mut frame = build_frame(&mut m, main, HashMap::new())?;
    seed(&mut m, &mut frame)?;
    let flow = exec.resume_stmts(&mut m, &mut frame, &main.body, target, dos)?;
    exec.flush_spans();
    if let Flow::Goto(l) = flow {
        return Err(RunError::new(format!("unresolved goto {l} at top level")));
    }
    Ok((m, frame))
}

/// Whether `target` is `s` or lives anywhere inside its nested bodies.
fn contains_stmt(s: &Stmt, target: StmtId) -> bool {
    if s.id == target {
        return true;
    }
    match &s.kind {
        StmtKind::If {
            then,
            else_ifs,
            els,
            ..
        } => {
            then.iter().any(|c| contains_stmt(c, target))
                || else_ifs
                    .iter()
                    .any(|(_, b)| b.iter().any(|c| contains_stmt(c, target)))
                || els
                    .as_ref()
                    .is_some_and(|b| b.iter().any(|c| contains_stmt(c, target)))
        }
        StmtKind::LogicalIf { stmt, .. } => contains_stmt(stmt, target),
        StmtKind::Do { body, .. } | StmtKind::DoWhile { body, .. } => {
            body.iter().any(|c| contains_stmt(c, target))
        }
        _ => false,
    }
}

/// Snapshot taken at loop entry for compute-span tracking; `None` when
/// the hook set has no recorder (tracking disabled, zero overhead).
type SpanMark = Option<(usize, u64, Instant)>;

/// Which chunk of a split loop is being executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Clamp {
    /// `[from+low, to-high]` — safe while messages are in flight.
    Interior,
    /// `[from, min(to, from+low-1)]` — needs the lower ghosts.
    Low,
    /// `[max(from+low, to-high+1), to]` — needs the upper ghosts.
    High,
}

/// The sub-range of `[f, t]` a chunk covers. The three chunks are
/// disjoint and exactly cover `[f, t]` for every combination of widths
/// (an oversized width only empties the interior).
fn clamp_range(f: i64, t: i64, split: &LoopSplit, mode: Clamp) -> (i64, i64) {
    let lw = split.low_width as i64;
    let hw = split.high_width as i64;
    match mode {
        Clamp::Interior => (f + lw, t - hw),
        Clamp::Low => (f, t.min(f + lw - 1)),
        Clamp::High => ((f + lw).max(t - hw + 1), t),
    }
}

/// Split chunks must fall through: the restructurer only emits splits
/// for nests it proved free of escaping control flow.
fn ensure_normal(flow: Flow, line: u32) -> Result<(), RunError> {
    if flow == Flow::Normal {
        Ok(())
    } else {
        Err(RunError::new("control flow escaped an overlapped loop nest").at(line))
    }
}

impl<'p, H: Hooks> Exec<'p, H> {
    /// Loop-entry half of compute-span tracking: remember how many
    /// pending spans and hook dispatches exist so far, and when the loop
    /// started.
    fn span_enter(&self) -> SpanMark {
        self.hooks.recorder()?;
        Some((self.pending.len(), self.hook_calls, Instant::now()))
    }

    /// Loop-exit half: if the loop body dispatched no `acf_*` call, it
    /// was pure computation — drop any spans its inner loops queued and
    /// queue one merged span for the whole nest.
    fn span_exit(&mut self, mark: SpanMark) {
        if let Some((pend0, calls0, t0)) = mark {
            if self.hook_calls == calls0 {
                self.pending.truncate(pend0);
                self.pending.push((t0, Instant::now()));
            }
        }
    }

    /// Hand queued compute spans to the hooks' recorder. Runs before
    /// every `acf_*` dispatch (so recorded spans stay chronological with
    /// communication events) and once at end of program.
    fn flush_spans(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let spans = std::mem::take(&mut self.pending);
        if let Some(rec) = self.hooks.recorder() {
            for (start, end) in spans {
                rec.record_span(EventKind::Compute, start, end);
            }
        }
    }

    /// Execute a statement list, resolving `goto`s whose target label is
    /// in this list.
    pub fn exec_stmts(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        stmts: &[Stmt],
    ) -> Result<Flow, RunError> {
        let mut i = 0usize;
        while i < stmts.len() {
            match self.exec_stmt(m, frame, &stmts[i])? {
                Flow::Normal => i += 1,
                Flow::Goto(l) => match stmts.iter().position(|s| s.label == Some(l)) {
                    Some(j) => i = j,
                    None => return Ok(Flow::Goto(l)),
                },
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    /// Re-enter a statement list at the (sub)tree containing `target`,
    /// then continue executing the rest of the list normally — with
    /// `goto` resolution against the *full* list, so a convergence jump
    /// out of the resumed loop finds its landing label.
    fn resume_stmts(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        stmts: &[Stmt],
        target: StmtId,
        dos: &[DoProgress],
    ) -> Result<Flow, RunError> {
        let idx = stmts
            .iter()
            .position(|s| contains_stmt(s, target))
            .ok_or_else(|| {
                RunError::new(format!(
                    "resume target {target} not found in statement list"
                ))
            })?;
        let mut i = idx;
        let mut entry = Some(dos);
        while i < stmts.len() {
            let flow = match entry.take() {
                Some(d) => self.resume_stmt(m, frame, &stmts[i], target, d)?,
                None => self.exec_stmt(m, frame, &stmts[i])?,
            };
            match flow {
                Flow::Normal => i += 1,
                Flow::Goto(l) => match stmts.iter().position(|s| s.label == Some(l)) {
                    Some(j) => i = j,
                    None => return Ok(Flow::Goto(l)),
                },
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    /// Descend into one statement containing `target` without re-running
    /// anything before it, consuming one [`DoProgress`] per counted-loop
    /// level. The target statement itself executes normally. No entry
    /// `tick` is charged for re-entered structures — the uninterrupted
    /// run already counted those before the snapshot was written.
    fn resume_stmt(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        s: &Stmt,
        target: StmtId,
        dos: &[DoProgress],
    ) -> Result<Flow, RunError> {
        if s.id == target {
            if !dos.is_empty() {
                return Err(RunError::new(format!(
                    "resume cursor has {} unconsumed do level(s) at the target",
                    dos.len()
                ))
                .at(s.line));
            }
            return self.exec_stmt(m, frame, s);
        }
        match &s.kind {
            StmtKind::Do { var, body, .. } => {
                let Some((d, rest)) = dos.split_first() else {
                    return Err(RunError::new(format!(
                        "resume cursor exhausted entering `do {var}`"
                    ))
                    .at(s.line));
                };
                if d.var != *var {
                    return Err(RunError::new(format!(
                        "resume cursor mismatch: expected `do {}`, found `do {var}`",
                        d.var
                    ))
                    .at(s.line));
                }
                let track = self.track && self.depth == 0;
                if track {
                    self.cursor.push(d.clone());
                }
                let res = self.resume_do(m, frame, var, body, target, d, rest, track);
                if track {
                    self.cursor.pop();
                }
                res
            }
            StmtKind::If {
                then,
                else_ifs,
                els,
                ..
            } => {
                // the arm is identified statically — the restored scalars
                // would re-derive the same choice, but the checkpointed
                // run *was* inside this arm, so no condition re-evaluation
                // (with its flop counts) may run twice
                if then.iter().any(|c| contains_stmt(c, target)) {
                    return self.resume_stmts(m, frame, then, target, dos);
                }
                for (_, b) in else_ifs {
                    if b.iter().any(|c| contains_stmt(c, target)) {
                        return self.resume_stmts(m, frame, b, target, dos);
                    }
                }
                if let Some(b) = els {
                    if b.iter().any(|c| contains_stmt(c, target)) {
                        return self.resume_stmts(m, frame, b, target, dos);
                    }
                }
                Err(RunError::new("resume target vanished inside `if`").at(s.line))
            }
            StmtKind::LogicalIf { stmt, .. } => self.resume_stmt(m, frame, stmt, target, dos),
            StmtKind::DoWhile { cond, body } => {
                // no saved state: finish the interrupted iteration from
                // the target onward, then let the condition drive the rest
                let mut flow = self.resume_stmts(m, frame, body, target, dos)?;
                if flow == Flow::Normal {
                    loop {
                        m.tick().map_err(|e| e.at(s.line))?;
                        if !self
                            .eval(m, frame, cond)?
                            .as_bool()
                            .map_err(|e| e.at(s.line))?
                        {
                            break;
                        }
                        match self.exec_stmts(m, frame, body)? {
                            Flow::Normal => {}
                            other => {
                                flow = other;
                                break;
                            }
                        }
                    }
                }
                Ok(flow)
            }
            _ => Err(RunError::new("resume target inside an unexpected statement").at(s.line)),
        }
    }

    /// Re-enter one counted `do` loop mid-flight: set the variable to the
    /// interrupted iteration's value, finish that iteration from the
    /// target onward, run the remaining full trips, and leave the
    /// variable one past the end — exactly where the unsplit execution
    /// would have left it.
    #[allow(clippy::too_many_arguments)]
    fn resume_do(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        var: &str,
        body: &[Stmt],
        target: StmtId,
        d: &DoProgress,
        rest: &[DoProgress],
        track: bool,
    ) -> Result<Flow, RunError> {
        frame.set_scalar(var, Value::Int(d.iv))?;
        let mut iv = d.iv;
        let mut flow = self.resume_stmts(m, frame, body, target, rest)?;
        if flow == Flow::Normal {
            iv += d.step;
            for k in 0..d.remaining {
                if track {
                    let c = self
                        .cursor
                        .last_mut()
                        .expect("cursor entry pushed by caller");
                    c.iv = iv;
                    c.remaining = d.remaining - 1 - k;
                }
                frame.set_scalar(var, Value::Int(iv))?;
                match self.exec_stmts(m, frame, body)? {
                    Flow::Normal => {}
                    other => {
                        flow = other;
                        break;
                    }
                }
                iv += d.step;
            }
        }
        if flow == Flow::Normal {
            frame.set_scalar(var, Value::Int(iv))?;
        }
        Ok(flow)
    }

    fn exec_stmt(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        s: &Stmt,
    ) -> Result<Flow, RunError> {
        m.tick().map_err(|e| e.at(s.line))?;
        match &s.kind {
            StmtKind::Assign { target, value } => {
                let v = self.eval(m, frame, value).map_err(|e| e.at(s.line))?;
                self.assign(m, frame, target, v).map_err(|e| e.at(s.line))?;
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then,
                else_ifs,
                els,
            } => {
                if self
                    .eval(m, frame, cond)?
                    .as_bool()
                    .map_err(|e| e.at(s.line))?
                {
                    return self.exec_stmts(m, frame, then);
                }
                for (c, body) in else_ifs {
                    if self
                        .eval(m, frame, c)?
                        .as_bool()
                        .map_err(|e| e.at(s.line))?
                    {
                        return self.exec_stmts(m, frame, body);
                    }
                }
                if let Some(body) = els {
                    return self.exec_stmts(m, frame, body);
                }
                Ok(Flow::Normal)
            }
            StmtKind::LogicalIf { cond, stmt } => {
                if self
                    .eval(m, frame, cond)?
                    .as_bool()
                    .map_err(|e| e.at(s.line))?
                {
                    self.exec_stmt(m, frame, stmt)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::Do {
                var,
                from,
                to,
                step,
                body,
                ..
            } => {
                if let Some(split) = self.hooks.split_loop(m, s)? {
                    return self.exec_split_do(m, frame, s, &split);
                }
                // Compiled-kernel fast path: `begin` is side-effect
                // free, so a `None` (unsupported runtime state) falls
                // through to the tree walk from an identical state.
                // The statement's own tick was already charged above.
                if let Some(ks) = self.kernels {
                    if let Some(k) = ks.get(s.id) {
                        if let Some(ready) = k.begin(frame, None) {
                            let mark = self.span_enter();
                            k.run(ks, ready, m, frame, true)?;
                            self.span_exit(mark);
                            return Ok(Flow::Normal);
                        }
                    }
                }
                let from = self
                    .eval(m, frame, from)?
                    .as_i64()
                    .map_err(|e| e.at(s.line))?;
                let to = self
                    .eval(m, frame, to)?
                    .as_i64()
                    .map_err(|e| e.at(s.line))?;
                let step = match step {
                    Some(e) => self.eval(m, frame, e)?.as_i64().map_err(|e| e.at(s.line))?,
                    None => 1,
                };
                if step == 0 {
                    return Err(RunError::new("zero do-loop step").at(s.line));
                }
                // Fortran trip count semantics
                let trips = ((to - from + step) / step).max(0);
                let track = self.track && self.depth == 0;
                if track {
                    self.cursor.push(DoProgress {
                        var: var.clone(),
                        iv: from,
                        step,
                        remaining: trips.max(1) as u64 - 1,
                    });
                }
                let mark = self.span_enter();
                let mut iv = from;
                let mut flow = Flow::Normal;
                for k in 0..trips {
                    if track {
                        let d = self.cursor.last_mut().expect("cursor entry pushed above");
                        d.iv = iv;
                        d.remaining = (trips - 1 - k) as u64;
                    }
                    frame.set_scalar(var, Value::Int(iv))?;
                    match self.exec_stmts(m, frame, body)? {
                        Flow::Normal => {}
                        other => {
                            flow = other;
                            break;
                        }
                    }
                    iv += step;
                }
                if track {
                    self.cursor.pop();
                }
                if flow == Flow::Normal {
                    // Fortran leaves the loop variable one past the last value
                    frame.set_scalar(var, Value::Int(iv))?;
                }
                self.span_exit(mark);
                Ok(flow)
            }
            StmtKind::DoWhile { cond, body } => {
                let mark = self.span_enter();
                let mut flow = Flow::Normal;
                loop {
                    m.tick().map_err(|e| e.at(s.line))?;
                    if !self
                        .eval(m, frame, cond)?
                        .as_bool()
                        .map_err(|e| e.at(s.line))?
                    {
                        break;
                    }
                    match self.exec_stmts(m, frame, body)? {
                        Flow::Normal => {}
                        other => {
                            flow = other;
                            break;
                        }
                    }
                }
                self.span_exit(mark);
                Ok(flow)
            }
            StmtKind::Goto { target } => Ok(Flow::Goto(*target)),
            StmtKind::Continue => Ok(Flow::Normal),
            StmtKind::Return => Ok(Flow::Return),
            StmtKind::Stop => Ok(Flow::Stop),
            StmtKind::Call { name, args } => {
                if name.starts_with("acf_") {
                    self.flush_spans();
                    self.hook_calls += 1;
                    if self.track && self.depth == 0 {
                        self.hooks.hook_site(s.id, &self.cursor);
                    }
                    if self.hooks.call(m, frame, name)? {
                        return Ok(Flow::Normal);
                    }
                }
                self.call_subroutine(m, frame, name, args)
                    .map_err(|e| e.at(s.line))?;
                Ok(Flow::Normal)
            }
            StmtKind::Read { items, .. } => {
                for lv in items {
                    let v = m
                        .input
                        .pop_front()
                        .ok_or_else(|| RunError::new("input exhausted").at(s.line))?;
                    self.assign(m, frame, lv, Value::Real(v))
                        .map_err(|e| e.at(s.line))?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Write { items, .. } => {
                let mut parts = Vec::with_capacity(items.len());
                for e in items {
                    let v = self.eval(m, frame, e).map_err(|err| err.at(s.line))?;
                    parts.push(match v {
                        Value::Int(i) => i.to_string(),
                        Value::Real(r) => format!("{r:.6}"),
                        Value::Logical(b) => if b { "T" } else { "F" }.to_string(),
                        Value::Str(st) => st,
                    });
                }
                // unit selection: all output is captured together
                m.output.push(parts.join(" "));
                Ok(Flow::Normal)
            }
        }
    }

    /// Execute a `do` statement the hooks asked to split: interior
    /// chunk (recorded as an [`EventKind::Overlap`] span — the time the
    /// in-flight exchange hides), then `finish_split`, then the two
    /// boundary strips. Iteration *order* differs from the unsplit loop
    /// but the set of iterations is identical, and the restructurer
    /// only emits splits for nests whose iterations are independent.
    fn exec_split_do(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        s: &Stmt,
        split: &LoopSplit,
    ) -> Result<Flow, RunError> {
        self.flush_spans();
        // The hidden exchange is communication: an enclosing loop must
        // not merge this nest into one compute span.
        self.hook_calls += 1;
        let pend0 = self.pending.len();
        let t0 = Instant::now();
        self.exec_chunk(m, frame, s, split, Clamp::Interior)?;
        self.pending.truncate(pend0);
        if let Some(rec) = self.hooks.recorder() {
            rec.record_span(EventKind::Overlap, t0, Instant::now());
        }
        self.hooks.finish_split(m, frame)?;
        self.exec_chunk(m, frame, s, split, Clamp::Low)?;
        self.exec_chunk(m, frame, s, split, Clamp::High)?;
        self.finalize_split_var(m, frame, s, split)
    }

    /// One chunk of a split loop: through the compiled kernel when one
    /// is available and its entry check passes (the kernel re-enters
    /// per chunk — boundary scalars differ between chunks), else the
    /// clamped tree walk. The kernel charges the root statement's tick
    /// itself, exactly like [`Exec::exec_stmt_clamped`] does per chunk.
    fn exec_chunk(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        s: &Stmt,
        split: &LoopSplit,
        mode: Clamp,
    ) -> Result<(), RunError> {
        if let Some(ks) = self.kernels {
            if let Some(k) = ks.get(s.id) {
                let kc = match mode {
                    Clamp::Interior => KernelClamp::Interior,
                    Clamp::Low => KernelClamp::Low,
                    Clamp::High => KernelClamp::High,
                };
                if let Some(ready) = k.begin(frame, Some((split, kc))) {
                    let mark = self.span_enter();
                    k.run(ks, ready, m, frame, false)?;
                    self.span_exit(mark);
                    return Ok(());
                }
            }
        }
        let flow = self.exec_stmt_clamped(m, frame, s, split, mode)?;
        ensure_normal(flow, s.line)
    }

    /// Leave the clamped variable where the unsplit loop would: one past
    /// `to` after a nonempty range, else at `from`. Every other variable
    /// already matches — outer prefix loops run their full range in each
    /// chunk, and loops inside the clamped one have chunk-invariant
    /// bounds (the restructurer rejects nest-variable-dependent bounds),
    /// so any complete body execution leaves them at the same values.
    fn finalize_split_var(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        s: &Stmt,
        split: &LoopSplit,
    ) -> Result<Flow, RunError> {
        let mut cur = s;
        loop {
            let StmtKind::Do {
                var,
                from,
                to,
                body,
                ..
            } = &cur.kind
            else {
                return Err(RunError::new("split loop's perfect-nest prefix is broken").at(s.line));
            };
            if *var == split.var {
                let f = self
                    .eval(m, frame, from)?
                    .as_i64()
                    .map_err(|e| e.at(cur.line))?;
                let t = self
                    .eval(m, frame, to)?
                    .as_i64()
                    .map_err(|e| e.at(cur.line))?;
                frame.set_scalar(var, Value::Int(f + (t - f + 1).max(0)))?;
                return Ok(Flow::Normal);
            }
            let [inner] = body.as_slice() else {
                return Err(RunError::new("split loop's perfect-nest prefix is broken").at(s.line));
            };
            cur = inner;
        }
    }

    /// Statement-list execution for one chunk of a split loop; mirrors
    /// [`Exec::exec_stmts`].
    fn exec_stmts_clamped(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        stmts: &[Stmt],
        split: &LoopSplit,
        mode: Clamp,
    ) -> Result<Flow, RunError> {
        let mut i = 0usize;
        while i < stmts.len() {
            match self.exec_stmt_clamped(m, frame, &stmts[i], split, mode)? {
                Flow::Normal => i += 1,
                Flow::Goto(l) => match stmts.iter().position(|s| s.label == Some(l)) {
                    Some(j) => i = j,
                    None => return Ok(Flow::Goto(l)),
                },
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    /// Execute one statement of a split chunk: the `do` whose variable
    /// matches the split is clamped to the chunk's sub-range; other
    /// structured statements recurse so the clamp reaches it; everything
    /// else runs normally.
    fn exec_stmt_clamped(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        s: &Stmt,
        split: &LoopSplit,
        mode: Clamp,
    ) -> Result<Flow, RunError> {
        match &s.kind {
            StmtKind::Do {
                var,
                from,
                to,
                step,
                body,
                ..
            } => {
                m.tick().map_err(|e| e.at(s.line))?;
                let f = self
                    .eval(m, frame, from)?
                    .as_i64()
                    .map_err(|e| e.at(s.line))?;
                let t = self
                    .eval(m, frame, to)?
                    .as_i64()
                    .map_err(|e| e.at(s.line))?;
                let step = match step {
                    Some(e) => self.eval(m, frame, e)?.as_i64().map_err(|e| e.at(s.line))?,
                    None => 1,
                };
                if step == 0 {
                    return Err(RunError::new("zero do-loop step").at(s.line));
                }
                let clamped = *var == split.var;
                let (f, t, step) = if clamped {
                    if step != 1 {
                        return Err(RunError::new("overlapped loop must have unit step").at(s.line));
                    }
                    let (cf, ct) = clamp_range(f, t, split, mode);
                    (cf, ct, 1)
                } else {
                    (f, t, step)
                };
                let trips = ((t - f + step) / step).max(0);
                let mark = self.span_enter();
                let mut iv = f;
                let mut flow = Flow::Normal;
                for _ in 0..trips {
                    frame.set_scalar(var, Value::Int(iv))?;
                    // below the clamped loop the body runs unmodified
                    let r = if clamped {
                        self.exec_stmts(m, frame, body)?
                    } else {
                        self.exec_stmts_clamped(m, frame, body, split, mode)?
                    };
                    match r {
                        Flow::Normal => {}
                        other => {
                            flow = other;
                            break;
                        }
                    }
                    iv += step;
                }
                if flow == Flow::Normal {
                    frame.set_scalar(var, Value::Int(iv))?;
                }
                self.span_exit(mark);
                Ok(flow)
            }
            StmtKind::If {
                cond,
                then,
                else_ifs,
                els,
            } => {
                m.tick().map_err(|e| e.at(s.line))?;
                if self
                    .eval(m, frame, cond)?
                    .as_bool()
                    .map_err(|e| e.at(s.line))?
                {
                    return self.exec_stmts_clamped(m, frame, then, split, mode);
                }
                for (c, body) in else_ifs {
                    if self
                        .eval(m, frame, c)?
                        .as_bool()
                        .map_err(|e| e.at(s.line))?
                    {
                        return self.exec_stmts_clamped(m, frame, body, split, mode);
                    }
                }
                if let Some(body) = els {
                    return self.exec_stmts_clamped(m, frame, body, split, mode);
                }
                Ok(Flow::Normal)
            }
            StmtKind::LogicalIf { cond, stmt } => {
                m.tick().map_err(|e| e.at(s.line))?;
                if self
                    .eval(m, frame, cond)?
                    .as_bool()
                    .map_err(|e| e.at(s.line))?
                {
                    self.exec_stmt_clamped(m, frame, stmt, split, mode)
                } else {
                    Ok(Flow::Normal)
                }
            }
            _ => self.exec_stmt(m, frame, s),
        }
    }

    /// Assign `v` to a scalar or array element.
    pub fn assign(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        lv: &LValue,
        v: Value,
    ) -> Result<(), RunError> {
        if lv.indices.is_empty() {
            if frame.arrays.contains_key(&lv.name) {
                return Err(RunError::new(format!(
                    "whole-array assignment to `{}` is not supported",
                    lv.name
                )));
            }
            frame.set_scalar(&lv.name, v)
        } else {
            let id = *frame.arrays.get(&lv.name).ok_or_else(|| {
                RunError::new(format!("`{}` subscripted but not an array", lv.name))
            })?;
            let mut idx = Vec::with_capacity(lv.indices.len());
            for e in &lv.indices {
                idx.push(self.eval(m, frame, e)?.as_i64()?);
            }
            m.ops.stores += 1;
            m.array_mut(id).set(&idx, v.as_f64()?)
        }
    }

    /// Call a user subroutine by name.
    fn call_subroutine(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        name: &str,
        args: &[autocfd_fortran::Expr],
    ) -> Result<(), RunError> {
        let unit = self
            .program
            .unit(name)
            .ok_or_else(|| RunError::new(format!("unknown subroutine `{name}`")))?;
        if unit.kind != UnitKind::Subroutine {
            return Err(RunError::new(format!("`{name}` is not a subroutine")));
        }
        let (bindings, copy_backs) = self.make_bindings(m, frame, unit, args)?;
        let mut callee = build_frame(m, unit, bindings)?;
        self.enter_call(name)?;
        let flow = self.exec_stmts(m, &mut callee, &unit.body)?;
        self.depth -= 1;
        if let Flow::Goto(l) = flow {
            return Err(RunError::new(format!("unresolved goto {l} in `{name}`")));
        }
        if flow == Flow::Stop {
            return Err(RunError::new("stop inside subroutine"));
        }
        for (dummy, caller_name) in copy_backs {
            let v = callee.get_scalar(&dummy);
            frame.set_scalar(&caller_name, v)?;
        }
        Ok(())
    }

    /// Call a user function by name (from expression context).
    pub(crate) fn call_function(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        name: &str,
        args: &[autocfd_fortran::Expr],
    ) -> Result<Value, RunError> {
        let unit = self
            .program
            .unit(name)
            .ok_or_else(|| RunError::new(format!("unknown array or function `{name}`")))?;
        if unit.kind != UnitKind::Function {
            return Err(RunError::new(format!("`{name}` is not a function")));
        }
        let (bindings, _) = self.make_bindings(m, frame, unit, args)?;
        let mut callee = build_frame(m, unit, bindings)?;
        self.enter_call(name)?;
        let flow = self.exec_stmts(m, &mut callee, &unit.body)?;
        self.depth -= 1;
        if let Flow::Goto(l) = flow {
            return Err(RunError::new(format!("unresolved goto {l} in `{name}`")));
        }
        // the function's return value is the final value of its own name
        Ok(callee.get_scalar(name))
    }

    fn enter_call(&mut self, name: &str) -> Result<(), RunError> {
        self.depth += 1;
        if self.depth > 200 {
            return Err(RunError::new(format!(
                "call depth exceeded at `{name}` (recursion is not allowed in Fortran 77)"
            )));
        }
        Ok(())
    }

    fn make_bindings(
        &mut self,
        m: &mut Machine,
        frame: &mut Frame,
        unit: &autocfd_fortran::Unit,
        args: &[autocfd_fortran::Expr],
    ) -> Result<(HashMap<String, Binding>, CopyBacks), RunError> {
        if args.len() != unit.params.len() {
            return Err(RunError::new(format!(
                "`{}` expects {} arguments, got {}",
                unit.name,
                unit.params.len(),
                args.len()
            )));
        }
        let mut bindings = HashMap::new();
        let mut copy_backs = Vec::new();
        for (param, actual) in unit.params.iter().zip(args) {
            use autocfd_fortran::Expr;
            match actual {
                Expr::Var(n) if frame.arrays.contains_key(n) => {
                    // status-array naming convention check (see lib docs)
                    let id: ArrayId = frame.arrays[n];
                    bindings.insert(param.clone(), Binding::Array(id));
                }
                Expr::Var(n) => {
                    bindings.insert(param.clone(), Binding::Scalar(frame.get_scalar(n)));
                    copy_backs.push((param.clone(), n.clone()));
                }
                other => {
                    let v = self.eval(m, frame, other)?;
                    bindings.insert(param.clone(), Binding::Scalar(v));
                }
            }
        }
        Ok((bindings, copy_backs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocfd_fortran::parse;

    fn run(src: &str) -> Machine {
        run_program(&parse(src).unwrap(), vec![]).unwrap()
    }

    fn run_with_input(src: &str, input: Vec<f64>) -> Machine {
        run_program(&parse(src).unwrap(), input).unwrap()
    }

    fn last_output(m: &Machine) -> &str {
        m.output.last().map(String::as_str).unwrap_or("")
    }

    #[test]
    fn arithmetic_and_write() {
        let m = run("      program p\n      x = 1.5 + 2.5 * 2.0\n      write(*,*) x\n      end\n");
        assert_eq!(last_output(&m), "6.500000");
    }

    #[test]
    fn integer_division_truncates() {
        let m = run("      program p\n      i = 7 / 2\n      write(*,*) i\n      end\n");
        assert_eq!(last_output(&m), "3");
    }

    #[test]
    fn do_loop_sum() {
        let m = run("      program p
      s = 0.0
      do i = 1, 10
        s = s + i
      end do
      write(*,*) s
      end
");
        assert_eq!(last_output(&m), "55.000000");
    }

    #[test]
    fn do_loop_with_negative_step() {
        let m = run("      program p
      s = 0.0
      do i = 10, 1, -2
        s = s + i
      end do
      write(*,*) s, i
      end
");
        // 10+8+6+4+2 = 30; loop var ends at 0
        assert_eq!(last_output(&m), "30.000000 0");
    }

    #[test]
    fn zero_trip_loop() {
        let m = run("      program p
      s = 1.0
      do i = 5, 1
        s = 99.0
      end do
      write(*,*) s
      end
");
        assert_eq!(last_output(&m), "1.000000");
    }

    #[test]
    fn labeled_do_and_goto_loop() {
        let m = run("      program p
      x = 0.0
      k = 0
100   continue
      x = x + 1.0
      k = k + 1
      if (k .lt. 5) goto 100
      write(*,*) x
      end
");
        assert_eq!(last_output(&m), "5.000000");
    }

    #[test]
    fn goto_out_of_loop() {
        let m = run("      program p
      s = 0.0
      do i = 1, 100
        s = s + 1.0
        if (s .ge. 3.0) goto 200
      end do
200   continue
      write(*,*) s
      end
");
        assert_eq!(last_output(&m), "3.000000");
    }

    #[test]
    fn if_elseif_else() {
        let m = run("      program p
      do i = 1, 3
        if (i .eq. 1) then
          write(*,*) 'one'
        else if (i .eq. 2) then
          write(*,*) 'two'
        else
          write(*,*) 'many'
        end if
      end do
      end
");
        assert_eq!(m.output, vec!["one", "two", "many"]);
    }

    #[test]
    fn do_while_loop() {
        let m = run("      program p
      x = 1.0
      do while (x .lt. 100.0)
        x = x * 2.0
      end do
      write(*,*) x
      end
");
        assert_eq!(last_output(&m), "128.000000");
    }

    #[test]
    fn arrays_2d() {
        let m = run("      program p
      real a(3,3)
      do i = 1, 3
        do j = 1, 3
          a(i,j) = i * 10 + j
        end do
      end do
      write(*,*) a(2,3)
      end
");
        assert_eq!(last_output(&m), "23.000000");
    }

    #[test]
    fn subroutine_with_array_by_reference() {
        let m = run("      program p
      real v(4)
      call fill(v, 4)
      write(*,*) v(1), v(4)
      end
      subroutine fill(v, n)
      integer n
      real v(n)
      do i = 1, n
        v(i) = i * 2.0
      end do
      return
      end
");
        assert_eq!(last_output(&m), "2.000000 8.000000");
    }

    #[test]
    fn subroutine_scalar_copy_back() {
        let m = run("      program p
      real v(3)
      v(1) = 5.0
      v(2) = 9.0
      v(3) = 2.0
      big = 0.0
      call findmax(v, 3, big)
      write(*,*) big
      end
      subroutine findmax(v, n, big)
      integer n
      real v(n), big
      big = v(1)
      do i = 2, n
        if (v(i) .gt. big) big = v(i)
      end do
      return
      end
");
        assert_eq!(last_output(&m), "9.000000");
    }

    #[test]
    fn user_function_call() {
        let m = run("      program p
      x = sq(3.0) + sq(4.0)
      write(*,*) x
      end
      real function sq(a)
      real a
      sq = a * a
      return
      end
");
        assert_eq!(last_output(&m), "25.000000");
    }

    #[test]
    fn read_statement() {
        let m = run_with_input(
            "      program p
      real v(2)
      read *, n
      read(5,*) v(1), v(2)
      write(*,*) n, v(1) + v(2)
      end
",
            vec![7.0, 1.5, 2.5],
        );
        assert_eq!(last_output(&m), "7 4.000000");
    }

    #[test]
    fn input_exhausted_errors() {
        let r = run_program(
            &parse("      program p\n      read *, x\n      end\n").unwrap(),
            vec![],
        );
        assert!(r.is_err());
    }

    #[test]
    fn stop_terminates() {
        let m = run("      program p
      write(*,*) 'before'
      stop
      write(*,*) 'after'
      end
");
        assert_eq!(m.output, vec!["before"]);
    }

    #[test]
    fn jacobi_converges() {
        // a real CFD kernel: Jacobi on a 10x10 grid with fixed boundary 1.0
        let m = run("      program jacobi
      real v(10,10), vn(10,10)
      do i = 1, 10
        v(i,1) = 1.0
        v(i,10) = 1.0
        v(1,i) = 1.0
        v(10,i) = 1.0
      end do
      do it = 1, 500
        err = 0.0
        do i = 2, 9
          do j = 2, 9
            vn(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
          end do
        end do
        do i = 2, 9
          do j = 2, 9
            d = abs(vn(i,j) - v(i,j))
            if (d .gt. err) err = d
            v(i,j) = vn(i,j)
          end do
        end do
        if (err .lt. 1.0e-6) goto 900
      end do
900   continue
      write(*,*) v(5,5)
      end
");
        // harmonic with constant boundary = 1 everywhere
        let v: f64 = last_output(&m).parse().unwrap();
        assert!((v - 1.0).abs() < 1e-4, "v(5,5) = {v}");
    }

    #[test]
    fn statement_budget_stops_runaway() {
        let r = run_program_with_hooks(
            &parse(
                "      program p
      x = 0.0
100   continue
      x = x + 1.0
      goto 100
      end
",
            )
            .unwrap(),
            vec![],
            &mut NoHooks,
            10_000,
        );
        assert!(r.is_err());
    }

    #[test]
    fn out_of_bounds_reports_line() {
        let err = run_program(
            &parse(
                "      program p
      real v(5)
      i = 9
      v(i) = 1.0
      end
",
            )
            .unwrap(),
            vec![],
        )
        .unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("out of bounds"));
    }

    #[test]
    fn op_counting() {
        let m = run("      program p
      real v(10)
      do i = 1, 10
        v(i) = i * 2.0
      end do
      s = 0.0
      do i = 1, 10
        s = s + v(i)
      end do
      write(*,*) s
      end
");
        assert_eq!(m.ops.stores, 10);
        assert_eq!(m.ops.loads, 10);
        assert!(m.ops.flops >= 20);
        assert_eq!(last_output(&m), "110.000000");
    }

    #[test]
    fn hooks_intercept_acf_calls() {
        struct CountHook(u32);
        impl Hooks for CountHook {
            fn call(
                &mut self,
                _m: &mut Machine,
                frame: &mut Frame,
                name: &str,
            ) -> Result<bool, RunError> {
                if name == "acf_mark" {
                    self.0 += 1;
                    frame.set_scalar("hookval", Value::Real(42.0))?;
                    return Ok(true);
                }
                Ok(false)
            }
        }
        let mut h = CountHook(0);
        let m = run_program_with_hooks(
            &parse(
                "      program p
      do i = 1, 3
        call acf_mark()
      end do
      write(*,*) hookval
      end
",
            )
            .unwrap(),
            vec![],
            &mut h,
            0,
        )
        .unwrap();
        assert_eq!(h.0, 3);
        assert_eq!(last_output(&m), "42.000000");
    }

    #[test]
    fn split_loops_cover_the_range_and_finalize_the_variable() {
        // A hook that arms splitting at `acf_mark` and splits the next
        // `do i` nest 1/1; the chunked execution must compute exactly
        // what the unsplit loop would, call `finish_split` once, and
        // leave `i` one past the range.
        struct SplitHook {
            armed: bool,
            splits: u32,
            finishes: u32,
        }
        impl Hooks for SplitHook {
            fn call(
                &mut self,
                _m: &mut Machine,
                _frame: &mut Frame,
                name: &str,
            ) -> Result<bool, RunError> {
                if name == "acf_mark" {
                    self.armed = true;
                    return Ok(true);
                }
                Ok(false)
            }
            fn split_loop(
                &mut self,
                _m: &mut Machine,
                stmt: &Stmt,
            ) -> Result<Option<LoopSplit>, RunError> {
                if !self.armed {
                    return Ok(None);
                }
                if let StmtKind::Do { var, .. } = &stmt.kind {
                    if var == "i" {
                        self.armed = false;
                        self.splits += 1;
                        return Ok(Some(LoopSplit {
                            var: "i".into(),
                            low_width: 1,
                            high_width: 1,
                        }));
                    }
                }
                Ok(None)
            }
            fn finish_split(
                &mut self,
                _m: &mut Machine,
                _frame: &mut Frame,
            ) -> Result<(), RunError> {
                self.finishes += 1;
                Ok(())
            }
        }
        let mut h = SplitHook {
            armed: false,
            splits: 0,
            finishes: 0,
        };
        let m = run_program_with_hooks(
            &parse(
                "      program p
      real v(10), w(10)
      do i = 1, 10
        v(i) = i
      end do
      call acf_mark()
      do i = 2, 9
        w(i) = v(i-1) + v(i+1)
      end do
      write(*,*) w(2), w(5), w(9), i
      end
",
            )
            .unwrap(),
            vec![],
            &mut h,
            0,
        )
        .unwrap();
        assert_eq!(h.splits, 1);
        assert_eq!(h.finishes, 1);
        assert_eq!(last_output(&m), "4.000000 10.000000 18.000000 10");
    }

    #[test]
    fn unknown_subroutine_errors() {
        let r = run_program(
            &parse("      program p\n      call nosuch(1)\n      end\n").unwrap(),
            vec![],
        );
        assert!(r.unwrap_err().message.contains("unknown subroutine"));
    }

    #[test]
    fn wrong_arity_errors() {
        let r = run_program(
            &parse(
                "      program p
      call s(1, 2)
      end
      subroutine s(a)
      real a
      return
      end
",
            )
            .unwrap(),
            vec![],
        );
        assert!(r.unwrap_err().message.contains("expects 1 arguments"));
    }
}

#[cfg(test)]
mod common_tests {
    use super::*;
    use autocfd_fortran::parse;

    #[test]
    fn common_block_arrays_are_shared_across_units() {
        let m = run_program(
            &parse(
                "      program p
      common /flow/ v(10)
      call fill()
      write(*,*) v(3)
      end
      subroutine fill()
      common /flow/ v(10)
      do i = 1, 10
        v(i) = i * 1.5
      end do
      return
      end
",
            )
            .unwrap(),
            vec![],
        )
        .unwrap();
        assert_eq!(m.output, vec!["4.500000"]);
    }

    #[test]
    fn distinct_common_blocks_are_distinct_storage() {
        let m = run_program(
            &parse(
                "      program p
      common /a/ x(3)
      common /b/ y(3)
      x(1) = 1.0
      y(1) = 2.0
      write(*,*) x(1), y(1)
      end
",
            )
            .unwrap(),
            vec![],
        )
        .unwrap();
        assert_eq!(m.output, vec!["1.000000 2.000000"]);
    }

    #[test]
    fn common_scalars_rejected_with_clear_error() {
        let e = run_program(
            &parse(
                "      program p
      common /blk/ s
      s = 1.0
      end
",
            )
            .unwrap(),
            vec![],
        )
        .unwrap_err();
        assert!(e.message.contains("common scalars"), "{e}");
    }
}

#[cfg(test)]
mod recursion_tests {
    use super::*;
    use autocfd_fortran::parse;

    #[test]
    fn direct_recursion_reported() {
        let e = run_program(
            &parse(
                "      program p
      call s(1.0)
      end
      subroutine s(x)
      real x
      call s(x)
      return
      end
",
            )
            .unwrap(),
            vec![],
        )
        .unwrap_err();
        assert!(e.message.contains("recursion"), "{e}");
    }

    #[test]
    fn mutual_recursion_reported() {
        let e = run_program(
            &parse(
                "      program p
      call a(1.0)
      end
      subroutine a(x)
      real x
      call b(x)
      return
      end
      subroutine b(x)
      real x
      call a(x)
      return
      end
",
            )
            .unwrap(),
            vec![],
        )
        .unwrap_err();
        assert!(e.message.contains("recursion"), "{e}");
    }

    #[test]
    fn deep_but_finite_call_chains_allowed() {
        // 3 levels of calls is fine
        let m = run_program(
            &parse(
                "      program p
      call a()
      end
      subroutine a()
      call b()
      return
      end
      subroutine b()
      call c()
      return
      end
      subroutine c()
      write(*,*) 'deep'
      return
      end
",
            )
            .unwrap(),
            vec![],
        )
        .unwrap();
        assert_eq!(m.output, vec!["deep"]);
    }
}
