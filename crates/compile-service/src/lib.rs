#![warn(missing_docs)]

//! The resident compile service: amortizing the pre-compiler across a
//! fleet of submitted programs (DESIGN.md §12).
//!
//! The paper's pipeline (parse → dependence analysis → sync insertion →
//! SPMD restructuring) runs from scratch on every `acfc run`, yet its
//! output is a pure function of (source text, partition, analysis
//! options, plan schema). This crate makes that function resident:
//!
//! * [`proto`] — JSON requests/responses/stream items over the
//!   `runtime-net` framed codec (`Request`/`Response`/`Stream` frames);
//! * [`cache`] — a content-addressed, bounded-LRU plan store keyed by
//!   [`PlanKey`](autocfd_codegen::PlanKey) digests, persisted on disk
//!   across restarts, degrading corrupt or stale-schema entries to
//!   recompiles;
//! * [`service`] — the accept loop, with single-flight deduplication
//!   (N identical in-flight compiles run the pipeline once) and metrics
//!   (hit rate, queue depth, compile latency percentiles, evictions)
//!   served over the wire and journaled through `runtime::journal`;
//! * [`client`] — the blocking client `acfc --server` builds on.
//!
//! The pipeline itself is injected as a [`Backend`] implemented in the
//! `autocfd` crate; this crate knows protocols and caching, not
//! Fortran.

pub mod cache;
pub mod client;
pub mod proto;
pub mod service;

pub use cache::{CacheEntry, CacheStats, PlanCache};
pub use client::Client;
pub use proto::{CompileReq, ErrorClass, Request, RunReq, ServiceError, StreamItem};
pub use service::{Backend, CompiledUnit, Service, ServiceConfig, ServiceHandle};
