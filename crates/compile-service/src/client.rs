//! Blocking client for the compile service.

use crate::proto::{parse_response, ErrorClass, Request, ServiceError, StreamItem};
use autocfd_runtime_net::frame::{encode, read_frame, Frame, FrameKind};
use serde::json::Value;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to an `acfd-compile` server. Requests are
/// synchronous: send, consume the stream, return the final response.
pub struct Client {
    stream: TcpStream,
}

fn transport_err(e: impl std::fmt::Display) -> ServiceError {
    ServiceError::new(ErrorClass::Internal, format!("server connection: {e}"))
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:7700"`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(transport_err)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Guard against a wedged server: error out reads after `timeout`.
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), ServiceError> {
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(transport_err)
    }

    /// Send `req` and block until the terminating response, feeding
    /// every mid-request stream item to `on_stream` in arrival order.
    /// Returns the parsed `ok:true` response object; `ok:false` comes
    /// back as the server's typed [`ServiceError`].
    pub fn request(
        &mut self,
        req: &Request,
        on_stream: &mut dyn FnMut(StreamItem),
    ) -> Result<Value, ServiceError> {
        let frame = Frame::from_text(FrameKind::Request, 0, &req.to_json());
        self.stream
            .write_all(&encode(&frame))
            .map_err(transport_err)?;
        loop {
            let frame = match read_frame(&mut self.stream).map_err(transport_err)? {
                Some((frame, _)) => frame,
                None => {
                    return Err(transport_err("server closed the connection mid-request"));
                }
            };
            let text = frame.text().map_err(transport_err)?;
            match frame.kind {
                FrameKind::Stream => on_stream(StreamItem::from_json(&text)?),
                FrameKind::Response => return parse_response(&text),
                other => {
                    return Err(transport_err(format!(
                        "unexpected {other:?} frame mid-request"
                    )));
                }
            }
        }
    }
}
