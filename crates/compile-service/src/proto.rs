//! The compile-service wire protocol.
//!
//! Requests, responses, and stream items are single-line JSON documents
//! carried as text frames ([`FrameKind::Request`], [`FrameKind::Response`],
//! [`FrameKind::Stream`]) over the same length-prefixed codec the SPMD
//! mesh uses. One request yields zero or more `Stream` frames followed by
//! exactly one terminating `Response` frame; requests on one connection
//! are processed in order, connections are served concurrently.
//!
//! [`FrameKind::Request`]: autocfd_runtime_net::frame::FrameKind::Request
//! [`FrameKind::Response`]: autocfd_runtime_net::frame::FrameKind::Response
//! [`FrameKind::Stream`]: autocfd_runtime_net::frame::FrameKind::Stream

use autocfd_codegen::EnginePref;
use serde::json::{self, Value};
use std::fmt;

/// Protocol version stamped into every request; the server rejects
/// mismatches as `bad_request` so both sides can evolve deliberately.
pub const PROTO_VERSION: i64 = 1;

/// What a client may ask the service to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compile `source` and return the plan + generated parallel source.
    Compile(CompileReq),
    /// Compile (through the same cache) and execute server-side,
    /// streaming per-rank journals back.
    Run(RunReq),
    /// Report service metrics.
    Stats,
}

/// The inputs that identify one compile — exactly the [`PlanKey`]
/// material, so equal requests share a cache entry.
///
/// [`PlanKey`]: autocfd_codegen::PlanKey
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileReq {
    /// Sequential Fortran program text.
    pub source: String,
    /// Ranks along each partitioned grid axis.
    pub parts: Vec<usize>,
    /// Dependence-distance override; `None` defers to the source's
    /// `!$acf distance` directive (or the default of 1).
    pub distance: Option<usize>,
    /// Run redundant-sync elimination.
    pub optimize: bool,
    /// Requested execution engine; embedded in the returned plan so a
    /// server-side run uses what the client asked for. Requests from
    /// older clients that omit the field read as [`EnginePref::Tree`].
    pub engine: EnginePref,
    /// Kernel-engine worker threads (≥ 1); omitted reads as 1.
    pub threads: u32,
}

/// A server-side execution request: compile options plus run options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReq {
    /// What to compile (cache key material).
    pub compile: CompileReq,
    /// Overlap halo exchange with interior compute.
    pub overlap: bool,
    /// Verify owned regions against a sequential run (tolerance 0).
    pub verify: bool,
}

/// One mid-request stream item, sent as a `Stream` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// One journal line of `rank`'s JSONL journal, in file order. The
    /// client appends it verbatim to `rank-<rank>.jsonl`, reproducing
    /// the trace directory a local run would have written.
    Journal {
        /// Which rank's journal this line extends.
        rank: usize,
        /// The raw JSONL line (no trailing newline).
        line: String,
    },
    /// One line of human-readable run output (convergence report etc.).
    Output {
        /// The output line.
        line: String,
    },
}

/// Why a request failed; decides the client's exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The request itself was malformed (unknown type, missing field,
    /// protocol version mismatch).
    BadRequest,
    /// The submitted program failed to compile — maps to the client's
    /// typed compile error (exit 2).
    Compile,
    /// Execution or service-internal failure.
    Internal,
}

impl ErrorClass {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorClass::BadRequest => "bad_request",
            ErrorClass::Compile => "compile",
            ErrorClass::Internal => "internal",
        }
    }

    /// Inverse of [`ErrorClass::name`]; unknown names read as internal.
    pub fn from_name(s: &str) -> ErrorClass {
        match s {
            "bad_request" => ErrorClass::BadRequest,
            "compile" => ErrorClass::Compile,
            _ => ErrorClass::Internal,
        }
    }
}

/// A typed protocol-level failure (also used by the client for
/// transport problems, reported as [`ErrorClass::Internal`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Failure class.
    pub class: ErrorClass,
    /// Human-readable description.
    pub message: String,
}

impl ServiceError {
    /// Build an error.
    pub fn new(class: ErrorClass, message: impl Into<String>) -> ServiceError {
        ServiceError {
            class,
            message: message.into(),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class.name(), self.message)
    }
}

impl std::error::Error for ServiceError {}

fn parts_value(parts: &[usize]) -> Value {
    Value::Arr(parts.iter().map(|&p| Value::Int(p as i128)).collect())
}

fn compile_fields(c: &CompileReq) -> Vec<(&'static str, Value)> {
    vec![
        ("source", Value::Str(c.source.clone())),
        ("parts", parts_value(&c.parts)),
        (
            "distance",
            match c.distance {
                Some(d) => Value::Int(d as i128),
                None => Value::Null,
            },
        ),
        ("optimize", Value::Bool(c.optimize)),
        ("engine", Value::Str(c.engine.name().into())),
        ("threads", Value::Int(c.threads.into())),
    ]
}

impl Request {
    /// Render as the single-line JSON wire form.
    pub fn to_json(&self) -> String {
        let mut fields = vec![("proto", Value::Int(i128::from(PROTO_VERSION)))];
        match self {
            Request::Compile(c) => {
                fields.push(("type", Value::Str("compile".into())));
                fields.extend(compile_fields(c));
            }
            Request::Run(r) => {
                fields.push(("type", Value::Str("run".into())));
                fields.extend(compile_fields(&r.compile));
                fields.push(("overlap", Value::Bool(r.overlap)));
                fields.push(("verify", Value::Bool(r.verify)));
            }
            Request::Stats => fields.push(("type", Value::Str("stats".into()))),
        }
        Value::obj(fields).to_string()
    }

    /// Parse the wire form; malformed input is a `bad_request`.
    pub fn from_json(text: &str) -> Result<Request, ServiceError> {
        let bad = |m: String| ServiceError::new(ErrorClass::BadRequest, m);
        let v = json::parse(text).map_err(|e| bad(format!("request: {e}")))?;
        let proto = v
            .get("proto")
            .and_then(Value::as_int)
            .ok_or_else(|| bad("request: missing `proto`".into()))?;
        if proto != i128::from(PROTO_VERSION) {
            return Err(bad(format!(
                "request: protocol version {proto} (this server speaks {PROTO_VERSION})"
            )));
        }
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("request: missing `type`".into()))?;
        let compile = |v: &Value| -> Result<CompileReq, ServiceError> {
            let source = v
                .get("source")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("request: missing `source`".into()))?
                .to_string();
            let parts = v
                .get("parts")
                .and_then(Value::as_arr)
                .ok_or_else(|| bad("request: missing `parts`".into()))?
                .iter()
                .map(|p| {
                    p.as_int()
                        .filter(|&n| n > 0)
                        .map(|n| n as usize)
                        .ok_or_else(|| bad("request: `parts` must be positive integers".into()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let distance = match v.get("distance") {
                Some(Value::Null) => None,
                Some(val) => Some(
                    val.as_int()
                        .filter(|&n| n >= 0)
                        .ok_or_else(|| bad("request: bad `distance`".into()))?
                        as usize,
                ),
                None => return Err(bad("request: missing `distance`".into())),
            };
            let optimize = match v.get("optimize") {
                Some(Value::Bool(b)) => *b,
                _ => return Err(bad("request: missing `optimize`".into())),
            };
            // `engine`/`threads` arrived with proto-compatible lenient
            // parsing: absent fields read as the tree-walk defaults so
            // requests from older clients stay valid.
            let engine = match v.get("engine") {
                None | Some(Value::Null) => EnginePref::Tree,
                Some(val) => val
                    .as_str()
                    .and_then(EnginePref::parse)
                    .ok_or_else(|| bad(format!("request: unknown engine `{val}`")))?,
            };
            let threads = match v.get("threads") {
                None | Some(Value::Null) => 1,
                Some(val) => val
                    .as_int()
                    .filter(|&n| n >= 1)
                    .map(|n| n as u32)
                    .ok_or_else(|| bad("request: `threads` must be a positive integer".into()))?,
            };
            Ok(CompileReq {
                source,
                parts,
                distance,
                optimize,
                engine,
                threads,
            })
        };
        match ty {
            "compile" => Ok(Request::Compile(compile(&v)?)),
            "run" => Ok(Request::Run(RunReq {
                compile: compile(&v)?,
                overlap: matches!(v.get("overlap"), Some(Value::Bool(true))),
                verify: matches!(v.get("verify"), Some(Value::Bool(true))),
            })),
            "stats" => Ok(Request::Stats),
            other => Err(bad(format!("request: unknown type `{other}`"))),
        }
    }
}

impl StreamItem {
    /// Render as the single-line JSON wire form.
    pub fn to_json(&self) -> String {
        match self {
            StreamItem::Journal { rank, line } => Value::obj(vec![
                ("stream", Value::Str("journal".into())),
                ("rank", Value::Int(*rank as i128)),
                ("line", Value::Str(line.clone())),
            ]),
            StreamItem::Output { line } => Value::obj(vec![
                ("stream", Value::Str("output".into())),
                ("line", Value::Str(line.clone())),
            ]),
        }
        .to_string()
    }

    /// Parse the wire form.
    pub fn from_json(text: &str) -> Result<StreamItem, ServiceError> {
        let bad = |m: String| ServiceError::new(ErrorClass::Internal, m);
        let v = json::parse(text).map_err(|e| bad(format!("stream item: {e}")))?;
        let line = v
            .get("line")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("stream item: missing `line`".into()))?
            .to_string();
        match v.get("stream").and_then(Value::as_str) {
            Some("journal") => {
                let rank = v
                    .get("rank")
                    .and_then(Value::as_int)
                    .filter(|&n| n >= 0)
                    .ok_or_else(|| bad("stream item: missing `rank`".into()))?
                    as usize;
                Ok(StreamItem::Journal { rank, line })
            }
            Some("output") => Ok(StreamItem::Output { line }),
            other => Err(bad(format!("stream item: unknown kind {other:?}"))),
        }
    }
}

/// Render a success response: `{"ok":true,...fields}`.
pub fn ok_response(fields: Vec<(&str, Value)>) -> String {
    let mut all = vec![("ok", Value::Bool(true))];
    all.extend(fields);
    Value::obj(all).to_string()
}

/// Render a failure response: `{"ok":false,"kind":...,"message":...}`.
pub fn err_response(err: &ServiceError) -> String {
    Value::obj(vec![
        ("ok", Value::Bool(false)),
        ("kind", Value::Str(err.class.name().into())),
        ("message", Value::Str(err.message.clone())),
    ])
    .to_string()
}

/// Parse a response body: `Ok(fields)` for `ok:true`, the typed error
/// for `ok:false`, `Internal` for anything unparseable.
pub fn parse_response(text: &str) -> Result<Value, ServiceError> {
    let v = json::parse(text)
        .map_err(|e| ServiceError::new(ErrorClass::Internal, format!("response: {e}")))?;
    match v.get("ok") {
        Some(Value::Bool(true)) => Ok(v),
        Some(Value::Bool(false)) => {
            let class = v
                .get("kind")
                .and_then(Value::as_str)
                .map(ErrorClass::from_name)
                .unwrap_or(ErrorClass::Internal);
            let message = v
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("unspecified server error")
                .to_string();
            Err(ServiceError { class, message })
        }
        _ => Err(ServiceError::new(
            ErrorClass::Internal,
            "response: missing `ok`".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> CompileReq {
        CompileReq {
            source: "program t\n  x = 1\nend\n".into(),
            parts: vec![2, 2],
            distance: Some(1),
            optimize: true,
            engine: EnginePref::Tree,
            threads: 1,
        }
    }

    #[test]
    fn requests_roundtrip() {
        let kernel = CompileReq {
            engine: EnginePref::Kernel,
            threads: 4,
            ..req()
        };
        for r in [
            Request::Compile(req()),
            Request::Compile(kernel),
            Request::Run(RunReq {
                compile: req(),
                overlap: true,
                verify: false,
            }),
            Request::Stats,
        ] {
            assert_eq!(Request::from_json(&r.to_json()).unwrap(), r);
        }
    }

    #[test]
    fn engine_fields_default_when_absent() {
        // a pre-engine client's request (no `engine`/`threads` keys)
        let text = "{\"proto\":1,\"type\":\"compile\",\"source\":\"x\",\
                    \"parts\":[2],\"distance\":null,\"optimize\":true}";
        let Request::Compile(c) = Request::from_json(text).unwrap() else {
            panic!("not a compile request");
        };
        assert_eq!(c.engine, EnginePref::Tree);
        assert_eq!(c.threads, 1);
        // but garbage values are rejected, not defaulted
        let bad = "{\"proto\":1,\"type\":\"compile\",\"source\":\"x\",\
                   \"parts\":[2],\"distance\":null,\"optimize\":true,\
                   \"engine\":\"warp\"}";
        assert_eq!(
            Request::from_json(bad).unwrap_err().class,
            ErrorClass::BadRequest
        );
        let bad = "{\"proto\":1,\"type\":\"compile\",\"source\":\"x\",\
                   \"parts\":[2],\"distance\":null,\"optimize\":true,\
                   \"threads\":0}";
        assert_eq!(
            Request::from_json(bad).unwrap_err().class,
            ErrorClass::BadRequest
        );
    }

    #[test]
    fn stream_items_roundtrip() {
        for s in [
            StreamItem::Journal {
                rank: 3,
                line: "{\"type\":\"event\"}".into(),
            },
            StreamItem::Output {
                line: "converged after 12 steps".into(),
            },
        ] {
            assert_eq!(StreamItem::from_json(&s.to_json()).unwrap(), s);
        }
    }

    #[test]
    fn malformed_requests_are_bad_request_not_panics() {
        for text in [
            "",
            "{",
            "{\"proto\":1}",
            "{\"proto\":99,\"type\":\"stats\"}",
            "{\"proto\":1,\"type\":\"nope\"}",
            "{\"proto\":1,\"type\":\"compile\",\"source\":\"x\"}",
            "{\"proto\":1,\"type\":\"compile\",\"source\":\"x\",\"parts\":[0],\"distance\":1,\"optimize\":true}",
        ] {
            let err = Request::from_json(text).unwrap_err();
            assert_eq!(err.class, ErrorClass::BadRequest, "{text}");
        }
    }

    #[test]
    fn responses_roundtrip_ok_and_error() {
        let ok = ok_response(vec![("cache", Value::Str("hit".into()))]);
        let v = parse_response(&ok).unwrap();
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("hit"));

        let err_text = err_response(&ServiceError::new(ErrorClass::Compile, "line 3: bad loop"));
        let err = parse_response(&err_text).unwrap_err();
        assert_eq!(err.class, ErrorClass::Compile);
        assert!(err.message.contains("bad loop"));
    }
}
