//! The resident service: accept loop, request dispatch, single-flight
//! compile deduplication, and metrics.
//!
//! One thread per connection; requests on a connection are served in
//! order, connections concurrently. The pipeline itself is injected as
//! a [`Backend`] (the `autocfd` crate implements it), which keeps this
//! crate free of a dependency cycle with the client plumbing.
//!
//! Failure containment, by design:
//!
//! * a malformed request or failed compile produces a typed error
//!   `Response` on that connection — the accept loop and every other
//!   connection are untouched;
//! * a client that vanishes mid-stream fails that connection's socket
//!   writes, which cancels only that request ([`Backend::execute`] sees
//!   its emit callback return `false` and stops streaming);
//! * a poisoned internal lock (a panicking backend) is treated as an
//!   internal error for the request that observes it.

use crate::cache::{CacheEntry, PlanCache};
use crate::proto::{
    err_response, ok_response, CompileReq, ErrorClass, Request, RunReq, ServiceError, StreamItem,
};
use autocfd_advisor as advisor;
use autocfd_codegen::PlanKey;
use autocfd_runtime::export::percentiles;
use autocfd_runtime::journal::{self, JournalHeader, MergedTrace};
use autocfd_runtime::trace::{EventKind, TraceEvent};
use autocfd_runtime_net::frame::{encode, read_frame, Frame, FrameKind};
use serde::json::Value;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What one pipeline invocation produces; cached verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledUnit {
    /// The plan in `codegen::plan_json` form.
    pub plan_json: String,
    /// The restructured parallel Fortran source.
    pub parallel_source: String,
}

/// The compile pipeline and run harness, injected by the embedder.
pub trait Backend: Send + Sync + 'static {
    /// Run frontend + analysis + restructuring on `req`. Called only on
    /// a cache miss (and once per digest under concurrent misses).
    fn compile(&self, req: &CompileReq) -> Result<CompiledUnit, ServiceError>;

    /// Execute a compiled unit server-side, emitting journal/output
    /// stream items as they become available. `emit` returns `false`
    /// when the client is gone; stop streaming then (the run may finish
    /// or abort — nothing observes it either way). Returns extra fields
    /// merged into the final `Run` response.
    fn execute(
        &self,
        entry: &CacheEntry,
        req: &RunReq,
        emit: &mut dyn FnMut(StreamItem) -> bool,
    ) -> Result<Vec<(String, Value)>, ServiceError>;
}

/// Service tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// LRU bound (entries). 0 is clamped to 1.
    pub capacity: usize,
    /// Persist cache entries here; `None` for in-memory only.
    pub cache_dir: Option<PathBuf>,
    /// After every request, rewrite a rank-0 journal of the service's
    /// own request timeline here (phases `compile`/`run`/`stats`), in
    /// the same JSONL schema the SPMD runtime writes — so the existing
    /// `runtime::journal`/`runtime::export` tooling reads service
    /// metrics unchanged.
    pub journal_dir: Option<PathBuf>,
}

const PHASES: [&str; 3] = ["compile", "run", "stats"];

struct Flight {
    slot: Mutex<Option<Result<CacheEntry, ServiceError>>>,
    cv: Condvar,
}

struct State {
    backend: Box<dyn Backend>,
    cache: Mutex<PlanCache>,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    /// Requests currently being served (all kinds).
    queue_depth: AtomicU64,
    /// Requests completed (all kinds, success or failure).
    served: AtomicU64,
    /// Times the full pipeline actually ran — the counter that proves
    /// warm-cache requests skip the frontend.
    pipeline_invocations: AtomicU64,
    compile_latencies: Mutex<Vec<Duration>>,
    request_events: Mutex<Vec<TraceEvent>>,
    epoch: Instant,
    epoch_unix_ns: i128,
    shutdown: AtomicBool,
    journal_dir: Option<PathBuf>,
}

fn internal(msg: impl Into<String>) -> ServiceError {
    ServiceError::new(ErrorClass::Internal, msg)
}

impl State {
    /// Serve `req.compile` from the cache or compile it exactly once,
    /// no matter how many identical requests are in flight. Returns the
    /// entry, how it was obtained (`hit` / `miss` / `coalesced`), and
    /// the compile latency (zero on a hit).
    fn lookup_or_compile(
        self: &Arc<State>,
        req: &CompileReq,
    ) -> Result<(CacheEntry, &'static str, Duration), ServiceError> {
        let digest = PlanKey::new(
            &req.source,
            &req.parts,
            req.distance,
            req.optimize,
            req.engine,
            req.threads,
        )
        .digest();
        if let Some(entry) = self.cache_lock()?.get(&digest) {
            return Ok((entry, "hit", Duration::ZERO));
        }
        let (flight, leader) = {
            let mut inflight = self
                .inflight
                .lock()
                .map_err(|_| internal("inflight map poisoned"))?;
            match inflight.get(&digest) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        slot: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    inflight.insert(digest.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !leader {
            // Follower: wait for the leader's result and share it.
            let mut slot = flight
                .slot
                .lock()
                .map_err(|_| internal("flight poisoned"))?;
            while slot.is_none() {
                slot = flight
                    .cv
                    .wait(slot)
                    .map_err(|_| internal("flight poisoned"))?;
            }
            return match slot.clone().expect("loop exits only when set") {
                Ok(entry) => Ok((entry, "coalesced", Duration::ZERO)),
                Err(e) => Err(e),
            };
        }
        // Leader: someone may have filled the cache between our miss and
        // claiming the flight; a second lookup is cheap, a duplicate
        // compile is not. (Bind the lookup to a local first — matching
        // on `self.cache_lock()?.get(..)` directly would keep the guard
        // alive across the whole match, deadlocking on the `insert`.)
        let recheck = self.cache_lock()?.recheck(&digest);
        let result = match recheck {
            Some(entry) => Ok((entry, "hit", Duration::ZERO)),
            None => {
                self.pipeline_invocations.fetch_add(1, Ordering::SeqCst);
                let t0 = Instant::now();
                let compiled = self.backend.compile(req);
                let took = t0.elapsed();
                match compiled {
                    Ok(unit) => {
                        if let Ok(mut lat) = self.compile_latencies.lock() {
                            lat.push(took);
                        }
                        let entry = CacheEntry {
                            digest: digest.clone(),
                            plan_json: unit.plan_json,
                            parallel_source: unit.parallel_source,
                        };
                        if let Err(e) = self.cache_lock()?.insert(entry.clone()) {
                            // entry stays live in memory; persistence is
                            // best-effort
                            eprintln!("acfd-compile: cache persist failed: {e}");
                        }
                        Ok((entry, "miss", took))
                    }
                    Err(e) => Err(e),
                }
            }
        };
        // Publish to followers, then retire the flight.
        {
            let mut slot = flight
                .slot
                .lock()
                .map_err(|_| internal("flight poisoned"))?;
            *slot = Some(result.clone().map(|(entry, _, _)| entry));
            flight.cv.notify_all();
        }
        if let Ok(mut inflight) = self.inflight.lock() {
            inflight.remove(&digest);
        }
        result
    }

    fn cache_lock(&self) -> Result<std::sync::MutexGuard<'_, PlanCache>, ServiceError> {
        self.cache.lock().map_err(|_| internal("cache poisoned"))
    }

    fn stats_response(&self) -> String {
        let cache = self.cache.lock().map(|c| c.stats()).unwrap_or_default();
        let mut lat: Vec<Duration> = self
            .compile_latencies
            .lock()
            .map(|l| l.clone())
            .unwrap_or_default();
        let pct = percentiles(&mut lat);
        let ms = |d: Duration| Value::Float(d.as_secs_f64() * 1e3);
        // The advisor's one-line verdict over the service's own request
        // trace: which request class dominates the service's busy time.
        let verdict = self
            .request_events
            .lock()
            .ok()
            .filter(|evs| !evs.is_empty())
            .map(|evs| {
                let merged = MergedTrace {
                    traces: vec![evs.clone()],
                    phase_names: vec![PHASES.iter().map(|p| p.to_string()).collect()],
                    transport: "service".into(),
                    complete: true,
                    skipped: 0,
                };
                advisor::diagnose(&merged)
            })
            .as_ref()
            .and_then(|diag| {
                advisor::hot_phase(diag)
                    .map(|(name, busy, share)| (name.to_string(), busy.as_secs_f64() * 1e3, share))
            });
        let (hot, hot_ms, hot_share) = match verdict {
            Some((name, busy_ms, share)) => {
                (Value::Str(name), Value::Float(busy_ms), Value::Float(share))
            }
            None => (
                Value::Str("none".into()),
                Value::Float(0.0),
                Value::Float(0.0),
            ),
        };
        ok_response(vec![
            ("req", Value::Str("stats".into())),
            ("hits", Value::Int(cache.hits as i128)),
            ("misses", Value::Int(cache.misses as i128)),
            ("evictions", Value::Int(cache.evictions as i128)),
            ("dropped_corrupt", Value::Int(cache.dropped_corrupt as i128)),
            ("entries", Value::Int(cache.entries as i128)),
            ("capacity", Value::Int(cache.capacity as i128)),
            (
                "queue_depth",
                Value::Int(self.queue_depth.load(Ordering::SeqCst) as i128),
            ),
            (
                "served",
                Value::Int(self.served.load(Ordering::SeqCst) as i128),
            ),
            (
                "pipeline_invocations",
                Value::Int(self.pipeline_invocations.load(Ordering::SeqCst) as i128),
            ),
            ("compile_ms_p50", ms(pct.p50)),
            ("compile_ms_p95", ms(pct.p95)),
            ("compile_ms_max", ms(pct.max)),
            ("advice_hot_phase", hot),
            ("advice_hot_phase_ms", hot_ms),
            ("advice_hot_phase_share_pct", hot_share),
        ])
    }

    /// Record one served request as a compute span in the service's own
    /// trace, and (if configured) rewrite the service journal so the
    /// standard tooling can read it at any time.
    fn record_request(&self, phase: u32, t0: Instant) {
        let ev = TraceEvent {
            kind: EventKind::Compute,
            start: t0.saturating_duration_since(self.epoch),
            end: Instant::now().saturating_duration_since(self.epoch),
            peer: None,
            elems: 0,
            bytes: 0,
            phase,
            seq: None,
        };
        let events = match self.request_events.lock() {
            Ok(mut evs) => {
                evs.push(ev);
                self.journal_dir.as_ref().map(|_| evs.clone())
            }
            Err(_) => None,
        };
        if let (Some(dir), Some(events)) = (self.journal_dir.as_ref(), events) {
            let header = JournalHeader {
                version: journal::SCHEMA_VERSION,
                rank: 0,
                ranks: 1,
                transport: "service".into(),
                epoch_unix_ns: self.epoch_unix_ns,
            };
            let phases: Vec<String> = PHASES.iter().map(|p| p.to_string()).collect();
            if let Err(e) = journal::write_rank_journal(dir, &header, &events, &phases, "tree") {
                eprintln!("acfd-compile: journal write failed: {e}");
            }
        }
    }
}

/// A bound, not-yet-serving service.
pub struct Service {
    listener: TcpListener,
    state: Arc<State>,
}

/// A serving service; keeps the bound address and a shutdown switch.
pub struct ServiceHandle {
    addr: SocketAddr,
    state: Arc<State>,
    join: std::thread::JoinHandle<()>,
}

impl Service {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) around `backend`.
    pub fn bind(
        addr: &str,
        backend: Box<dyn Backend>,
        config: ServiceConfig,
    ) -> io::Result<Service> {
        let listener = TcpListener::bind(addr)?;
        let cache = match &config.cache_dir {
            Some(dir) => PlanCache::open(dir, config.capacity)?,
            None => PlanCache::in_memory(config.capacity),
        };
        let epoch = Instant::now();
        Ok(Service {
            listener,
            state: Arc::new(State {
                backend,
                cache: Mutex::new(cache),
                inflight: Mutex::new(HashMap::new()),
                queue_depth: AtomicU64::new(0),
                served: AtomicU64::new(0),
                pipeline_invocations: AtomicU64::new(0),
                compile_latencies: Mutex::new(Vec::new()),
                request_events: Mutex::new(Vec::new()),
                epoch,
                epoch_unix_ns: journal::epoch_unix_ns(epoch),
                shutdown: AtomicBool::new(false),
                journal_dir: config.journal_dir,
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until shut down, one thread per connection. Blocks.
    pub fn serve(self) {
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || handle_conn(state, stream));
                }
                Err(e) => eprintln!("acfd-compile: accept failed: {e}"),
            }
        }
    }

    /// Serve on a background thread; the handle shuts it down cleanly.
    pub fn spawn(self) -> io::Result<ServiceHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let join = std::thread::spawn(move || self.serve());
        Ok(ServiceHandle { addr, state, join })
    }
}

impl ServiceHandle {
    /// The service's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Times the pipeline actually ran (the warm-cache-skips-frontend
    /// proof, also served in `Stats` as `pipeline_invocations`).
    pub fn pipeline_invocations(&self) -> u64 {
        self.state.pipeline_invocations.load(Ordering::SeqCst)
    }

    /// Stop accepting and join the accept loop. Connections already
    /// being served run to completion on their own threads.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock accept()
        let _ = self.join.join();
    }
}

fn write_frame(stream: &mut TcpStream, kind: FrameKind, text: &str) -> io::Result<()> {
    stream.write_all(&encode(&Frame::from_text(kind, 0, text)))
}

fn handle_conn(state: Arc<State>, mut stream: TcpStream) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some((frame, _))) => frame,
            Ok(None) => return, // client closed cleanly
            Err(_) => return,   // client vanished; cancels only this connection
        };
        let outcome = serve_request(&state, &frame, &mut stream);
        state.served.fetch_add(1, Ordering::SeqCst);
        if outcome.is_err() {
            return; // could not write back: the client is gone
        }
    }
}

/// Serve one request frame. `Err` means the *socket* failed (client
/// gone) — request-level failures are written as error responses and
/// return `Ok`.
fn serve_request(state: &Arc<State>, frame: &Frame, stream: &mut TcpStream) -> io::Result<()> {
    let t0 = Instant::now();
    state.queue_depth.fetch_add(1, Ordering::SeqCst);
    // every exit path below must run this
    let finish = |phase: u32| {
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        state.record_request(phase, t0);
    };

    if frame.kind != FrameKind::Request {
        finish(2);
        return write_frame(
            stream,
            FrameKind::Response,
            &err_response(&ServiceError::new(
                ErrorClass::BadRequest,
                format!("expected a request frame, got {:?}", frame.kind),
            )),
        );
    }
    let req = frame
        .text()
        .map_err(|e| ServiceError::new(ErrorClass::BadRequest, format!("request frame: {e}")))
        .and_then(|text| Request::from_json(&text));
    match req {
        Err(e) => {
            finish(2);
            write_frame(stream, FrameKind::Response, &err_response(&e))
        }
        Ok(Request::Stats) => {
            let body = state.stats_response();
            finish(2);
            write_frame(stream, FrameKind::Response, &body)
        }
        Ok(Request::Compile(c)) => {
            let body = match state.lookup_or_compile(&c) {
                Ok((entry, cache, took)) => ok_response(vec![
                    ("req", Value::Str("compile".into())),
                    ("cache", Value::Str(cache.into())),
                    ("digest", Value::Str(entry.digest.clone())),
                    ("compile_ms", Value::Float(took.as_secs_f64() * 1e3)),
                    ("plan", Value::Str(entry.plan_json.clone())),
                    ("parallel_source", Value::Str(entry.parallel_source)),
                ]),
                Err(e) => err_response(&e),
            };
            finish(0);
            write_frame(stream, FrameKind::Response, &body)
        }
        Ok(Request::Run(r)) => {
            let result = state.lookup_or_compile(&r.compile);
            let body = match result {
                Err(e) => err_response(&e),
                Ok((entry, cache, took)) => {
                    // stream items as the run produces them; a write
                    // failure flips `client_gone` and stops the stream
                    let mut client_gone = false;
                    let mut emit = |item: StreamItem| -> bool {
                        if client_gone {
                            return false;
                        }
                        if write_frame(stream, FrameKind::Stream, &item.to_json()).is_err() {
                            client_gone = true;
                        }
                        !client_gone
                    };
                    match state.backend.execute(&entry, &r, &mut emit) {
                        Ok(extra) => {
                            let mut fields = vec![
                                ("req", Value::Str("run".into())),
                                ("cache", Value::Str(cache.into())),
                                ("digest", Value::Str(entry.digest.clone())),
                                ("compile_ms", Value::Float(took.as_secs_f64() * 1e3)),
                            ];
                            let extra: Vec<(String, Value)> = extra;
                            let rendered: Vec<(&str, Value)> = fields
                                .drain(..)
                                .chain(extra.iter().map(|(k, v)| (k.as_str(), v.clone())))
                                .collect();
                            ok_response(rendered)
                        }
                        Err(e) => err_response(&e),
                    }
                }
            };
            finish(1);
            write_frame(stream, FrameKind::Response, &body)
        }
    }
}
