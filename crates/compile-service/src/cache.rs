//! The content-addressed plan cache: a bounded in-memory LRU with
//! on-disk persistence.
//!
//! Entries are named by [`PlanKey::digest`](autocfd_codegen::PlanKey)
//! — canonicalized source × partition × distance × optimize ×
//! [`PLAN_SCHEMA_VERSION`](autocfd_codegen::PLAN_SCHEMA_VERSION) — so a
//! schema bump orphans every old entry (its digest can never be asked
//! for again) and [`PlanCache::open`] garbage-collects the leftovers:
//! any persisted file whose plan no longer parses under the current
//! schema, whose JSON is corrupt, or whose recorded digest disagrees
//! with its filename is deleted and counted, never served. A bad cache
//! degrades to a recompile, not an error.

use autocfd_codegen::plan_json;
use serde::json::{self, Value};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Suffix for persisted entries: `<digest>.plan.json`.
const FILE_SUFFIX: &str = ".plan.json";

/// One cached compile result: everything needed to serve a warm
/// `Compile` without touching the frontend, and a warm `Run` without
/// re-running analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The [`PlanKey`](autocfd_codegen::PlanKey) digest naming this entry.
    pub digest: String,
    /// The `SpmdPlan` in `codegen::plan_json` wire/artifact form.
    pub plan_json: String,
    /// The restructured parallel Fortran source.
    pub parallel_source: String,
}

impl CacheEntry {
    fn to_json(&self) -> String {
        Value::obj(vec![
            ("digest", Value::Str(self.digest.clone())),
            ("plan", Value::Str(self.plan_json.clone())),
            ("parallel_source", Value::Str(self.parallel_source.clone())),
        ])
        .to_string()
    }

    /// Parse a persisted entry and validate it end to end: JSON shape,
    /// digest/filename agreement, and the plan itself under the current
    /// schema. Any failure is one typed reason the caller can log.
    fn from_persisted(text: &str, expect_digest: &str) -> Result<CacheEntry, String> {
        let v = json::parse(text).map_err(|e| format!("entry JSON: {e}"))?;
        let get = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry JSON: missing `{k}`"))
        };
        let entry = CacheEntry {
            digest: get("digest")?,
            plan_json: get("plan")?,
            parallel_source: get("parallel_source")?,
        };
        if entry.digest != expect_digest {
            return Err(format!(
                "digest mismatch: file says {}, name says {expect_digest}",
                entry.digest
            ));
        }
        // from_json enforces PLAN_SCHEMA_VERSION, so stale-schema
        // entries land here and are dropped like any other corruption
        plan_json::from_json(&entry.plan_json)
            .map_err(|e| format!("stale or corrupt plan: {e}"))?;
        Ok(entry)
    }
}

/// Cumulative cache counters, served verbatim by `Stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Persisted files dropped at open() as corrupt or stale-schema.
    pub dropped_corrupt: u64,
    /// Live entries right now.
    pub entries: usize,
    /// The LRU bound.
    pub capacity: usize,
}

/// Bounded LRU of [`CacheEntry`]s, optionally persisted to a directory.
///
/// Not internally synchronized — the service wraps it in a `Mutex`.
#[derive(Debug)]
pub struct PlanCache {
    dir: Option<PathBuf>,
    capacity: usize,
    entries: HashMap<String, CacheEntry>,
    /// Digests from least- to most-recently used.
    order: Vec<String>,
    hits: u64,
    misses: u64,
    evictions: u64,
    dropped_corrupt: u64,
}

impl PlanCache {
    /// An in-memory cache holding at most `capacity` entries.
    pub fn in_memory(capacity: usize) -> PlanCache {
        PlanCache {
            dir: None,
            capacity: capacity.max(1),
            entries: HashMap::new(),
            order: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            dropped_corrupt: 0,
        }
    }

    /// A persistent cache rooted at `dir` (created if missing). Every
    /// `<digest>.plan.json` already present is validated and loaded;
    /// corrupt, stale-schema, or misnamed files are deleted on the spot
    /// and counted in [`CacheStats::dropped_corrupt`]. If more valid
    /// entries exist than `capacity`, the excess is evicted immediately
    /// (load order is arbitrary — persisted LRU order is not tracked).
    pub fn open(dir: &Path, capacity: usize) -> io::Result<PlanCache> {
        fs::create_dir_all(dir)?;
        let mut cache = PlanCache::in_memory(capacity);
        cache.dir = Some(dir.to_path_buf());
        let mut names: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(FILE_SUFFIX))
            })
            .collect();
        names.sort(); // deterministic load order
        for path in names {
            let digest = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(FILE_SUFFIX))
                .unwrap_or("")
                .to_string();
            let loaded = fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| CacheEntry::from_persisted(&text, &digest));
            match loaded {
                Ok(entry) => cache.insert_unsynced(entry),
                Err(_) => {
                    cache.dropped_corrupt += 1;
                    let _ = fs::remove_file(&path);
                }
            }
        }
        Ok(cache)
    }

    /// Look up `digest`, promoting it to most-recently-used.
    pub fn get(&mut self, digest: &str) -> Option<CacheEntry> {
        match self.entries.get(digest) {
            Some(entry) => {
                self.hits += 1;
                let entry = entry.clone();
                self.touch(digest);
                Some(entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// [`get`](PlanCache::get) for the single-flight leader's re-check:
    /// a hit here is a real request-level hit (someone else filled the
    /// entry first), but a miss is the *same* miss the first lookup
    /// already counted, so only the hit counter moves.
    pub fn recheck(&mut self, digest: &str) -> Option<CacheEntry> {
        if self.entries.contains_key(digest) {
            self.get(digest)
        } else {
            None
        }
    }

    /// Insert (or refresh) an entry, persisting it if the cache has a
    /// directory and evicting the least-recently-used entry (memory and
    /// disk) once past capacity. Persistence failures are reported but
    /// leave the in-memory entry live — the cache still works, it just
    /// won't survive a restart.
    pub fn insert(&mut self, entry: CacheEntry) -> io::Result<()> {
        let persisted = match &self.dir {
            Some(dir) => fs::write(self.entry_path(dir, &entry.digest), entry.to_json()),
            None => Ok(()),
        };
        self.insert_unsynced(entry);
        persisted
    }

    fn insert_unsynced(&mut self, entry: CacheEntry) {
        let digest = entry.digest.clone();
        self.entries.insert(digest.clone(), entry);
        self.touch(&digest);
        while self.entries.len() > self.capacity {
            let victim = self.order.remove(0);
            self.entries.remove(&victim);
            self.evictions += 1;
            if let Some(dir) = &self.dir {
                let _ = fs::remove_file(self.entry_path(dir, &victim));
            }
        }
    }

    fn touch(&mut self, digest: &str) {
        self.order.retain(|d| d != digest);
        self.order.push(digest.to_string());
    }

    fn entry_path(&self, dir: &Path, digest: &str) -> PathBuf {
        dir.join(format!("{digest}{FILE_SUFFIX}"))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            dropped_corrupt: self.dropped_corrupt,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Digests currently live, least- to most-recently used.
    pub fn digests(&self) -> &[String] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(digest: &str) -> CacheEntry {
        CacheEntry {
            digest: digest.to_string(),
            // minimal but *valid* plan JSON is required for persistence
            // tests; built by the service tests instead. Here a stub is
            // fine because in-memory inserts never validate.
            plan_json: "{}".into(),
            parallel_source: "program t\nend\n".into(),
        }
    }

    #[test]
    fn lru_evicts_oldest_and_get_promotes() {
        let mut c = PlanCache::in_memory(2);
        c.insert(entry("a")).unwrap();
        c.insert(entry("b")).unwrap();
        assert!(c.get("a").is_some()); // promotes a over b
        c.insert(entry("c")).unwrap(); // evicts b
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (3, 1, 1, 2));
    }

    #[test]
    fn reinserting_same_digest_does_not_grow_or_evict() {
        let mut c = PlanCache::in_memory(2);
        c.insert(entry("a")).unwrap();
        c.insert(entry("a")).unwrap();
        c.insert(entry("b")).unwrap();
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c = PlanCache::in_memory(0);
        c.insert(entry("a")).unwrap();
        assert!(c.get("a").is_some());
    }
}
