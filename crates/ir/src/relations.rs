//! Loop relations — Definitions 6.1–6.4 of the paper (§5.1).
//!
//! With `L = <index, S>` and the extended loop body `S* = {S_s} ∪ S ∪ {S_e}`:
//!
//! * **Def 6.1** (inner/outer): `L2 ⊂ L1` iff `S2* ⊂ S1*` — here, iff `L2`
//!   is strictly nested inside `L1`.
//! * **Def 6.2** (direct inner/outer): `L1 ⊢ L2` iff `L2 ⊂ L1` with no
//!   loop strictly between them.
//! * **Def 6.3** (adjacent): `L1 ∥ L2` iff both have no outer loop, or
//!   both have the *same* direct outer loop.
//! * **Def 6.4** (simple): `L` is simple iff no two loops inside `L` are
//!   adjacent — i.e. `L`'s interior loop structure is a single chain.

use crate::model::{LoopId, UnitIr};

/// Def 6.1 — `inner ⊂ outer`: strictly nested (any depth).
pub fn is_inner(unit: &UnitIr, inner: LoopId, outer: LoopId) -> bool {
    inner != outer && unit.is_in_loop(inner, outer)
}

/// Def 6.2 — `outer ⊢ inner`: directly nested.
pub fn is_direct_inner(unit: &UnitIr, inner: LoopId, outer: LoopId) -> bool {
    unit.loop_info(inner).parent == Some(outer)
}

/// Def 6.2 — the direct outer loop of `id`, if any.
pub fn direct_outer(unit: &UnitIr, id: LoopId) -> Option<LoopId> {
    unit.loop_info(id).parent
}

/// Def 6.3 — `a ∥ b`: adjacent loops (same direct outer loop, or both
/// top-level). A loop is not adjacent to itself.
pub fn is_adjacent(unit: &UnitIr, a: LoopId, b: LoopId) -> bool {
    a != b && unit.loop_info(a).parent == unit.loop_info(b).parent
}

/// Def 6.4 — `L` is a simple loop: no pair of adjacent loops inside it.
/// Equivalently, every loop in `L`'s nest (including `L`) has at most one
/// direct inner loop.
pub fn is_simple(unit: &UnitIr, id: LoopId) -> bool {
    fn chain(unit: &UnitIr, id: LoopId) -> bool {
        let ch = &unit.loop_info(id).children;
        match ch.len() {
            0 => true,
            1 => chain(unit, ch[0]),
            _ => false,
        }
    }
    chain(unit, id)
}

/// The chain of loops from `id` outward to its outermost enclosing loop
/// (starting with `id` itself).
pub fn outward_chain(unit: &UnitIr, id: LoopId) -> Vec<LoopId> {
    let mut out = vec![id];
    let mut cur = unit.loop_info(id).parent;
    while let Some(p) = cur {
        out.push(p);
        cur = unit.loop_info(p).parent;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_ir;
    use autocfd_fortran::parse;

    /// L0(i) { L1(j) { L2(k) } ; L3(m) } ; L4(n)
    const NEST: &str = "
!$acf grid(10, 10)
!$acf status v
      program nest
      real v(10,10)
      integer i, j, k, m, n
      do i = 1, 10
        do j = 1, 10
          do k = 1, 10
            v(1,1) = v(1,1) + 1.0
          end do
        end do
        do m = 1, 10
          x = m
        end do
      end do
      do n = 1, 10
        y = n
      end do
      end
";

    fn unit() -> crate::model::UnitIr {
        let p = build_ir(parse(NEST).unwrap()).unwrap();
        p.units[0].clone()
    }

    #[test]
    fn inner_relation() {
        let u = unit();
        let (l0, l1, l2, l3, l4) = (LoopId(0), LoopId(1), LoopId(2), LoopId(3), LoopId(4));
        assert!(is_inner(&u, l1, l0));
        assert!(is_inner(&u, l2, l0)); // transitive
        assert!(is_inner(&u, l2, l1));
        assert!(is_inner(&u, l3, l0));
        assert!(!is_inner(&u, l0, l0)); // strict
        assert!(!is_inner(&u, l0, l1));
        assert!(!is_inner(&u, l4, l0));
    }

    #[test]
    fn direct_inner_relation() {
        let u = unit();
        assert!(is_direct_inner(&u, LoopId(1), LoopId(0)));
        assert!(is_direct_inner(&u, LoopId(2), LoopId(1)));
        assert!(!is_direct_inner(&u, LoopId(2), LoopId(0))); // not direct
        assert_eq!(direct_outer(&u, LoopId(2)), Some(LoopId(1)));
        assert_eq!(direct_outer(&u, LoopId(0)), None);
    }

    #[test]
    fn adjacency() {
        let u = unit();
        // l1 and l3 share direct outer l0
        assert!(is_adjacent(&u, LoopId(1), LoopId(3)));
        // l0 and l4 are both top-level
        assert!(is_adjacent(&u, LoopId(0), LoopId(4)));
        // l1 and l2 are nested, not adjacent
        assert!(!is_adjacent(&u, LoopId(1), LoopId(2)));
        // not self-adjacent
        assert!(!is_adjacent(&u, LoopId(1), LoopId(1)));
    }

    #[test]
    fn simplicity() {
        let u = unit();
        // l0 contains adjacent l1,l3 → not simple
        assert!(!is_simple(&u, LoopId(0)));
        // l1 contains only the k chain → simple
        assert!(is_simple(&u, LoopId(1)));
        assert!(is_simple(&u, LoopId(2)));
        assert!(is_simple(&u, LoopId(4)));
    }

    #[test]
    fn outward_chain_order() {
        let u = unit();
        assert_eq!(
            outward_chain(&u, LoopId(2)),
            vec![LoopId(2), LoopId(1), LoopId(0)]
        );
        assert_eq!(outward_chain(&u, LoopId(4)), vec![LoopId(4)]);
    }
}
