#![warn(missing_docs)]

//! Program IR for the Auto-CFD pre-compiler.
//!
//! This crate turns a parsed Fortran [`SourceFile`](autocfd_fortran::SourceFile)
//! into the analysis representation the rest of the pipeline works on:
//!
//! * [`model`] — the IR data model: per-unit loop trees ([`LoopInfo`]),
//!   status-array access records ([`ArrayAccess`]) with decoded subscript
//!   patterns, call sites, and program-order statement indices;
//! * [`build`] — construction of the IR from the AST plus the `!$acf`
//!   directive set (resolving `name(args)` into array reference vs.
//!   function call, locating field loops);
//! * [`classify`](mod@classify) — the paper's §2 loop taxonomy: for every status array
//!   each field loop is **A-type** (assignment-only), **R-type**
//!   (reference-only), **C-type** (combined) or **O-type** (unrelated)
//!   — Figure 1 of the paper;
//! * [`relations`] — the loop relations of §5.1 Definitions 6.1–6.4:
//!   inner/outer loops, *direct* inner/outer loops, adjacent loops, and
//!   simple loops.
//!
//! The IR deliberately keeps the original AST around (`ProgramIr::file`):
//! the restructurer edits the AST, guided by analysis results keyed by
//! [`StmtId`](autocfd_fortran::StmtId).

pub mod build;
pub mod classify;
pub mod model;
pub mod relations;
pub mod report;

pub use build::build_ir;
pub use classify::{classify, LoopClass};
pub use model::{
    ArrayAccess, CallSite, IndexPattern, LoopId, LoopInfo, ProgramIr, StatusArrayInfo, UnitIr,
};
pub use report::{report_program, report_unit};
