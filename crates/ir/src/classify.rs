//! Field-loop classification (§2, Figure 1 of the paper).
//!
//! For each status array `v`, a field loop is one of:
//!
//! * **A-type** (assignment-only): the loop assigns `v` but never reads it,
//! * **R-type** (reference-only): the loop reads `v` but never assigns it,
//! * **C-type** (combined): the loop both assigns and reads `v`,
//! * **O-type** (unrelated): the loop does not touch `v` at all.
//!
//! Classification is with respect to the *whole loop nest* (the loop and
//! everything inside it), matching Figure 1's two-level examples.

use crate::model::{LoopId, UnitIr};
use serde::{Deserialize, Serialize};

/// The four loop types of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopClass {
    /// Assignment-only (Fig 1a).
    AType,
    /// Reference-only (Fig 1b).
    RType,
    /// Combined assignment and reference (Fig 1c).
    CType,
    /// Unrelated (Fig 1d).
    OType,
}

impl std::fmt::Display for LoopClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LoopClass::AType => "A",
            LoopClass::RType => "R",
            LoopClass::CType => "C",
            LoopClass::OType => "O",
        };
        f.write_str(s)
    }
}

impl LoopClass {
    /// True if the loop writes the array (A or C).
    pub fn writes(self) -> bool {
        matches!(self, LoopClass::AType | LoopClass::CType)
    }

    /// True if the loop reads the array (R or C).
    pub fn reads(self) -> bool {
        matches!(self, LoopClass::RType | LoopClass::CType)
    }
}

/// Classify loop `id` with respect to status array `array` (Figure 1).
pub fn classify(unit: &UnitIr, id: LoopId, array: &str) -> LoopClass {
    let info = unit.loop_info(id);
    match (
        info.assigned.contains(array),
        info.referenced.contains(array),
    ) {
        (true, true) => LoopClass::CType,
        (true, false) => LoopClass::AType,
        (false, true) => LoopClass::RType,
        (false, false) => LoopClass::OType,
    }
}

/// All status arrays for which loop `id` is A- or C-type (it writes them).
pub fn written_arrays(unit: &UnitIr, id: LoopId) -> Vec<String> {
    unit.loop_info(id).assigned.iter().cloned().collect()
}

/// All status arrays for which loop `id` is R- or C-type (it reads them).
pub fn read_arrays(unit: &UnitIr, id: LoopId) -> Vec<String> {
    unit.loop_info(id).referenced.iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_ir;
    use autocfd_fortran::parse;

    /// Figure 1 of the paper, transliterated: one loop of each type over
    /// status array `v`.
    const FIG1: &str = "
!$acf grid(20, 20)
!$acf status v, w
      program fig1
      real v(20,20), w(20,20)
      integer i, j
c     (a) A-type: assignment-only
      do i = 1, 20
        do j = 1, 20
          v(i,j) = 1.0
        end do
      end do
c     (b) R-type: reference-only
      do i = 2, 19
        do j = 2, 19
          w(i,j) = v(i-1,j) + v(i+1,j)
        end do
      end do
c     (c) C-type: combined
      do i = 2, 19
        do j = 2, 19
          v(i,j) = v(i-1,j-1) * 0.5
        end do
      end do
c     (d) O-type: unrelated
      do i = 1, 20
        do j = 1, 20
          w(i,j) = 0.0
        end do
      end do
      end
";

    #[test]
    fn classify_fig1_all_four_types() {
        let p = build_ir(parse(FIG1).unwrap()).unwrap();
        let u = &p.units[0];
        let roots: Vec<_> = u.root_loops.clone();
        assert_eq!(roots.len(), 4);
        assert_eq!(classify(u, roots[0], "v"), LoopClass::AType);
        assert_eq!(classify(u, roots[1], "v"), LoopClass::RType);
        assert_eq!(classify(u, roots[2], "v"), LoopClass::CType);
        assert_eq!(classify(u, roots[3], "v"), LoopClass::OType);
    }

    #[test]
    fn classification_is_per_array() {
        let p = build_ir(parse(FIG1).unwrap()).unwrap();
        let u = &p.units[0];
        let roots = u.root_loops.clone();
        // loop (b) writes w while reading v
        assert_eq!(classify(u, roots[1], "w"), LoopClass::AType);
        // loop (d) is A-type for w, O-type for v
        assert_eq!(classify(u, roots[3], "w"), LoopClass::AType);
    }

    #[test]
    fn reads_writes_predicates() {
        assert!(LoopClass::AType.writes());
        assert!(!LoopClass::AType.reads());
        assert!(LoopClass::CType.writes());
        assert!(LoopClass::CType.reads());
        assert!(LoopClass::RType.reads());
        assert!(!LoopClass::OType.reads() && !LoopClass::OType.writes());
    }

    #[test]
    fn display_letters() {
        assert_eq!(LoopClass::AType.to_string(), "A");
        assert_eq!(LoopClass::OType.to_string(), "O");
    }

    #[test]
    fn written_read_arrays_lists() {
        let p = build_ir(parse(FIG1).unwrap()).unwrap();
        let u = &p.units[0];
        let roots = u.root_loops.clone();
        assert_eq!(written_arrays(u, roots[2]), vec!["v".to_string()]);
        assert_eq!(read_arrays(u, roots[1]), vec!["v".to_string()]);
    }
}
