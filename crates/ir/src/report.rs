//! Human-readable analysis reports (the `acfc --analysis` output).
//!
//! Renders the loop tree of every unit with its field-loop structure and
//! per-array A/R/C/O classification — the information the paper's §2–§4
//! analyses compute, in a form a user can check against their program.

use crate::classify::{classify, LoopClass};
use crate::model::{LoopId, ProgramIr, UnitIr};
use std::fmt::Write as _;

/// Render the analysis of one unit.
pub fn report_unit(ir: &ProgramIr, unit: &UnitIr) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "unit `{}`:", unit.name);
    if unit.loops.is_empty() {
        let _ = writeln!(out, "  (no loops)");
        return out;
    }
    for &root in &unit.root_loops {
        render_loop(ir, unit, root, 1, &mut out);
    }
    if !unit.calls.is_empty() {
        let callees: Vec<&str> = unit.calls.iter().map(|c| c.callee.as_str()).collect();
        let _ = writeln!(out, "  calls: {}", callees.join(", "));
    }
    out
}

fn render_loop(ir: &ProgramIr, unit: &UnitIr, id: LoopId, depth: usize, out: &mut String) {
    let info = unit.loop_info(id);
    let indent = "  ".repeat(depth);
    let var = if info.var.is_empty() {
        "while".to_string()
    } else {
        info.var.clone()
    };
    let mut tags = Vec::new();
    if info.is_field_root {
        tags.push("field loop".to_string());
    }
    // classification per status array that the loop touches
    let mut classes = Vec::new();
    for array in ir.status_arrays.keys() {
        let c = classify(unit, id, array);
        if c != LoopClass::OType {
            classes.push(format!("{c}({array})"));
        }
    }
    if !classes.is_empty() && (info.is_field_root || info.parent.is_none()) {
        tags.push(classes.join(" "));
    }
    let tag_str = if tags.is_empty() {
        String::new()
    } else {
        format!("  [{}]", tags.join("; "))
    };
    let _ = writeln!(
        out,
        "{indent}do {var}  (lines {}-{}){tag_str}",
        info.line_start, info.line_end
    );
    for &child in &info.children {
        render_loop(ir, unit, child, depth + 1, out);
    }
}

/// Render the analysis of the whole program.
pub fn report_program(ir: &ProgramIr) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "grid: {:?}; status arrays: {:?}",
        ir.grid_extents(),
        ir.status_arrays.keys().collect::<Vec<_>>()
    );
    for unit in &ir.units {
        out.push_str(&report_unit(ir, unit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_ir;
    use autocfd_fortran::parse;

    #[test]
    fn report_contains_loop_tree_and_classes() {
        let ir = build_ir(
            parse(
                "
!$acf grid(20,20)
!$acf status v, vn
      program p
      real v(20,20), vn(20,20)
      integer i, j, it
      do it = 1, 5
        do i = 2, 19
          do j = 2, 19
            vn(i,j) = v(i-1,j) + v(i+1,j)
          end do
        end do
      end do
      call helper(v)
      end
      subroutine helper(v)
      real v(20,20)
      v(1,1) = 0.0
      return
      end
",
            )
            .unwrap(),
        )
        .unwrap();
        let text = report_program(&ir);
        assert!(text.contains("unit `p`"));
        assert!(text.contains("do it"));
        assert!(text.contains("field loop"), "{text}");
        assert!(text.contains("A(vn)"), "{text}");
        assert!(text.contains("R(v)"), "{text}");
        assert!(text.contains("calls: helper"));
        assert!(text.contains("unit `helper`"));
        assert!(text.contains("(no loops)"));
    }

    #[test]
    fn report_shows_grid_and_arrays() {
        let ir = build_ir(
            parse(
                "
!$acf grid(10,10)
!$acf status w
      program p
      real w(10,10)
      w(1,1) = 0.0
      end
",
            )
            .unwrap(),
        )
        .unwrap();
        let text = report_program(&ir);
        assert!(text.contains("[10, 10]"));
        assert!(text.contains("\"w\""));
    }
}
