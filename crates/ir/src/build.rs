//! IR construction: AST + directives → [`ProgramIr`].

use crate::model::*;
use autocfd_fortran::ast::{self, Expr, LValue, SourceFile, Stmt, StmtKind};
use autocfd_fortran::error::{FortranError, Result};
use autocfd_fortran::{DirectiveSet, StmtId};
use std::collections::{BTreeMap, BTreeSet};

/// Fortran intrinsic functions recognized by the frontend; `name(args)`
/// with one of these names is a function call, never an array access.
pub const INTRINSICS: &[&str] = &[
    "abs", "max", "min", "sqrt", "exp", "log", "sin", "cos", "tan", "atan", "mod", "float", "real",
    "int", "nint", "sign", "amax1", "amin1", "dble", "iabs",
];

/// True if `name` is an intrinsic function.
pub fn is_intrinsic(name: &str) -> bool {
    INTRINSICS.contains(&name)
}

/// Build the program IR from a parsed source file.
///
/// Errors if required directives are missing or inconsistent (no `grid`
/// directive, a `status` array that is never declared, a mapping whose
/// rank disagrees with the declaration).
pub fn build_ir(file: SourceFile) -> Result<ProgramIr> {
    let directives = DirectiveSet::from_directives(&file.directives)?;
    let grid = directives
        .grid
        .clone()
        .ok_or_else(|| FortranError::directive(0, "missing `!$acf grid(...)` directive"))?;
    let grid_rank = grid.len();

    // ---- status-array table ------------------------------------------
    let mut status_arrays = BTreeMap::new();
    for decl in &directives.status {
        // Find the declaring unit (first declaration wins).
        let mut found = None;
        for unit in &file.units {
            if let Some(vd) = unit.decl_of(&decl.name) {
                if vd.dims.is_empty() {
                    return Err(FortranError::directive(
                        0,
                        format!("status array `{}` is declared as a scalar", decl.name),
                    ));
                }
                found = Some((unit, vd));
                break;
            }
        }
        let (unit, vd) = found.ok_or_else(|| {
            FortranError::directive(0, format!("status array `{}` is never declared", decl.name))
        })?;

        let params: BTreeMap<&str, i64> = unit
            .parameters()
            .filter_map(|(n, e)| e.const_int(&|_| None).map(|v| (n, v)))
            .collect();
        let lookup = |n: &str| params.get(n).copied();

        let extents: Vec<Option<i64>> = vd
            .dims
            .iter()
            .map(|d| {
                let hi = d.upper.const_int(&lookup)?;
                let lo = d.lower.as_ref().map_or(Some(1), |e| e.const_int(&lookup))?;
                Some(hi - lo + 1)
            })
            .collect();
        let lower_bounds: Vec<i64> = vd
            .dims
            .iter()
            .map(|d| {
                d.lower
                    .as_ref()
                    .and_then(|e| e.const_int(&lookup))
                    .unwrap_or(1)
            })
            .collect();

        let dim_axis = match &decl.mapping {
            Some(m) => {
                if m.len() != vd.dims.len() {
                    return Err(FortranError::directive(
                        0,
                        format!(
                            "status mapping for `{}` has {} dims but declaration has {}",
                            decl.name,
                            m.len(),
                            vd.dims.len()
                        ),
                    ));
                }
                StatusArrayInfo::mapping_from_directive(m)
            }
            None => StatusArrayInfo::default_mapping(vd.dims.len(), grid_rank),
        };

        status_arrays.insert(
            decl.name.clone(),
            StatusArrayInfo {
                name: decl.name.clone(),
                extents,
                lower_bounds,
                dim_axis,
            },
        );
    }

    // ---- per-unit IR ---------------------------------------------------
    let unit_names: BTreeSet<String> = file.units.iter().map(|u| u.name.clone()).collect();
    let units: Vec<UnitIr> = file
        .units
        .iter()
        .map(|u| UnitBuilder::new(&status_arrays, &unit_names).build(u))
        .collect();

    check_status_array_aliasing(&file, &status_arrays)?;

    Ok(ProgramIr {
        file,
        directives,
        status_arrays,
        units,
    })
}

/// Enforce the name-preservation convention the interprocedural analysis
/// relies on: a status array passed to a subroutine/function must bind a
/// dummy argument of the *same name*. Renaming would make the callee's
/// accesses invisible to the dependency analysis (unsound), so it is a
/// compile-time error.
fn check_status_array_aliasing(
    file: &SourceFile,
    status_arrays: &BTreeMap<String, StatusArrayInfo>,
) -> Result<()> {
    for unit in &file.units {
        let mut err: Option<FortranError> = None;
        ast::walk_stmts(&unit.body, &mut |s| {
            if err.is_some() {
                return;
            }
            let (callee, args) = match &s.kind {
                StmtKind::Call { name, args } => (name, args),
                _ => return,
            };
            let Some(target) = file.unit(callee) else {
                return;
            };
            for (pos, arg) in args.iter().enumerate() {
                if let Expr::Var(n) = arg {
                    if status_arrays.contains_key(n) {
                        match target.params.get(pos) {
                            Some(dummy) if dummy == n => {}
                            Some(dummy) => {
                                err = Some(FortranError::parse(
                                    s.line,
                                    format!(
                                        "status array `{n}` passed to `{callee}` as dummy \
                                         `{dummy}`: status arrays must keep their names \
                                         across units (rename the dummy argument)"
                                    ),
                                ));
                                return;
                            }
                            None => {}
                        }
                    }
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(())
}

struct UnitBuilder<'a> {
    status: &'a BTreeMap<String, StatusArrayInfo>,
    unit_names: &'a BTreeSet<String>,
    loops: Vec<LoopInfo>,
    root_loops: Vec<LoopId>,
    accesses: Vec<ArrayAccess>,
    calls: Vec<CallSite>,
    stmt_order: BTreeMap<StmtId, usize>,
    stmt_line: BTreeMap<StmtId, u32>,
    stmt_loop: BTreeMap<StmtId, Option<LoopId>>,
    do_stmt_loop: BTreeMap<StmtId, LoopId>,
    loop_stack: Vec<LoopId>,
    order: usize,
}

impl<'a> UnitBuilder<'a> {
    fn new(
        status: &'a BTreeMap<String, StatusArrayInfo>,
        unit_names: &'a BTreeSet<String>,
    ) -> Self {
        Self {
            status,
            unit_names,
            loops: Vec::new(),
            root_loops: Vec::new(),
            accesses: Vec::new(),
            calls: Vec::new(),
            stmt_order: BTreeMap::new(),
            stmt_line: BTreeMap::new(),
            stmt_loop: BTreeMap::new(),
            do_stmt_loop: BTreeMap::new(),
            loop_stack: Vec::new(),
            order: 0,
        }
    }

    fn build(mut self, unit: &ast::Unit) -> UnitIr {
        self.visit_stmts(&unit.body);
        self.finalize();
        UnitIr {
            name: unit.name.clone(),
            loops: self.loops,
            root_loops: self.root_loops,
            accesses: self.accesses,
            calls: self.calls,
            stmt_order: self.stmt_order,
            stmt_line: self.stmt_line,
            stmt_loop: self.stmt_loop,
            do_stmt_loop: self.do_stmt_loop,
        }
    }

    fn current_loop(&self) -> Option<LoopId> {
        self.loop_stack.last().copied()
    }

    fn loop_vars(&self) -> BTreeSet<&str> {
        self.loop_stack
            .iter()
            .map(|id| self.loops[id.0 as usize].var.as_str())
            .filter(|v| !v.is_empty())
            .collect()
    }

    fn visit_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.visit_stmt(s);
        }
    }

    fn note_stmt(&mut self, s: &Stmt) {
        self.stmt_order.insert(s.id, self.order);
        self.order += 1;
        self.stmt_line.insert(s.id, s.line);
        self.stmt_loop.insert(s.id, self.current_loop());
    }

    fn visit_stmt(&mut self, s: &Stmt) {
        self.note_stmt(s);
        match &s.kind {
            StmtKind::Do {
                var,
                from,
                to,
                step,
                body,
                ..
            } => {
                self.visit_expr_refs(s, from);
                self.visit_expr_refs(s, to);
                if let Some(e) = step {
                    self.visit_expr_refs(s, e);
                }
                self.enter_loop(s, var.clone(), body);
            }
            StmtKind::DoWhile { cond, body } => {
                self.visit_expr_refs(s, cond);
                self.enter_loop(s, String::new(), body);
            }
            StmtKind::If {
                cond,
                then,
                else_ifs,
                els,
            } => {
                self.visit_expr_refs(s, cond);
                self.visit_stmts(then);
                for (c, body) in else_ifs {
                    self.visit_expr_refs(s, c);
                    self.visit_stmts(body);
                }
                if let Some(body) = els {
                    self.visit_stmts(body);
                }
            }
            StmtKind::LogicalIf { cond, stmt } => {
                self.visit_expr_refs(s, cond);
                self.visit_stmt(stmt);
            }
            StmtKind::Assign { target, value } => {
                self.visit_lvalue_assign(s, target);
                self.visit_expr_refs(s, value);
            }
            StmtKind::Call { name, args } => {
                self.calls.push(CallSite {
                    stmt: s.id,
                    line: s.line,
                    callee: name.clone(),
                    loop_id: self.current_loop(),
                });
                for a in args {
                    self.visit_expr_refs(s, a);
                }
            }
            StmtKind::Read { items, .. } => {
                // Reading into a status array is an assignment to it
                // (§3: the restructurer must modify read statements).
                for lv in items {
                    self.visit_lvalue_assign(s, lv);
                }
            }
            StmtKind::Write { items, .. } => {
                for e in items {
                    self.visit_expr_refs(s, e);
                }
            }
            StmtKind::Goto { .. } | StmtKind::Continue | StmtKind::Return | StmtKind::Stop => {}
        }
    }

    fn enter_loop(&mut self, s: &Stmt, var: String, body: &[Stmt]) {
        let id = LoopId(self.loops.len() as u32);
        let parent = self.current_loop();
        let depth = self.loop_stack.len();
        self.loops.push(LoopInfo {
            id,
            stmt: s.id,
            var,
            parent,
            children: Vec::new(),
            depth,
            line_start: s.line,
            line_end: s.line,
            assigned: BTreeSet::new(),
            referenced: BTreeSet::new(),
            indexes_status_dim: false,
            is_field_root: false,
        });
        self.do_stmt_loop.insert(s.id, id);
        match parent {
            Some(p) => self.loops[p.0 as usize].children.push(id),
            None => self.root_loops.push(id),
        }
        self.loop_stack.push(id);
        self.visit_stmts(body);
        self.loop_stack.pop();

        // line_end = max line seen inside
        let mut max_line = s.line;
        ast::walk_stmts(body, &mut |st| max_line = max_line.max(st.line));
        self.loops[id.0 as usize].line_end = max_line;
    }

    fn visit_lvalue_assign(&mut self, s: &Stmt, lv: &LValue) {
        if self.status.contains_key(&lv.name) {
            let patterns = self.decode_indices(&lv.indices);
            self.push_access(s, &lv.name, true, patterns);
        }
        // subscripts of the target are themselves references
        for e in &lv.indices {
            self.visit_expr_refs(s, e);
        }
    }

    fn visit_expr_refs(&mut self, s: &Stmt, e: &Expr) {
        match e {
            Expr::Index { name, indices } => {
                if self.status.contains_key(name) {
                    let patterns = self.decode_indices(indices);
                    self.push_access(s, name, false, patterns);
                } else if !is_intrinsic(name) && !self.unit_names.contains(name) {
                    // Unknown indexed name: a non-status array; harmless.
                }
                for i in indices {
                    self.visit_expr_refs(s, i);
                }
            }
            Expr::Var(name) if self.status.contains_key(name) => {
                // Whole-array reference (e.g. passed to a call).
                let rank = self.status[name].dim_axis.len();
                self.push_access(s, name, false, vec![IndexPattern::Other; rank]);
            }
            Expr::Bin { lhs, rhs, .. } => {
                self.visit_expr_refs(s, lhs);
                self.visit_expr_refs(s, rhs);
            }
            Expr::Un { expr, .. } => self.visit_expr_refs(s, expr),
            _ => {}
        }
    }

    fn push_access(&mut self, s: &Stmt, array: &str, is_assign: bool, patterns: Vec<IndexPattern>) {
        self.accesses.push(ArrayAccess {
            stmt: s.id,
            line: s.line,
            loop_id: self.current_loop(),
            array: array.to_string(),
            is_assign,
            patterns,
        });
    }

    /// Decode subscripts against the current loop-variable stack.
    fn decode_indices(&self, indices: &[Expr]) -> Vec<IndexPattern> {
        let vars = self.loop_vars();
        indices.iter().map(|e| decode_index(e, &vars)).collect()
    }

    /// After the walk: aggregate per-loop assigned/referenced sets,
    /// detect status-dimension indexing, and mark field roots.
    fn finalize(&mut self) {
        // assigned/referenced aggregation: every access contributes to all
        // enclosing loops.
        let accesses = std::mem::take(&mut self.accesses);
        for a in &accesses {
            let mut cur = a.loop_id;
            while let Some(id) = cur {
                let info = &mut self.loops[id.0 as usize];
                if a.is_assign {
                    info.assigned.insert(a.array.clone());
                } else {
                    info.referenced.insert(a.array.clone());
                }
                cur = info.parent;
            }
        }
        // indexes_status_dim: loop var appears in a status dimension of
        // some access inside the loop.
        for li in 0..self.loops.len() {
            let var = self.loops[li].var.clone();
            if var.is_empty() {
                continue;
            }
            let id = LoopId(li as u32);
            let hit = accesses.iter().any(|a| {
                let in_nest = a.loop_id.is_some_and(|l| self.loop_is_in(l, id));
                in_nest
                    && a.patterns.iter().enumerate().any(|(d, p)| {
                        matches!(p, IndexPattern::LoopVar { var: v, .. } if *v == var)
                            && self
                                .status
                                .get(&a.array)
                                .and_then(|s| s.dim_axis.get(d))
                                .is_some_and(|ax| ax.is_some())
                    })
            });
            self.loops[li].indexes_status_dim = hit;
        }
        // field roots: indexes status dims and no ancestor does.
        for li in 0..self.loops.len() {
            if !self.loops[li].indexes_status_dim {
                continue;
            }
            let mut anc = self.loops[li].parent;
            let mut ancestor_indexes = false;
            while let Some(p) = anc {
                if self.loops[p.0 as usize].indexes_status_dim {
                    ancestor_indexes = true;
                    break;
                }
                anc = self.loops[p.0 as usize].parent;
            }
            self.loops[li].is_field_root = !ancestor_indexes;
        }
        self.accesses = accesses;
    }

    fn loop_is_in(&self, inner: LoopId, outer: LoopId) -> bool {
        let mut cur = Some(inner);
        while let Some(c) = cur {
            if c == outer {
                return true;
            }
            cur = self.loops[c.0 as usize].parent;
        }
        false
    }
}

/// Decode one subscript expression against the set of enclosing loop
/// variables.
pub fn decode_index(e: &Expr, loop_vars: &BTreeSet<&str>) -> IndexPattern {
    match e {
        Expr::IntLit(v) => IndexPattern::Constant(*v),
        Expr::Var(n) => {
            if loop_vars.contains(n.as_str()) {
                IndexPattern::LoopVar {
                    var: n.clone(),
                    offset: 0,
                }
            } else {
                IndexPattern::Scalar(n.clone())
            }
        }
        Expr::Bin { op, lhs, rhs } => {
            use autocfd_fortran::BinOp;
            let sign = match op {
                BinOp::Add => 1,
                BinOp::Sub => -1,
                _ => return IndexPattern::Other,
            };
            match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Var(n), Expr::IntLit(c)) if loop_vars.contains(n.as_str()) => {
                    IndexPattern::LoopVar {
                        var: n.clone(),
                        offset: sign * c,
                    }
                }
                (Expr::IntLit(c), Expr::Var(n))
                    if *op == BinOp::Add && loop_vars.contains(n.as_str()) =>
                {
                    IndexPattern::LoopVar {
                        var: n.clone(),
                        offset: *c,
                    }
                }
                _ => IndexPattern::Other,
            }
        }
        _ => IndexPattern::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocfd_fortran::parse;

    fn ir(src: &str) -> ProgramIr {
        build_ir(parse(src).expect("parse")).expect("build_ir")
    }

    const JACOBI: &str = "
!$acf grid(100, 100)
!$acf status v, vn
      program jacobi
      real v(100,100), vn(100,100)
      integer i, j, it
      do it = 1, 50
        do i = 2, 99
          do j = 2, 99
            vn(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
          end do
        end do
        do i = 2, 99
          do j = 2, 99
            v(i,j) = vn(i,j)
          end do
        end do
      end do
      end
";

    #[test]
    fn status_array_table() {
        let p = ir(JACOBI);
        assert_eq!(p.status_arrays.len(), 2);
        let v = &p.status_arrays["v"];
        assert_eq!(v.extents, vec![Some(100), Some(100)]);
        assert_eq!(v.dim_axis, vec![Some(0), Some(1)]);
    }

    #[test]
    fn missing_grid_directive_errors() {
        let r = build_ir(parse("      program p\n      x = 1\n      end\n").unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn undeclared_status_array_errors() {
        let src =
            "!$acf grid(10,10)\n!$acf status ghost\n      program p\n      x = 1\n      end\n";
        assert!(build_ir(parse(src).unwrap()).is_err());
    }

    #[test]
    fn scalar_status_array_errors() {
        let src = "!$acf grid(10,10)\n!$acf status x\n      program p\n      real x\n      x = 1.0\n      end\n";
        assert!(build_ir(parse(src).unwrap()).is_err());
    }

    #[test]
    fn loop_tree_shape() {
        let p = ir(JACOBI);
        let u = &p.units[0];
        // loops: it, i, j, i, j
        assert_eq!(u.loops.len(), 5);
        assert_eq!(u.root_loops.len(), 1);
        let it = u.loop_info(u.root_loops[0]);
        assert_eq!(it.var, "it");
        assert_eq!(it.children.len(), 2);
        assert_eq!(it.depth, 0);
        let i1 = u.loop_info(it.children[0]);
        assert_eq!(i1.var, "i");
        assert_eq!(i1.depth, 1);
    }

    #[test]
    fn field_roots_are_sweep_outermosts() {
        let p = ir(JACOBI);
        let u = &p.units[0];
        let roots: Vec<&LoopInfo> = u.field_roots().collect();
        // the two i-loops are field roots; the it-loop and j-loops are not
        assert_eq!(roots.len(), 2);
        assert!(roots.iter().all(|l| l.var == "i"));
        let it = u.loop_info(u.root_loops[0]);
        assert!(!it.is_field_root);
        assert!(!it.indexes_status_dim);
    }

    #[test]
    fn assigned_and_referenced_sets() {
        let p = ir(JACOBI);
        let u = &p.units[0];
        let sweep1 = u.loop_info(u.loop_info(u.root_loops[0]).children[0]);
        assert!(sweep1.assigned.contains("vn"));
        assert!(sweep1.referenced.contains("v"));
        assert!(!sweep1.assigned.contains("v"));
        let sweep2 = u.loop_info(u.loop_info(u.root_loops[0]).children[1]);
        assert!(sweep2.assigned.contains("v"));
        assert!(sweep2.referenced.contains("vn"));
    }

    #[test]
    fn access_patterns_decode_stencil() {
        let p = ir(JACOBI);
        let u = &p.units[0];
        let refs: Vec<&ArrayAccess> = u
            .accesses
            .iter()
            .filter(|a| a.array == "v" && !a.is_assign)
            .collect();
        // v(i-1,j) v(i+1,j) v(i,j-1) v(i,j+1) and v(i,j) (copy loop ref? no,
        // copy loop assigns v and references vn) — so 4 references.
        assert_eq!(refs.len(), 4);
        let offsets: BTreeSet<(i64, i64)> = refs
            .iter()
            .map(|a| {
                (
                    a.patterns[0].offset().unwrap(),
                    a.patterns[1].offset().unwrap(),
                )
            })
            .collect();
        assert_eq!(offsets, BTreeSet::from([(-1, 0), (1, 0), (0, -1), (0, 1)]));
    }

    #[test]
    fn read_into_status_array_is_assignment() {
        let src = "
!$acf grid(10,10)
!$acf status v
      program p
      real v(10,10)
      read(5,*) v(1,1)
      end
";
        let p = ir(src);
        let a = &p.units[0].accesses[0];
        assert!(a.is_assign);
        assert_eq!(
            a.patterns,
            vec![IndexPattern::Constant(1), IndexPattern::Constant(1)]
        );
    }

    #[test]
    fn whole_array_call_arg_is_reference() {
        let src = "
!$acf grid(10,10)
!$acf status v
      program p
      real v(10,10)
      call init(v, 10)
      end
      subroutine init(v, n)
      integer n
      real v(n,n)
      return
      end
";
        let p = ir(src);
        let u = &p.units[0];
        assert_eq!(u.calls.len(), 1);
        assert_eq!(u.calls[0].callee, "init");
        assert!(u.accesses.iter().any(|a| a.array == "v" && !a.is_assign));
    }

    #[test]
    fn intrinsic_not_treated_as_array() {
        let src = "
!$acf grid(10,10)
!$acf status v
      program p
      real v(10,10)
      v(1,1) = abs(x) + max(a, b)
      end
";
        let p = ir(src);
        // only the assignment access to v
        assert_eq!(p.units[0].accesses.len(), 1);
    }

    #[test]
    fn packed_dimension_mapping() {
        let src = "
!$acf grid(50, 20)
!$acf status q(*, i, j)
      program p
      real q(5, 50, 20)
      integer i, j, m
      do m = 1, 5
        do i = 2, 49
          do j = 2, 19
            q(m, i, j) = q(m, i-1, j)
          end do
        end do
      end do
      end
";
        let p = ir(src);
        let q = &p.status_arrays["q"];
        assert_eq!(q.dim_axis, vec![None, Some(0), Some(1)]);
        let u = &p.units[0];
        // the m-loop does not index a status dim, i and j loops do
        let m = u.loop_info(u.root_loops[0]);
        assert!(
            !m.indexes_status_dim,
            "packed dim must not make m a field loop"
        );
        // field root is the i-loop
        let roots: Vec<&LoopInfo> = u.field_roots().collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].var, "i");
    }

    #[test]
    fn mapping_rank_mismatch_errors() {
        let src = "
!$acf grid(10,10)
!$acf status q(i, j)
      program p
      real q(5, 10, 10)
      q(1,1,1) = 0.0
      end
";
        assert!(build_ir(parse(src).unwrap()).is_err());
    }

    #[test]
    fn dependency_distance_two_decodes() {
        let src = "
!$acf grid(40, 40)
!$acf status v
      program p
      real v(40,40)
      integer i, j
      do i = 3, 38
        do j = 1, 40
          v(i,j) = v(i-2,j)
        end do
      end do
      end
";
        let p = ir(src);
        let r = p.units[0].accesses.iter().find(|a| !a.is_assign).unwrap();
        assert_eq!(
            r.patterns[0],
            IndexPattern::LoopVar {
                var: "i".into(),
                offset: -2
            }
        );
    }

    #[test]
    fn status_array_renaming_rejected() {
        let src = "
!$acf grid(10,10)
!$acf status v
      program p
      real v(10,10)
      call init(v, 10)
      end
      subroutine init(a, n)
      integer n
      real a(n,n)
      return
      end
";
        let e = build_ir(parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("must keep their names"), "{e}");
    }

    #[test]
    fn non_status_array_renaming_allowed() {
        let src = "
!$acf grid(10,10)
!$acf status v
      program p
      real v(10,10), work(10)
      v(1,1) = 0.0
      call init(work, 10)
      end
      subroutine init(a, n)
      integer n
      real a(n)
      return
      end
";
        assert!(build_ir(parse(src).unwrap()).is_ok());
    }

    #[test]
    fn stmt_order_is_preorder() {
        let p = ir(JACOBI);
        let u = &p.units[0];
        let orders: Vec<usize> = u.stmt_order.values().copied().collect();
        let mut sorted = orders.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), orders.len());
    }

    #[test]
    fn boundary_constant_subscripts() {
        let src = "
!$acf grid(30, 30)
!$acf status v
      program p
      real v(30,30)
      integer j
      do j = 1, 30
        v(1,j) = 0.0
        v(30,j) = 1.0
      end do
      end
";
        let p = ir(src);
        let u = &p.units[0];
        let assigns: Vec<&ArrayAccess> = u.accesses.iter().filter(|a| a.is_assign).collect();
        assert_eq!(assigns.len(), 2);
        assert_eq!(assigns[0].patterns[0], IndexPattern::Constant(1));
        assert_eq!(assigns[1].patterns[0], IndexPattern::Constant(30));
    }

    #[test]
    fn scalar_subscript_pattern() {
        let src = "
!$acf grid(10,10)
!$acf status v
      program p
      real v(10,10)
      integer n
      n = 5
      v(n, 1) = 2.0
      end
";
        let p = ir(src);
        let a = p.units[0].accesses.iter().find(|a| a.is_assign).unwrap();
        assert_eq!(a.patterns[0], IndexPattern::Scalar("n".into()));
    }
}
