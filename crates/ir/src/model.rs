//! IR data model.

use autocfd_fortran::directive::DimMap;
use autocfd_fortran::{DirectiveSet, SourceFile, StmtId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a loop within one unit's loop table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LoopId(pub u32);

impl std::fmt::Display for LoopId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// How a subscript expression relates to the enclosing loop nest.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexPattern {
    /// `var + offset` where `var` is an enclosing loop's induction
    /// variable (offset may be 0 or negative): the regular stencil case.
    LoopVar {
        /// Induction-variable name.
        var: String,
        /// Constant offset (…, -1, 0, 1, …) — the *dependency distance*
        /// direction/magnitude of §4.2 case 5.
        offset: i64,
    },
    /// A compile-time constant subscript (boundary code, §4.2 case 3).
    Constant(i64),
    /// A scalar variable that is not an enclosing induction variable
    /// (e.g. packed-dimension selectors, §4.2 case 4).
    Scalar(String),
    /// Anything more complex (indirect indexing, products, …).
    Other,
}

impl IndexPattern {
    /// The stencil offset if this is a `LoopVar` pattern.
    pub fn offset(&self) -> Option<i64> {
        match self {
            IndexPattern::LoopVar { offset, .. } => Some(*offset),
            _ => None,
        }
    }
}

/// One read or write of a status array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayAccess {
    /// Statement containing the access.
    pub stmt: StmtId,
    /// Source line of that statement.
    pub line: u32,
    /// Innermost enclosing loop, if any.
    pub loop_id: Option<LoopId>,
    /// Status-array name.
    pub array: String,
    /// True for the assignment target, false for references.
    pub is_assign: bool,
    /// Decoded subscripts, one per array dimension.
    pub patterns: Vec<IndexPattern>,
}

/// A `call` statement site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallSite {
    /// The call statement.
    pub stmt: StmtId,
    /// Source line.
    pub line: u32,
    /// Callee (lower-cased).
    pub callee: String,
    /// Innermost enclosing loop, if any.
    pub loop_id: Option<LoopId>,
}

/// Everything known about one loop (a `do` or `do while` statement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopInfo {
    /// This loop's id.
    pub id: LoopId,
    /// The `do` statement's id.
    pub stmt: StmtId,
    /// Induction variable (empty for `do while`).
    pub var: String,
    /// Enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Direct inner loops, in source order.
    pub children: Vec<LoopId>,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// First source line of the loop (the `do` line).
    pub line_start: u32,
    /// Last source line of the loop body.
    pub line_end: u32,
    /// Status arrays assigned anywhere in this loop's nest (inclusive).
    pub assigned: BTreeSet<String>,
    /// Status arrays referenced anywhere in this loop's nest (inclusive).
    pub referenced: BTreeSet<String>,
    /// True if this loop's own induction variable subscripts a status
    /// dimension of some status array inside its body.
    pub indexes_status_dim: bool,
    /// True if this is a *field loop root*: it indexes a status dimension
    /// and no enclosing loop does (the paper's unit of analysis — a whole
    /// grid sweep such as a `do i … do j …` nest).
    pub is_field_root: bool,
}

/// Metadata for one status array (grid-state array, §2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusArrayInfo {
    /// Array name.
    pub name: String,
    /// Declared dimension extents, resolved to constants where possible
    /// (per unit of first declaration).
    pub extents: Vec<Option<i64>>,
    /// Declared lower bounds (default 1).
    pub lower_bounds: Vec<i64>,
    /// Per-dimension mapping onto grid axes; `dim_axis[d] = Some(a)` means
    /// array dimension `d` spans grid axis `a`; `None` marks a packed /
    /// extended dimension (§4.2 case 4).
    pub dim_axis: Vec<Option<usize>>,
}

impl StatusArrayInfo {
    /// The array dimension that spans grid `axis`, if any.
    pub fn dim_of_axis(&self, axis: usize) -> Option<usize> {
        self.dim_axis.iter().position(|a| *a == Some(axis))
    }

    /// Number of status (grid-mapped) dimensions.
    pub fn status_dim_count(&self) -> usize {
        self.dim_axis.iter().filter(|a| a.is_some()).count()
    }

    /// Build the default in-order mapping for an array of `ndims`
    /// dimensions against a `grid_rank`-dimensional flow field.
    pub fn default_mapping(ndims: usize, grid_rank: usize) -> Vec<Option<usize>> {
        (0..ndims).map(|d| (d < grid_rank).then_some(d)).collect()
    }

    /// Apply a `!$acf status v(i,j,*)`-style mapping.
    pub fn mapping_from_directive(mapping: &[DimMap]) -> Vec<Option<usize>> {
        mapping
            .iter()
            .map(|m| match m {
                DimMap::Axis(a) => Some(*a),
                DimMap::Packed => None,
            })
            .collect()
    }
}

/// IR for one program unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitIr {
    /// Unit name.
    pub name: String,
    /// Loop table (index = `LoopId.0`).
    pub loops: Vec<LoopInfo>,
    /// Top-level loops of the unit body, in source order.
    pub root_loops: Vec<LoopId>,
    /// All status-array accesses in this unit.
    pub accesses: Vec<ArrayAccess>,
    /// All call sites in this unit.
    pub calls: Vec<CallSite>,
    /// Program-order index of every statement (pre-order).
    pub stmt_order: BTreeMap<StmtId, usize>,
    /// Source line of every statement.
    pub stmt_line: BTreeMap<StmtId, u32>,
    /// Innermost enclosing loop of every statement (if any).
    pub stmt_loop: BTreeMap<StmtId, Option<LoopId>>,
    /// Map from a `do` statement's id to its loop id.
    pub do_stmt_loop: BTreeMap<StmtId, LoopId>,
}

impl UnitIr {
    /// Lookup a loop.
    pub fn loop_info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.0 as usize]
    }

    /// Iterate over all field-root loops.
    pub fn field_roots(&self) -> impl Iterator<Item = &LoopInfo> {
        self.loops.iter().filter(|l| l.is_field_root)
    }

    /// The field-root loop enclosing (or equal to) `id`.
    pub fn field_root_of(&self, id: LoopId) -> Option<LoopId> {
        let mut cur = Some(id);
        let mut found = None;
        while let Some(c) = cur {
            if self.loop_info(c).is_field_root {
                found = Some(c);
            }
            cur = self.loop_info(c).parent;
        }
        found
    }

    /// Accesses to `array` within loop `id`'s nest (inclusive).
    pub fn accesses_in_loop<'a>(
        &'a self,
        id: LoopId,
        array: &'a str,
    ) -> impl Iterator<Item = &'a ArrayAccess> {
        self.accesses.iter().filter(move |a| {
            a.array == array && a.loop_id.map(|l| self.is_in_loop(l, id)).unwrap_or(false)
        })
    }

    /// True if loop `inner` is `outer` or nested (at any depth) inside it.
    pub fn is_in_loop(&self, inner: LoopId, outer: LoopId) -> bool {
        let mut cur = Some(inner);
        while let Some(c) = cur {
            if c == outer {
                return true;
            }
            cur = self.loop_info(c).parent;
        }
        false
    }
}

/// IR for a whole program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramIr {
    /// The original AST (edited later by the restructurer).
    pub file: SourceFile,
    /// Aggregated `!$acf` directives.
    pub directives: DirectiveSet,
    /// Status-array metadata, keyed by name.
    pub status_arrays: BTreeMap<String, StatusArrayInfo>,
    /// Per-unit IR, parallel to `file.units`.
    pub units: Vec<UnitIr>,
}

impl ProgramIr {
    /// The grid rank (2 or 3) from the `grid` directive.
    pub fn grid_rank(&self) -> usize {
        self.directives.grid.as_ref().map_or(0, |g| g.len())
    }

    /// Grid extents from the `grid` directive.
    pub fn grid_extents(&self) -> Vec<u64> {
        self.directives.grid.clone().unwrap_or_default()
    }

    /// Find a unit's IR by name.
    pub fn unit(&self, name: &str) -> Option<&UnitIr> {
        self.units.iter().find(|u| u.name == name)
    }

    /// True if `name` is a declared status array.
    pub fn is_status_array(&self, name: &str) -> bool {
        self.status_arrays.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_pattern_offset() {
        let p = IndexPattern::LoopVar {
            var: "i".into(),
            offset: -1,
        };
        assert_eq!(p.offset(), Some(-1));
        assert_eq!(IndexPattern::Constant(5).offset(), None);
        assert_eq!(IndexPattern::Other.offset(), None);
    }

    #[test]
    fn default_mapping_in_order() {
        assert_eq!(
            StatusArrayInfo::default_mapping(3, 3),
            vec![Some(0), Some(1), Some(2)]
        );
        // 4-dim array over a 3-d grid: trailing dim is packed
        assert_eq!(
            StatusArrayInfo::default_mapping(4, 3),
            vec![Some(0), Some(1), Some(2), None]
        );
        // 2-dim array over 2-d grid
        assert_eq!(
            StatusArrayInfo::default_mapping(2, 2),
            vec![Some(0), Some(1)]
        );
    }

    #[test]
    fn mapping_from_directive() {
        use autocfd_fortran::directive::DimMap;
        assert_eq!(
            StatusArrayInfo::mapping_from_directive(&[
                DimMap::Packed,
                DimMap::Axis(0),
                DimMap::Axis(1)
            ]),
            vec![None, Some(0), Some(1)]
        );
    }

    #[test]
    fn dim_of_axis() {
        let info = StatusArrayInfo {
            name: "q".into(),
            extents: vec![Some(5), Some(100), Some(40)],
            lower_bounds: vec![1, 1, 1],
            dim_axis: vec![None, Some(0), Some(1)],
        };
        assert_eq!(info.dim_of_axis(0), Some(1));
        assert_eq!(info.dim_of_axis(1), Some(2));
        assert_eq!(info.dim_of_axis(2), None);
        assert_eq!(info.status_dim_count(), 2);
    }
}
