//! Cross-validation of the cost model against measured traces.
//!
//! The cost model predicts what a phase *should* do (messages, bytes,
//! time); the execution trace records what it *did*. This module holds
//! the small comparison vocabulary shared by the `acfc stats`
//! cross-validation table and the model-validation benches: a relative
//! error, and a labelled predicted-vs-measured pair with a tolerance
//! verdict.

/// Relative error of `measured` against `predicted`:
/// `|measured − predicted| / max(|predicted|, ε)`. When both values are
/// zero the error is zero (a perfect prediction of "nothing happens").
pub fn relative_error(predicted: f64, measured: f64) -> f64 {
    if predicted == 0.0 && measured == 0.0 {
        return 0.0;
    }
    (measured - predicted).abs() / predicted.abs().max(f64::EPSILON)
}

/// One predicted-vs-measured quantity with a tolerance verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// What is being compared (e.g. `"sync_3 payload bytes"`).
    pub label: String,
    /// The model's prediction.
    pub predicted: f64,
    /// The traced measurement.
    pub measured: f64,
    /// Maximum relative error accepted as agreement.
    pub tolerance: f64,
}

impl Comparison {
    /// Relative error of this comparison.
    pub fn error(&self) -> f64 {
        relative_error(self.predicted, self.measured)
    }

    /// Whether the measurement agrees with the prediction within the
    /// tolerance.
    pub fn within_tolerance(&self) -> bool {
        self.error() <= self.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(100.0, 100.0), 0.0);
        assert!((relative_error(100.0, 110.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(100.0, 90.0) - 0.1).abs() < 1e-12);
        // zero prediction with a nonzero measurement is a huge error
        assert!(relative_error(0.0, 1.0) > 1e10);
    }

    #[test]
    fn comparison_verdicts() {
        let ok = Comparison {
            label: "sync_0 bytes".into(),
            predicted: 1000.0,
            measured: 1040.0,
            tolerance: 0.05,
        };
        assert!(ok.within_tolerance());
        let off = Comparison {
            tolerance: 0.01,
            ..ok.clone()
        };
        assert!(!off.within_tolerance());
        assert!((off.error() - 0.04).abs() < 1e-12);
    }
}
