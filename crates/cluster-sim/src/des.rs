//! Discrete-event simulation of SPMD executions.
//!
//! The closed-form phase model in the crate root is convenient but
//! coarse: it assumes phases are globally synchronous. This module
//! simulates the *actual event structure* — per-rank virtual clocks,
//! point-to-point messages with latency/bandwidth delivery times, FIFO
//! matching, blocking receives, collectives — so the phase model's
//! predictions can be cross-validated (see the `des_matches_closed_form`
//! tests) and pipeline skew can be observed directly rather than
//! approximated by an `overlap` coefficient.
//!
//! A rank's behaviour is a straight-line [`Action`] program; the
//! simulator advances clocks until every program completes, detecting
//! deadlock (no runnable rank) instead of hanging.

use crate::NetworkModel;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One step of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Compute for this many seconds.
    Compute(f64),
    /// Send `bytes` to rank `to` (buffered; the sender pays the software
    /// latency, the wire adds transfer time to the delivery).
    Send {
        /// Destination rank.
        to: usize,
        /// Payload size.
        bytes: u64,
    },
    /// Block until the next FIFO message from `from` arrives.
    Recv {
        /// Source rank.
        from: usize,
    },
    /// Block until all ranks reach this point.
    Barrier,
}

/// Result of a DES run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesResult {
    /// Per-rank completion times.
    pub finish: Vec<f64>,
    /// Makespan (max finish).
    pub makespan: f64,
    /// Per-rank total blocked (waiting) time.
    pub blocked: Vec<f64>,
}

/// Why a DES run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesError {
    /// No rank can make progress: a receive waits for a message that is
    /// never sent (or a barrier some rank never reaches).
    Deadlock {
        /// Ranks stuck in a blocking action, with their program counter.
        stuck: Vec<(usize, usize)>,
    },
    /// A send targets a rank outside the program list.
    BadRank {
        /// The offending rank.
        rank: usize,
        /// Its program counter.
        pc: usize,
    },
}

impl std::fmt::Display for DesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesError::Deadlock { stuck } => write!(f, "deadlock; stuck ranks {stuck:?}"),
            DesError::BadRank { rank, pc } => {
                write!(f, "rank {rank} action {pc}: peer out of range")
            }
        }
    }
}

impl std::error::Error for DesError {}

/// Run the simulation.
pub fn run_des(programs: &[Vec<Action>], net: &NetworkModel) -> Result<DesResult, DesError> {
    let n = programs.len();
    let mut clock = vec![0.0f64; n];
    let mut blocked = vec![0.0f64; n];
    let mut pc = vec![0usize; n];
    // in-flight messages per (from, to): FIFO of delivery times
    let mut channels: Vec<Vec<VecDeque<f64>>> = vec![vec![VecDeque::new(); n]; n];
    // shared-medium bus: the time the wire becomes free
    let mut bus_free = 0.0f64;

    // barrier bookkeeping: ranks waiting and their arrival times
    let mut barrier_wait: Vec<Option<f64>> = vec![None; n];

    loop {
        let mut progressed = false;
        for r in 0..n {
            // run rank r as far as it can go
            #[allow(clippy::while_let_loop)] // `break` exits on *blocking*, not just end
            loop {
                let Some(action) = programs[r].get(pc[r]) else {
                    break;
                };
                match *action {
                    Action::Compute(t) => {
                        clock[r] += t;
                        pc[r] += 1;
                        progressed = true;
                    }
                    Action::Send { to, bytes } => {
                        if to >= n {
                            return Err(DesError::BadRank { rank: r, pc: pc[r] });
                        }
                        let wire = bytes as f64 / net.bandwidth;
                        let delivery = if net.shared {
                            // the shared segment serializes transfers
                            let start = clock[r].max(bus_free) + net.latency;
                            bus_free = start + wire;
                            bus_free
                        } else {
                            clock[r] + net.latency + wire
                        };
                        channels[r][to].push_back(delivery);
                        // sender pays the software overhead only
                        clock[r] += net.latency;
                        pc[r] += 1;
                        progressed = true;
                    }
                    Action::Recv { from } => {
                        if from >= n {
                            return Err(DesError::BadRank { rank: r, pc: pc[r] });
                        }
                        match channels[from][r].front() {
                            Some(&delivery) => {
                                channels[from][r].pop_front();
                                if delivery > clock[r] {
                                    blocked[r] += delivery - clock[r];
                                    clock[r] = delivery;
                                }
                                clock[r] += net.latency; // unpack overhead
                                pc[r] += 1;
                                progressed = true;
                            }
                            None => break, // blocked: try other ranks first
                        }
                    }
                    Action::Barrier => {
                        if barrier_wait[r].is_none() {
                            barrier_wait[r] = Some(clock[r]);
                            progressed = true;
                        }
                        // barrier resolves only when everyone with a
                        // Barrier as the current action has arrived
                        let arrived = (0..n).filter(|&q| barrier_wait[q].is_some()).count();
                        if arrived == n {
                            let release = barrier_wait
                                .iter()
                                .map(|t| t.unwrap())
                                .fold(0.0f64, f64::max);
                            for q in 0..n {
                                let at = barrier_wait[q].take().unwrap();
                                if release > at {
                                    blocked[q] += release - at;
                                }
                                clock[q] = clock[q].max(release);
                                pc[q] += 1;
                            }
                            progressed = true;
                        } else {
                            break; // wait for the others
                        }
                    }
                }
            }
        }
        if pc.iter().zip(programs).all(|(&p, prog)| p >= prog.len()) {
            break;
        }
        if !progressed {
            let stuck: Vec<(usize, usize)> = (0..n)
                .filter(|&r| pc[r] < programs[r].len())
                .map(|r| (r, pc[r]))
                .collect();
            return Err(DesError::Deadlock { stuck });
        }
    }
    let makespan = clock.iter().copied().fold(0.0, f64::max);
    Ok(DesResult {
        finish: clock,
        makespan,
        blocked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel {
            latency: 1.0e-3,
            bandwidth: 1.25e6,
            shared: false,
        }
    }

    #[test]
    fn independent_ranks_run_concurrently() {
        let progs = vec![vec![Action::Compute(2.0)], vec![Action::Compute(3.0)]];
        let r = run_des(&progs, &net()).unwrap();
        assert_eq!(r.makespan, 3.0);
        assert_eq!(r.finish, vec![2.0, 3.0]);
        assert_eq!(r.blocked, vec![0.0, 0.0]);
    }

    #[test]
    fn message_delivery_includes_latency_and_wire() {
        let n = net();
        let progs = vec![
            vec![Action::Compute(1.0), Action::Send { to: 1, bytes: 1250 }],
            vec![Action::Recv { from: 0 }],
        ];
        let r = run_des(&progs, &n).unwrap();
        // delivery = 1.0 + 1ms + 1250/1.25e6 (=1ms); receiver adds 1ms unpack
        let expect = 1.0 + 0.001 + 0.001 + 0.001;
        assert!((r.finish[1] - expect).abs() < 1e-9, "{}", r.finish[1]);
        assert!(r.blocked[1] > 0.9, "receiver blocked while rank 0 computes");
    }

    #[test]
    fn pipeline_serializes() {
        // 4-stage forward pipeline: each rank waits for upstream, computes,
        // sends downstream — makespan ≈ sum of compute times
        let n = 4;
        let compute = 0.5;
        let progs: Vec<Vec<Action>> = (0..n)
            .map(|r| {
                let mut p = Vec::new();
                if r > 0 {
                    p.push(Action::Recv { from: r - 1 });
                }
                p.push(Action::Compute(compute));
                if r + 1 < n {
                    p.push(Action::Send {
                        to: r + 1,
                        bytes: 100,
                    });
                }
                p
            })
            .collect();
        let r = run_des(&progs, &net()).unwrap();
        assert!(
            (r.makespan - n as f64 * compute).abs() < 0.05,
            "pipeline makespan {} ≈ {}",
            r.makespan,
            n as f64 * compute
        );
        // downstream ranks block progressively longer
        assert!(r.blocked[3] > r.blocked[1]);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let progs = vec![
            vec![Action::Compute(1.0), Action::Barrier, Action::Compute(0.5)],
            vec![Action::Compute(3.0), Action::Barrier, Action::Compute(0.5)],
        ];
        let r = run_des(&progs, &net()).unwrap();
        assert_eq!(r.finish, vec![3.5, 3.5]);
        assert!((r.blocked[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shared_bus_serializes_transfers() {
        let shared = NetworkModel {
            shared: true,
            ..net()
        };
        let big = 1_250_000; // 1 second of wire time
        let mk = |n: &NetworkModel| {
            let progs = vec![
                vec![Action::Send { to: 2, bytes: big }],
                vec![Action::Send { to: 2, bytes: big }],
                vec![Action::Recv { from: 0 }, Action::Recv { from: 1 }],
            ];
            run_des(&progs, n).unwrap().makespan
        };
        let t_shared = mk(&shared);
        let t_switched = mk(&net());
        assert!(
            t_shared > t_switched + 0.9,
            "bus serialization: {t_shared} vs {t_switched}"
        );
    }

    #[test]
    fn fifo_matching_per_channel() {
        let n = net();
        let progs = vec![
            vec![
                Action::Send { to: 1, bytes: 10 },
                Action::Compute(1.0),
                Action::Send { to: 1, bytes: 20 },
            ],
            vec![Action::Recv { from: 0 }, Action::Recv { from: 0 }],
        ];
        let r = run_des(&progs, &n).unwrap();
        // second recv must wait for the second send (after 1s of compute)
        assert!(r.finish[1] > 1.0);
    }

    #[test]
    fn deadlock_detected() {
        let progs = vec![
            vec![Action::Recv { from: 1 }],
            vec![Action::Recv { from: 0 }],
        ];
        let e = run_des(&progs, &net()).unwrap_err();
        assert!(matches!(e, DesError::Deadlock { ref stuck } if stuck.len() == 2));
    }

    #[test]
    fn bad_rank_detected() {
        let progs = vec![vec![Action::Send { to: 9, bytes: 1 }]];
        assert!(matches!(
            run_des(&progs, &net()),
            Err(DesError::BadRank { .. })
        ));
    }

    #[test]
    fn empty_programs_finish_instantly() {
        let r = run_des(&[vec![], vec![]], &net()).unwrap();
        assert_eq!(r.makespan, 0.0);
    }
}
