#![warn(missing_docs)]

//! Cluster cost model — the stand-in for the paper's testbed.
//!
//! The paper's evaluation (§6) ran on "a dedicated network of 6 Pentium
//! workstations connected by Ethernet". We cannot measure that hardware,
//! so this crate models it deterministically; the *shapes* the paper
//! reports all emerge from three interacting effects the model captures:
//!
//! * **compute** ([`MachineModel`]): per-point cost grows once a rank's
//!   working set overflows the cache (and blows up past physical memory)
//!   — the source of Table 5's superlinear speedups and Table 4's
//!   note that dense grids eventually thrash;
//! * **communication** ([`NetworkModel`]): per-message latency plus
//!   bytes over a *shared* 10 Mbit Ethernet segment, where concurrent
//!   transfers serialize — the source of case study 1's slowdown at
//!   four processors (per-rank computation halves, per-rank
//!   communication doubles);
//! * **pipelining** ([`Phase::Pipelined`]): mirror-image-decomposed
//!   self-dependent loops serialize their forward sweeps across the
//!   ranks of the cut axis, with only partial overlap between
//!   communication and computation (§6.2) — the source of case study
//!   1's muted speedups.
//!
//! A [`Workload`] is a per-frame phase list; [`simulate`] returns the
//! virtual execution time with a per-category breakdown.

pub mod des;
pub mod validate;

pub use des::{run_des, Action, DesError, DesResult};
pub use validate::{relative_error, Comparison};

use serde::{Deserialize, Serialize};

/// Per-node compute model with a two-level memory effect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Seconds per floating-point operation when the working set is
    /// cache-resident.
    pub flop_time: f64,
    /// Effective cache capacity in bytes.
    pub cache_bytes: u64,
    /// Physical memory per node in bytes.
    pub mem_bytes: u64,
    /// Per-point slowdown factor when the working set is much larger
    /// than the cache (asymptote).
    pub miss_factor: f64,
    /// Additional multiplier once the working set exceeds physical
    /// memory (paging).
    pub thrash_factor: f64,
}

impl MachineModel {
    /// A late-1990s Pentium workstation of the paper's vintage:
    /// ~60 MFLOPS effective in cache, 512 KiB L2, 64 MiB RAM, ~2.6×
    /// out-of-cache penalty.
    pub fn pentium_2003() -> Self {
        Self {
            flop_time: 1.0 / 60.0e6,
            cache_bytes: 512 * 1024,
            mem_bytes: 64 * 1024 * 1024,
            miss_factor: 2.6,
            thrash_factor: 25.0,
        }
    }

    /// The cache/memory slowdown factor for a given working set.
    pub fn locality_factor(&self, working_set: u64) -> f64 {
        let mut f = if working_set <= self.cache_bytes {
            1.0
        } else {
            // fraction of accesses missing the cache grows with the
            // overflow ratio and saturates at miss_factor
            let ratio = self.cache_bytes as f64 / working_set as f64;
            self.miss_factor - (self.miss_factor - 1.0) * ratio
        };
        if working_set > self.mem_bytes {
            f *= self.thrash_factor;
        }
        f
    }

    /// Seconds to compute `points` grid points at `flops_per_point`,
    /// given the rank's `working_set` in bytes.
    pub fn compute_time(&self, points: u64, flops_per_point: f64, working_set: u64) -> f64 {
        points as f64 * flops_per_point * self.flop_time * self.locality_factor(working_set)
    }
}

/// Interconnect model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-message latency (software + wire), seconds.
    pub latency: f64,
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Shared medium: all concurrent transfers serialize on one segment
    /// (classic 10 Mbit Ethernet with a hub).
    pub shared: bool,
}

impl NetworkModel {
    /// The paper's interconnect: 10 Mbit shared Ethernet, ~1 ms
    /// per-message software latency (PVM/MPI over UDP in 2003).
    pub fn ethernet_10mbit() -> Self {
        Self {
            latency: 1.0e-3,
            bandwidth: 10.0e6 / 8.0,
            shared: true,
        }
    }

    /// A switched 100 Mbit alternative (for ablations).
    pub fn ethernet_100mbit_switched() -> Self {
        Self {
            latency: 0.5e-3,
            bandwidth: 100.0e6 / 8.0,
            shared: false,
        }
    }

    /// Wall time of one exchange phase. `msgs_max` = most messages any
    /// rank sends; `total_bytes` = sum over all ranks; `max_bytes` = most
    /// bytes any single rank sends.
    pub fn exchange_time(&self, msgs_max: u64, total_bytes: u64, max_bytes: u64) -> f64 {
        let wire = if self.shared {
            total_bytes as f64 / self.bandwidth
        } else {
            max_bytes as f64 / self.bandwidth
        };
        self.latency * msgs_max as f64 + wire
    }

    /// Wall time of one point-to-point transfer.
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// One phase of a frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// A fully parallel field-loop sweep: ranks run concurrently; the
    /// slowest rank sets the pace.
    Parallel {
        /// Points computed by the most-loaded rank.
        points_max: u64,
        /// Floating-point work per point.
        flops_per_point: f64,
        /// The most-loaded rank's working set (bytes).
        working_set: u64,
    },
    /// A mirror-image-decomposed self-dependent sweep: the forward
    /// pipeline serializes ranks along the cut axis.
    Pipelined {
        /// Total points of the whole sweep (all ranks).
        points_total: u64,
        /// Pipeline stages (ranks along the cut axis).
        stages: u64,
        /// Floating-point work per point.
        flops_per_point: f64,
        /// Per-rank working set (bytes).
        working_set: u64,
        /// Bytes handed downstream at each stage boundary.
        boundary_bytes: u64,
        /// Fraction of the serialization hidden by overlap with
        /// neighbouring loops/frames (0 = fully serial, 1 = perfect).
        overlap: f64,
    },
    /// A combined halo exchange (one synchronization point).
    Exchange {
        /// Most messages sent by any rank.
        msgs_max: u64,
        /// Total bytes over the wire (all ranks).
        total_bytes: u64,
        /// Most bytes sent by any single rank.
        max_bytes: u64,
    },
    /// A scalar allreduce (convergence test).
    Reduction {
        /// Participating ranks.
        ranks: u64,
    },
    /// Fixed serial work (I/O, setup) per frame.
    Serial {
        /// Seconds.
        seconds: f64,
    },
}

/// A complete run: `frames` iterations of the phase list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Frame (outer iteration) count.
    pub frames: u64,
    /// Phases executed per frame, in order.
    pub phases: Vec<Phase>,
}

/// Simulation result with per-category breakdown (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// Total virtual wall time.
    pub total: f64,
    /// Parallel-compute portion.
    pub compute: f64,
    /// Pipeline (serialized) portion.
    pub pipeline: f64,
    /// Communication portion.
    pub comm: f64,
    /// Serial portion.
    pub serial: f64,
}

impl SimResult {
    /// Speedup of this run relative to `seq`.
    pub fn speedup_over(&self, seq: &SimResult) -> f64 {
        seq.total / self.total
    }
}

/// Simulate a workload on `ranks` nodes.
///
/// ```
/// use autocfd_cluster_sim::{simulate, MachineModel, NetworkModel, Phase, Workload};
/// let w = Workload {
///     frames: 100,
///     phases: vec![
///         Phase::Parallel { points_max: 10_000, flops_per_point: 50.0, working_set: 1 << 18 },
///         Phase::Exchange { msgs_max: 2, total_bytes: 8_000, max_bytes: 4_000 },
///     ],
/// };
/// let r = simulate(&w, &MachineModel::pentium_2003(), &NetworkModel::ethernet_10mbit());
/// assert!(r.total > 0.0 && r.comm > 0.0);
/// ```
pub fn simulate(w: &Workload, machine: &MachineModel, net: &NetworkModel) -> SimResult {
    let mut r = SimResult::default();
    for phase in &w.phases {
        match phase {
            Phase::Parallel {
                points_max,
                flops_per_point,
                working_set,
            } => {
                r.compute += machine.compute_time(*points_max, *flops_per_point, *working_set);
            }
            Phase::Pipelined {
                points_total,
                stages,
                flops_per_point,
                working_set,
                boundary_bytes,
                overlap,
            } => {
                // Fully serialized: every stage computes in turn.
                let serial = machine.compute_time(*points_total, *flops_per_point, *working_set);
                // Perfectly overlapped: stages run concurrently.
                let ideal = serial / (*stages).max(1) as f64;
                let t = serial * (1.0 - overlap) + ideal * overlap;
                r.pipeline += t;
                // stage handoffs (old-value + updated-value transfers)
                if *stages > 1 {
                    r.comm += (*stages - 1) as f64 * 2.0 * net.message_time(*boundary_bytes);
                }
            }
            Phase::Exchange {
                msgs_max,
                total_bytes,
                max_bytes,
            } => {
                r.comm += net.exchange_time(*msgs_max, *total_bytes, *max_bytes);
            }
            Phase::Reduction { ranks } => {
                if *ranks > 1 {
                    // gather to root + broadcast on the shared segment
                    r.comm += 2.0 * (*ranks - 1) as f64 * net.latency;
                }
            }
            Phase::Serial { seconds } => r.serial += seconds,
        }
    }
    let f = w.frames as f64;
    r.compute *= f;
    r.pipeline *= f;
    r.comm *= f;
    r.serial *= f;
    r.total = r.compute + r.pipeline + r.comm + r.serial;
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineModel {
        MachineModel::pentium_2003()
    }

    fn net() -> NetworkModel {
        NetworkModel::ethernet_10mbit()
    }

    #[test]
    fn locality_factor_shape() {
        let m = machine();
        assert_eq!(m.locality_factor(1024), 1.0);
        assert_eq!(m.locality_factor(m.cache_bytes), 1.0);
        let just_over = m.locality_factor(m.cache_bytes * 2);
        assert!(just_over > 1.0 && just_over < m.miss_factor);
        let way_over = m.locality_factor(m.cache_bytes * 100); // still < mem
        assert!(way_over > just_over);
        assert!(way_over <= m.miss_factor);
        // monotone
        let mut prev = 0.0;
        for ws in [1u64 << 10, 1 << 16, 1 << 19, 1 << 22, 1 << 25] {
            let f = m.locality_factor(ws);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn thrash_beyond_memory() {
        let m = machine();
        let fits = m.locality_factor(m.mem_bytes);
        let thrashes = m.locality_factor(m.mem_bytes + 1);
        assert!(thrashes > fits * 10.0);
    }

    #[test]
    fn shared_ethernet_serializes() {
        let shared = net();
        let switched = NetworkModel {
            shared: false,
            ..shared.clone()
        };
        // 4 ranks sending 1 KB each
        let t_shared = shared.exchange_time(1, 4096, 1024);
        let t_switched = switched.exchange_time(1, 4096, 1024);
        assert!(t_shared > t_switched);
    }

    #[test]
    fn parallel_phase_scales_with_ranks() {
        let m = machine();
        let n = net();
        let seq = simulate(
            &Workload {
                frames: 10,
                phases: vec![Phase::Parallel {
                    points_max: 100_000,
                    flops_per_point: 100.0,
                    working_set: 1 << 24,
                }],
            },
            &m,
            &n,
        );
        let par = simulate(
            &Workload {
                frames: 10,
                phases: vec![
                    Phase::Parallel {
                        points_max: 50_000,
                        flops_per_point: 100.0,
                        working_set: 1 << 23,
                    },
                    Phase::Exchange {
                        msgs_max: 2,
                        total_bytes: 8_000,
                        max_bytes: 4_000,
                    },
                ],
            },
            &m,
            &n,
        );
        let s = par.speedup_over(&seq);
        assert!(s > 1.5 && s <= 2.2, "speedup {s}");
    }

    #[test]
    fn superlinear_when_subgrid_fits_cache() {
        // whole problem overflows cache; half-problem fits → >2x speedup
        let m = machine();
        let n = net();
        let ws_full = m.cache_bytes * 2;
        let ws_half = m.cache_bytes;
        let seq = simulate(
            &Workload {
                frames: 100,
                phases: vec![Phase::Parallel {
                    points_max: 100_000,
                    flops_per_point: 50.0,
                    working_set: ws_full,
                }],
            },
            &m,
            &n,
        );
        let par = simulate(
            &Workload {
                frames: 100,
                phases: vec![
                    Phase::Parallel {
                        points_max: 50_000,
                        flops_per_point: 50.0,
                        working_set: ws_half,
                    },
                    Phase::Exchange {
                        msgs_max: 1,
                        total_bytes: 4_000,
                        max_bytes: 2_000,
                    },
                ],
            },
            &m,
            &n,
        );
        let s = par.speedup_over(&seq);
        assert!(s > 2.0, "superlinear speedup expected, got {s}");
    }

    #[test]
    fn pipeline_overlap_bounds() {
        let m = machine();
        let n = net();
        let mk = |overlap: f64| Workload {
            frames: 1,
            phases: vec![Phase::Pipelined {
                points_total: 1_000_000,
                stages: 4,
                flops_per_point: 10.0,
                working_set: 1 << 18,
                boundary_bytes: 1000,
                overlap,
            }],
        };
        let serial = simulate(&mk(0.0), &m, &n);
        let ideal = simulate(&mk(1.0), &m, &n);
        let mid = simulate(&mk(0.5), &m, &n);
        assert!(serial.total > mid.total && mid.total > ideal.total);
        // fully-overlapped pipeline ≈ parallel/4 + comm
        assert!(ideal.pipeline * 3.9 < serial.pipeline);
    }

    #[test]
    fn reduction_costs_grow_with_ranks() {
        let n = net();
        let m = machine();
        let mk = |ranks| Workload {
            frames: 1,
            phases: vec![Phase::Reduction { ranks }],
        };
        let t2 = simulate(&mk(2), &m, &n).comm;
        let t6 = simulate(&mk(6), &m, &n).comm;
        assert!(t6 > t2);
        assert_eq!(simulate(&mk(1), &m, &n).comm, 0.0);
    }

    #[test]
    fn frames_scale_linearly() {
        let m = machine();
        let n = net();
        let w1 = Workload {
            frames: 1,
            phases: vec![Phase::Serial { seconds: 2.0 }],
        };
        let w10 = Workload {
            frames: 10,
            ..w1.clone()
        };
        assert_eq!(
            simulate(&w10, &m, &n).total,
            10.0 * simulate(&w1, &m, &n).total
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Locality factor is monotone in working-set size and bounded.
        #[test]
        fn locality_monotone(a in 1u64..1u64<<28, b in 1u64..1u64<<28) {
            let m = MachineModel::pentium_2003();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.locality_factor(lo) <= m.locality_factor(hi) + 1e-12);
            prop_assert!(m.locality_factor(hi) <= m.miss_factor * m.thrash_factor);
            prop_assert!(m.locality_factor(lo) >= 1.0);
        }

        /// Simulation time is monotone in every phase magnitude.
        #[test]
        fn sim_monotone_in_points(p1 in 1u64..1_000_000, p2 in 1u64..1_000_000) {
            let m = MachineModel::pentium_2003();
            let n = NetworkModel::ethernet_10mbit();
            let mk = |points| Workload {
                frames: 3,
                phases: vec![Phase::Parallel {
                    points_max: points, flops_per_point: 10.0, working_set: 1 << 20,
                }],
            };
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(simulate(&mk(lo), &m, &n).total <= simulate(&mk(hi), &m, &n).total);
        }
    }
}
