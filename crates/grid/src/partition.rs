//! Block decomposition of structured grids.

use serde::{Deserialize, Serialize};

/// The shape of a structured (rectangular) computational grid — §2 of the
/// paper: the irregular physical flow field has already been mapped onto
/// this regular grid by the CFD code.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridShape {
    /// Points per axis (2 or 3 axes), 1-based indexing like Fortran.
    pub extents: Vec<u64>,
}

impl GridShape {
    /// A 2-D grid.
    pub fn d2(ni: u64, nj: u64) -> Self {
        Self {
            extents: vec![ni, nj],
        }
    }

    /// A 3-D grid.
    pub fn d3(ni: u64, nj: u64, nk: u64) -> Self {
        Self {
            extents: vec![ni, nj, nk],
        }
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Total grid points.
    pub fn points(&self) -> u64 {
        self.extents.iter().product()
    }
}

/// A requested processor grid: parts per axis.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Number of parts along each grid axis.
    pub parts: Vec<u32>,
}

impl PartitionSpec {
    /// Construct from a slice.
    pub fn new(parts: &[u32]) -> Self {
        Self {
            parts: parts.to_vec(),
        }
    }

    /// Total number of subtasks (processors).
    pub fn tasks(&self) -> u32 {
        self.parts.iter().product()
    }

    /// Render as the paper's `x × y × z` notation.
    pub fn display(&self) -> String {
        self.parts
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join("x")
    }
}

/// One subgrid: the block of grid points assigned to one subtask.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subgrid {
    /// Subtask rank (row-major over the processor grid).
    pub rank: u32,
    /// Position in the processor grid, per axis.
    pub coords: Vec<u32>,
    /// Inclusive global lower corner (1-based).
    pub lo: Vec<u64>,
    /// Inclusive global upper corner (1-based).
    pub hi: Vec<u64>,
}

impl Subgrid {
    /// Local extent along `axis`.
    pub fn extent(&self, axis: usize) -> u64 {
        self.hi[axis] - self.lo[axis] + 1
    }

    /// Total points owned by this subtask.
    pub fn points(&self) -> u64 {
        (0..self.lo.len()).map(|a| self.extent(a)).product()
    }

    /// Surface (demarcation face) size perpendicular to `axis`: the number
    /// of grid points on one face, i.e. the product of the other axes'
    /// local extents.
    pub fn face_points(&self, axis: usize) -> u64 {
        (0..self.lo.len())
            .filter(|&a| a != axis)
            .map(|a| self.extent(a))
            .product()
    }
}

/// A complete block partition of a grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// The partitioned grid.
    pub shape: GridShape,
    /// Parts per axis.
    pub spec: PartitionSpec,
    /// All subgrids, indexed by rank (row-major over processor coords).
    pub subgrids: Vec<Subgrid>,
}

/// Split extent `n` into `p` consecutive chunks whose sizes differ by at
/// most one (the paper's equal-demarcation-line rule). Returns inclusive
/// 1-based `(lo, hi)` ranges.
pub fn split_axis(n: u64, p: u32) -> Vec<(u64, u64)> {
    assert!(p >= 1, "at least one part");
    let p = p as u64;
    let base = n / p;
    let extra = n % p; // first `extra` chunks get one more point
    let mut out = Vec::with_capacity(p as usize);
    let mut lo = 1u64;
    for c in 0..p {
        let len = base + u64::from(c < extra);
        let hi = lo + len.saturating_sub(1);
        out.push((lo, hi));
        lo = hi + 1;
    }
    out
}

/// Build the block partition of `shape` by `spec`.
///
/// # Panics
/// Panics if the spec rank differs from the grid rank, or if any axis has
/// more parts than points.
pub fn partition(shape: &GridShape, spec: &PartitionSpec) -> Partition {
    assert_eq!(
        shape.rank(),
        spec.parts.len(),
        "partition rank must match grid rank"
    );
    for (a, (&n, &p)) in shape.extents.iter().zip(&spec.parts).enumerate() {
        assert!(
            u64::from(p) <= n,
            "axis {a}: cannot split {n} points into {p} parts"
        );
    }
    let axis_ranges: Vec<Vec<(u64, u64)>> = shape
        .extents
        .iter()
        .zip(&spec.parts)
        .map(|(&n, &p)| split_axis(n, p))
        .collect();

    let mut subgrids = Vec::with_capacity(spec.tasks() as usize);
    let rank_dims: Vec<u32> = spec.parts.clone();
    let total = spec.tasks();
    for r in 0..total {
        let coords = rank_to_coords(r, &rank_dims);
        let mut lo = Vec::with_capacity(coords.len());
        let mut hi = Vec::with_capacity(coords.len());
        for (a, &c) in coords.iter().enumerate() {
            let (l, h) = axis_ranges[a][c as usize];
            lo.push(l);
            hi.push(h);
        }
        subgrids.push(Subgrid {
            rank: r,
            coords,
            lo,
            hi,
        });
    }
    Partition {
        shape: shape.clone(),
        spec: spec.clone(),
        subgrids,
    }
}

/// Row-major rank → processor-grid coordinates.
pub fn rank_to_coords(rank: u32, dims: &[u32]) -> Vec<u32> {
    let mut coords = vec![0u32; dims.len()];
    let mut rem = rank;
    for a in (0..dims.len()).rev() {
        coords[a] = rem % dims[a];
        rem /= dims[a];
    }
    coords
}

/// Processor-grid coordinates → row-major rank.
pub fn coords_to_rank(coords: &[u32], dims: &[u32]) -> u32 {
    let mut rank = 0u32;
    for a in 0..dims.len() {
        rank = rank * dims[a] + coords[a];
    }
    rank
}

impl Partition {
    /// The subgrid of `rank`.
    pub fn subgrid(&self, rank: u32) -> &Subgrid {
        &self.subgrids[rank as usize]
    }

    /// Neighbor rank of `rank` along `axis` in direction `dir` (−1/+1),
    /// if inside the processor grid (no periodic wraparound — CFD grids
    /// have physical boundaries).
    pub fn neighbor(&self, rank: u32, axis: usize, dir: i32) -> Option<u32> {
        let coords = &self.subgrids[rank as usize].coords;
        let c = coords[axis] as i64 + i64::from(dir);
        if c < 0 || c >= i64::from(self.spec.parts[axis]) {
            return None;
        }
        let mut nc = coords.clone();
        nc[axis] = c as u32;
        Some(coords_to_rank(&nc, &self.spec.parts))
    }

    /// All `(axis, dir, neighbor_rank)` triples for `rank`.
    pub fn neighbors(&self, rank: u32) -> Vec<(usize, i32, u32)> {
        let mut out = Vec::new();
        for axis in 0..self.shape.rank() {
            for dir in [-1, 1] {
                if let Some(n) = self.neighbor(rank, axis, dir) {
                    out.push((axis, dir, n));
                }
            }
        }
        out
    }

    /// Grid points communicated *by* subtask `rank` per halo exchange,
    /// with ghost-layer width `distance` (§4.2 case 5): the sum over all
    /// neighbor faces of `face_points × distance`.
    pub fn comm_points(&self, rank: u32, distance: u64) -> u64 {
        let sg = &self.subgrids[rank as usize];
        self.neighbors(rank)
            .iter()
            .map(|&(axis, _, _)| sg.face_points(axis) * distance)
            .sum()
    }

    /// Total communicated points across all subtasks per exchange.
    pub fn total_comm_points(&self, distance: u64) -> u64 {
        (0..self.spec.tasks())
            .map(|r| self.comm_points(r, distance))
            .sum()
    }

    /// Maximum per-subtask communicated points (the bottleneck processor —
    /// the paper's case-study-1 analysis is about exactly this quantity).
    pub fn max_comm_points(&self, distance: u64) -> u64 {
        (0..self.spec.tasks())
            .map(|r| self.comm_points(r, distance))
            .max()
            .unwrap_or(0)
    }

    /// Load imbalance: max subgrid points / mean subgrid points.
    pub fn imbalance(&self) -> f64 {
        let max = self.subgrids.iter().map(Subgrid::points).max().unwrap_or(0) as f64;
        let mean = self.shape.points() as f64 / self.subgrids.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Imbalance of communication across a subtask's neighbors: the ratio
    /// of its largest face to its smallest face (1.0 = perfectly
    /// balanced). The paper's §6.2 notes unbalanced neighbor communication
    /// hurt the `2 × 2 × 1` partition.
    pub fn neighbor_comm_imbalance(&self, rank: u32) -> f64 {
        let sg = &self.subgrids[rank as usize];
        let faces: Vec<u64> = self
            .neighbors(rank)
            .iter()
            .map(|&(axis, _, _)| sg.face_points(axis))
            .collect();
        match (faces.iter().max(), faces.iter().min()) {
            (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_axis_even() {
        assert_eq!(
            split_axis(100, 4),
            vec![(1, 25), (26, 50), (51, 75), (76, 100)]
        );
    }

    #[test]
    fn split_axis_uneven() {
        // 99 into 4: 25,25,25,24 — sizes differ by at most 1
        let parts = split_axis(99, 4);
        let sizes: Vec<u64> = parts.iter().map(|(l, h)| h - l + 1).collect();
        assert_eq!(sizes, vec![25, 25, 25, 24]);
        assert_eq!(parts.last().unwrap().1, 99);
    }

    #[test]
    fn split_axis_single() {
        assert_eq!(split_axis(7, 1), vec![(1, 7)]);
    }

    #[test]
    fn partition_covers_grid_exactly() {
        let p = partition(&GridShape::d3(99, 41, 13), &PartitionSpec::new(&[3, 2, 1]));
        assert_eq!(p.subgrids.len(), 6);
        let total: u64 = p.subgrids.iter().map(Subgrid::points).sum();
        assert_eq!(total, 99 * 41 * 13);
    }

    #[test]
    fn partition_sizes_balanced() {
        let p = partition(&GridShape::d3(99, 41, 13), &PartitionSpec::new(&[4, 4, 1]));
        let max = p.subgrids.iter().map(Subgrid::points).max().unwrap();
        let min = p.subgrids.iter().map(Subgrid::points).min().unwrap();
        // per-axis sizes differ by ≤1, so point counts stay close
        assert!(p.imbalance() < 1.15, "imbalance {}", p.imbalance());
        assert!(max >= min);
    }

    #[test]
    #[should_panic(expected = "rank must match")]
    fn rank_mismatch_panics() {
        partition(&GridShape::d2(10, 10), &PartitionSpec::new(&[2, 2, 2]));
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn overpartition_panics() {
        partition(&GridShape::d2(3, 3), &PartitionSpec::new(&[4, 1]));
    }

    #[test]
    fn rank_coord_roundtrip() {
        let dims = [3u32, 2, 4];
        for r in 0..24 {
            let c = rank_to_coords(r, &dims);
            assert_eq!(coords_to_rank(&c, &dims), r);
        }
    }

    #[test]
    fn neighbors_interior_and_boundary() {
        let p = partition(&GridShape::d2(40, 40), &PartitionSpec::new(&[4, 1]));
        // rank 0 is a boundary subtask: one neighbor
        assert_eq!(p.neighbors(0).len(), 1);
        // rank 1 is interior along axis 0: two neighbors
        assert_eq!(p.neighbors(1).len(), 2);
        assert_eq!(p.neighbor(1, 0, -1), Some(0));
        assert_eq!(p.neighbor(1, 0, 1), Some(2));
        assert_eq!(p.neighbor(0, 0, -1), None);
        // axis 1 has a single part: no neighbors there
        assert_eq!(p.neighbor(1, 1, 1), None);
    }

    #[test]
    fn comm_points_2proc_vs_4proc_case_study_1() {
        // The paper's §6.2 analysis: on 99×41×13, cutting the longest
        // dimension for 2 procs gives one 41×13 face each; with 4×1×1 an
        // interior proc has two 41×13 faces — per-proc comm doubles while
        // per-proc compute halves.
        let shape = GridShape::d3(99, 41, 13);
        let p2 = partition(&shape, &PartitionSpec::new(&[2, 1, 1]));
        let p4 = partition(&shape, &PartitionSpec::new(&[4, 1, 1]));
        assert_eq!(p2.comm_points(0, 1), 41 * 13);
        assert_eq!(p4.max_comm_points(1), 2 * 41 * 13);
    }

    #[test]
    fn comm_points_2x2x1_ratio_paper() {
        // Paper: with 2×2×1 each subgrid is ~50×21×13 and communicates
        // (50×13 + 21×13) points ≈ 1.7× the (41×13) of the 2-proc split.
        // (The paper quotes 1.6 using 45×21×13 subgrids from a slightly
        // different split; the shape — "more than 2-proc" — is what
        // matters.)
        let shape = GridShape::d3(99, 41, 13);
        let p = partition(&shape, &PartitionSpec::new(&[2, 2, 1]));
        let per = p.comm_points(0, 1) as f64;
        let two_proc = (41 * 13) as f64;
        let ratio = per / two_proc;
        assert!(ratio > 1.4 && ratio < 2.0, "ratio {ratio}");
        // and its neighbor communication is unbalanced
        assert!(p.neighbor_comm_imbalance(0) > 1.5);
    }

    #[test]
    fn distance_scales_comm() {
        let p = partition(&GridShape::d2(100, 100), &PartitionSpec::new(&[2, 1]));
        assert_eq!(p.comm_points(0, 2), 2 * p.comm_points(0, 1));
    }

    #[test]
    fn face_points() {
        let p = partition(&GridShape::d3(100, 40, 10), &PartitionSpec::new(&[2, 2, 1]));
        let sg = p.subgrid(0);
        assert_eq!(sg.face_points(0), sg.extent(1) * sg.extent(2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Partition conserves grid points and every point is covered once.
        #[test]
        fn conserves_points(
            ni in 4u64..200, nj in 4u64..200,
            pi in 1u32..4, pj in 1u32..4,
        ) {
            prop_assume!(u64::from(pi) <= ni && u64::from(pj) <= nj);
            let p = partition(&GridShape::d2(ni, nj), &PartitionSpec::new(&[pi, pj]));
            let total: u64 = p.subgrids.iter().map(Subgrid::points).sum();
            prop_assert_eq!(total, ni * nj);
            // blocks tile without overlap: consecutive blocks along each
            // axis abut exactly
            for sg in &p.subgrids {
                for axis in 0..2 {
                    if let Some(n) = p.neighbor(sg.rank, axis, 1) {
                        prop_assert_eq!(p.subgrid(n).lo[axis], sg.hi[axis] + 1);
                    }
                }
            }
        }

        /// Per-axis chunk sizes differ by at most one (the paper's
        /// equal-demarcation-lines rule).
        #[test]
        fn chunks_differ_by_at_most_one(n in 1u64..10_000, p in 1u32..64) {
            prop_assume!(u64::from(p) <= n);
            let chunks = split_axis(n, p);
            let sizes: Vec<u64> = chunks.iter().map(|(l, h)| h - l + 1).collect();
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            prop_assert!(max - min <= 1);
            prop_assert_eq!(sizes.iter().sum::<u64>(), n);
            prop_assert_eq!(chunks[0].0, 1);
            prop_assert_eq!(chunks.last().unwrap().1, n);
        }

        /// Halo symmetry: if a has neighbor b along (axis,+1) then b has
        /// neighbor a along (axis,-1), and the shared face sizes agree.
        #[test]
        fn halo_symmetry(
            ni in 8u64..120, nj in 8u64..120, nk in 4u64..40,
            pi in 1u32..4, pj in 1u32..4, pk in 1u32..3,
        ) {
            prop_assume!(u64::from(pi) <= ni && u64::from(pj) <= nj && u64::from(pk) <= nk);
            let p = partition(&GridShape::d3(ni, nj, nk), &PartitionSpec::new(&[pi, pj, pk]));
            for sg in &p.subgrids {
                for (axis, dir, n) in p.neighbors(sg.rank) {
                    prop_assert_eq!(p.neighbor(n, axis, -dir), Some(sg.rank));
                    prop_assert_eq!(p.subgrid(n).face_points(axis), sg.face_points(axis));
                }
            }
        }
    }
}
