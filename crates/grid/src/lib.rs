#![warn(missing_docs)]

//! Structured-grid partitioning for Auto-CFD (§4.1 of the paper).
//!
//! Grid partitioning serves two purposes in the paper:
//!
//! 1. **load balance** — all subgrids sized as equally as possible, and
//! 2. **communication minimization** — the paper proves communication is
//!    minimized when every demarcation line splits the grid into (as close
//!    as possible) equal point counts.
//!
//! This crate implements block decomposition of 2-D/3-D structured grids
//! into an `x × y × z` processor grid ([`partition::partition`]), halo
//! (ghost-layer) geometry for a given dependency distance, per-subtask
//! communication volume analysis, and automatic partition selection
//! ([`choose::choose_partition`]) that searches all factorizations of the
//! processor count — reproducing the paper's §6.2 discussion of why
//! `3 × 2 × 1` beats `4 × 1 × 1` and `2 × 2 × 1` on six processors.

pub mod choose;
pub mod partition;

pub use choose::{choose_partition, enumerate_factorizations, PartitionCost};
pub use partition::{
    coords_to_rank, partition, rank_to_coords, split_axis, GridShape, Partition, PartitionSpec,
    Subgrid,
};
