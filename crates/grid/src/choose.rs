//! Automatic partition selection.
//!
//! When the user gives no `!$acf partition(...)` directive, Auto-CFD
//! chooses the processor grid itself: it enumerates every factorization
//! of the processor count over the grid axes and picks the one that
//! minimizes communication, subject to load balance (§4.1). The cost
//! order reproduces the paper's §6.2 reasoning:
//!
//! 1. primary: **maximum per-subtask communication volume** (the
//!    bottleneck processor sets the pace in a lock-step stencil code);
//! 2. tie-break: total communication volume;
//! 3. tie-break: per-neighbor communication balance (the paper notes the
//!    unbalanced faces of `2 × 2 × 1` hurt case study 1);
//! 4. tie-break: load imbalance.

use crate::partition::{partition, GridShape, Partition, PartitionSpec};
use serde::{Deserialize, Serialize};

/// The cost vector used to rank candidate partitions (lower is better,
/// lexicographically).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionCost {
    /// Max per-subtask communicated points per exchange.
    pub max_comm: u64,
    /// Total communicated points per exchange.
    pub total_comm: u64,
    /// Worst per-neighbor face-size ratio across subtasks (×1000, as an
    /// integer for total ordering).
    pub neighbor_imbalance_milli: u64,
    /// Load imbalance (×1000).
    pub load_imbalance_milli: u64,
}

impl PartitionCost {
    /// Evaluate a partition under dependency distance `distance`.
    pub fn of(p: &Partition, distance: u64) -> Self {
        let max_comm = p.max_comm_points(distance);
        let total_comm = p.total_comm_points(distance);
        let neighbor_imbalance_milli = (0..p.spec.tasks())
            .map(|r| (p.neighbor_comm_imbalance(r) * 1000.0) as u64)
            .max()
            .unwrap_or(1000);
        let load_imbalance_milli = (p.imbalance() * 1000.0) as u64;
        Self {
            max_comm,
            total_comm,
            neighbor_imbalance_milli,
            load_imbalance_milli,
        }
    }

    fn key(&self) -> (u64, u64, u64, u64) {
        (
            self.max_comm,
            self.total_comm,
            self.neighbor_imbalance_milli,
            self.load_imbalance_milli,
        )
    }
}

/// Enumerate all ordered factorizations of `p` into `rank` factors
/// (each ≥ 1): every candidate `x × y (× z)` processor grid.
pub fn enumerate_factorizations(p: u32, rank: usize) -> Vec<Vec<u32>> {
    assert!(p >= 1 && rank >= 1);
    fn rec(p: u32, rank: usize, acc: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if rank == 1 {
            acc.push(p);
            out.push(acc.clone());
            acc.pop();
            return;
        }
        for f in 1..=p {
            if p.is_multiple_of(f) {
                acc.push(f);
                rec(p / f, rank - 1, acc, out);
                acc.pop();
            }
        }
    }
    let mut out = Vec::new();
    rec(p, rank, &mut Vec::new(), &mut out);
    out
}

/// Choose the best partition of `shape` over `procs` processors at halo
/// width `distance`. Candidates with more parts than points on some axis
/// are skipped. Returns the winning partition and its cost.
///
/// ```
/// use autocfd_grid::{choose_partition, GridShape};
/// // the paper's case study 1 on 6 processors: 3x2x1 wins (§6.2)
/// let (p, cost) = choose_partition(&GridShape::d3(99, 41, 13), 6, 1);
/// assert_eq!(p.spec.parts, vec![3, 2, 1]);
/// assert!(cost.max_comm > 0);
/// ```
///
/// # Panics
/// Panics if no factorization fits the grid (e.g. more processors than
/// grid points).
pub fn choose_partition(
    shape: &GridShape,
    procs: u32,
    distance: u64,
) -> (Partition, PartitionCost) {
    let mut best: Option<(Partition, PartitionCost)> = None;
    for parts in enumerate_factorizations(procs, shape.rank()) {
        if parts
            .iter()
            .zip(&shape.extents)
            .any(|(&p, &n)| u64::from(p) > n)
        {
            continue;
        }
        let cand = partition(shape, &PartitionSpec::new(&parts));
        let cost = PartitionCost::of(&cand, distance);
        let better = match &best {
            None => true,
            Some((_, bc)) => cost.key() < bc.key(),
        };
        if better {
            best = Some((cand, cost));
        }
    }
    best.expect("no feasible partition for this grid/processor combination")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_of_4_rank3() {
        let f = enumerate_factorizations(4, 3);
        assert!(f.contains(&vec![4, 1, 1]));
        assert!(f.contains(&vec![1, 4, 1]));
        assert!(f.contains(&vec![2, 2, 1]));
        assert!(f.contains(&vec![1, 2, 2]));
        // every candidate multiplies to 4
        assert!(f.iter().all(|v| v.iter().product::<u32>() == 4));
    }

    #[test]
    fn factorizations_count_rank2() {
        // 6 = 1*6, 2*3, 3*2, 6*1
        assert_eq!(enumerate_factorizations(6, 2).len(), 4);
    }

    #[test]
    fn two_procs_cut_longest_dimension() {
        // Paper §6.2: "On 2 processors, the best way to partition the flow
        // field is to cut the longest dimension of 99 grid points."
        let (p, _) = choose_partition(&GridShape::d3(99, 41, 13), 2, 1);
        assert_eq!(p.spec.parts, vec![2, 1, 1]);
    }

    #[test]
    fn six_procs_prefers_3x2x1() {
        // Paper §6.2: 3×2×1 gives balanced neighbor communication and less
        // volume than 2×2×1-style alternatives.
        let (p, _) = choose_partition(&GridShape::d3(99, 41, 13), 6, 1);
        assert_eq!(p.spec.parts, vec![3, 2, 1]);
    }

    #[test]
    fn sprayer_4_procs_never_cuts_short_axis_only() {
        // 300×100 on 4 procs: 4×1 and 2×2 tie on max per-proc comm (200
        // points); 1×4 is strictly worse (600). The cost model must not
        // pick 1×4; the paper's Table 3 runs 2×2 via an explicit
        // `!$acf partition` directive.
        let (p, c) = choose_partition(&GridShape::d2(300, 100), 4, 1);
        assert_ne!(p.spec.parts, vec![1, 4]);
        assert_eq!(c.max_comm, 200);
    }

    #[test]
    fn skips_infeasible_axes() {
        // grid 100×3 with 4 procs: 1×4 infeasible on axis 1 (3 points);
        // must pick an x-heavy split.
        let (p, _) = choose_partition(&GridShape::d2(100, 3), 4, 1);
        assert_eq!(p.spec.parts[0], 4);
    }

    #[test]
    fn single_proc_trivial() {
        let (p, c) = choose_partition(&GridShape::d2(50, 50), 1, 1);
        assert_eq!(p.spec.parts, vec![1, 1]);
        assert_eq!(c.max_comm, 0);
        assert_eq!(c.total_comm, 0);
    }

    #[test]
    #[should_panic(expected = "no feasible partition")]
    fn infeasible_panics() {
        choose_partition(&GridShape::d2(2, 2), 5, 1);
    }

    #[test]
    fn distance_does_not_change_winner_but_scales_cost() {
        let shape = GridShape::d2(300, 100);
        let (_, c1) = choose_partition(&shape, 2, 1);
        let (p2, c2) = choose_partition(&shape, 2, 2);
        assert_eq!(p2.spec.parts, vec![2, 1]);
        assert_eq!(c2.max_comm, 2 * c1.max_comm);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The chosen partition is optimal: no enumerated feasible
        /// candidate has a strictly smaller cost key.
        #[test]
        fn chosen_is_optimal(
            ni in 10u64..300, nj in 10u64..300, procs in 1u32..9,
        ) {
            let shape = GridShape::d2(ni, nj);
            let (_, best_cost) = choose_partition(&shape, procs, 1);
            for parts in enumerate_factorizations(procs, 2) {
                if parts.iter().zip(&shape.extents).any(|(&p, &n)| u64::from(p) > n) {
                    continue;
                }
                let cand = crate::partition::partition(&shape, &PartitionSpec::new(&parts));
                let cost = PartitionCost::of(&cand, 1);
                prop_assert!(
                    (best_cost.max_comm, best_cost.total_comm)
                        <= (cost.max_comm, cost.total_comm),
                    "candidate {:?} beats chosen", parts
                );
            }
        }

        /// Factorizations always multiply back to p.
        #[test]
        fn factorizations_product(p in 1u32..64, rank in 1usize..4) {
            for f in enumerate_factorizations(p, rank) {
                prop_assert_eq!(f.iter().product::<u32>(), p);
                prop_assert_eq!(f.len(), rank);
            }
        }
    }
}
