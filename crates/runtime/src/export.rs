//! Trace exporters and aggregate metrics.
//!
//! Consumes a [`MergedTrace`] (or raw
//! per-rank traces) and produces:
//!
//! * [`chrome_trace`] — Chrome trace-event JSON with one track per rank,
//!   openable in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`;
//! * [`phase_metrics`] / [`render_phase_metrics`] — per-phase counters
//!   and wait/compute histograms (p50 / p95 / max), the
//!   compute-vs-comm-vs-wait breakdown per synchronization region;
//! * [`rank_breakdown`] / [`render_rank_breakdown`] — how much of each
//!   rank's wall time the trace accounts for, the coverage check the CI
//!   smoke test asserts on.

use crate::journal::MergedTrace;
use crate::trace::{EventKind, TraceEvent};
use serde::json::Value;
use std::time::Duration;

/// The flow id tying a send `ph:"s"` to its recv `ph:"f"`: the sender's
/// rank in the high bits, its per-endpoint sequence number in the low
/// 40. Both sides derive the same id independently (the recv carries
/// the sender's rank as `peer` and the sender's seq), so no cross-rank
/// coordination is needed at export time.
fn flow_id(sender: usize, seq: u64) -> i128 {
    ((sender as i128) << 40) | (seq as i128 & ((1 << 40) - 1))
}

/// Render a merged trace in Chrome trace-event JSON (object form, `"X"`
/// complete events, microsecond timestamps). Tracks: `pid` 0, one `tid`
/// per rank plus a `thread_name` metadata record; event names are
/// `<kind> <phase>` so Perfetto groups by activity.
///
/// Causality-stamped messages (journal schema 3) additionally emit flow
/// events — `ph:"s"` anchored in the send slice and `ph:"f"` /
/// `bp:"e"` anchored in the matching recv slice — so Perfetto draws a
/// send→recv arrow for every point-to-point message.
pub fn chrome_trace(merged: &MergedTrace) -> String {
    let mut events = Vec::new();
    for (rank, trace) in merged.traces.iter().enumerate() {
        events.push(Value::obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::Int(0)),
            ("tid", Value::Int(rank as i128)),
            (
                "args",
                Value::obj(vec![("name", Value::Str(format!("rank {rank}")))]),
            ),
        ]));
        let names = &merged.phase_names[rank];
        for e in trace {
            let phase = names
                .get(e.phase as usize)
                .cloned()
                .unwrap_or_else(|| format!("phase_{}", e.phase));
            let mut args = vec![("phase", Value::Str(phase.clone()))];
            if let Some(p) = e.peer {
                args.push(("peer", Value::Int(p as i128)));
            }
            if e.elems > 0 {
                args.push(("elems", Value::Int(e.elems as i128)));
            }
            if e.bytes > 0 {
                args.push(("bytes", Value::Int(e.bytes as i128)));
            }
            events.push(Value::obj(vec![
                ("name", Value::Str(format!("{} {}", e.kind.name(), phase))),
                ("cat", Value::Str(e.kind.name().into())),
                ("ph", Value::Str("X".into())),
                ("ts", Value::Float(e.start.as_nanos() as f64 / 1000.0)),
                ("dur", Value::Float(e.span().as_nanos() as f64 / 1000.0)),
                ("pid", Value::Int(0)),
                ("tid", Value::Int(rank as i128)),
                ("args", Value::obj(args)),
            ]));
            let flow = match (e.kind, e.peer, e.seq) {
                // the send starts the flow; the arrow leaves its slice
                (EventKind::Send, Some(_), Some(seq)) => Some(("s", flow_id(rank, seq), e.start)),
                // the recv finishes it; `peer` is the *sender*, so both
                // sides compute the same id
                (EventKind::Recv, Some(sender), Some(seq)) => {
                    Some(("f", flow_id(sender, seq), e.end))
                }
                _ => None,
            };
            if let Some((ph, id, ts)) = flow {
                let mut fields = vec![
                    ("name", Value::Str("msg".into())),
                    ("cat", Value::Str("flow".into())),
                    ("ph", Value::Str(ph.into())),
                    ("id", Value::Int(id)),
                    ("ts", Value::Float(ts.as_nanos() as f64 / 1000.0)),
                    ("pid", Value::Int(0)),
                    ("tid", Value::Int(rank as i128)),
                ];
                if ph == "f" {
                    // bind to the enclosing (recv) slice, not the next one
                    fields.push(("bp", Value::Str("e".into())));
                }
                events.push(Value::obj(fields));
            }
        }
    }
    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
    .to_string()
}

/// p50 / p95 / max over a set of span durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Percentiles {
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// Maximum.
    pub max: Duration,
}

/// Percentiles of a sample set (nearest-rank method; zeros if empty).
pub fn percentiles(samples: &mut [Duration]) -> Percentiles {
    if samples.is_empty() {
        return Percentiles::default();
    }
    samples.sort_unstable();
    let rank = |q: f64| {
        let idx = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
        samples[idx.min(samples.len() - 1)]
    };
    Percentiles {
        p50: rank(0.50),
        p95: rank(0.95),
        max: *samples.last().unwrap(),
    }
}

/// Aggregated activity of one program phase across all ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// Phase name.
    pub phase: String,
    /// Traced events in this phase (all kinds, all ranks).
    pub events: usize,
    /// Point-to-point + reduce messages.
    pub msgs: u64,
    /// Wire bytes moved.
    pub bytes: u64,
    /// Total compute-span time across ranks.
    pub compute: Duration,
    /// Total send/reduce busy time across ranks (communication proper).
    pub comm: Duration,
    /// Total blocked time (receive + barrier waits) across ranks.
    pub wait: Duration,
    /// Total overlapped-compute time across ranks: interior work done
    /// while halo exchanges were in flight (communication latency
    /// hidden behind computation).
    pub overlap: Duration,
    /// Distribution of individual compute spans.
    pub compute_hist: Percentiles,
    /// Distribution of individual wait spans.
    pub wait_hist: Percentiles,
    /// Compute-span time per rank (index = rank), the raw skew the
    /// advisor reasons about.
    pub compute_per_rank: Vec<Duration>,
}

impl PhaseMetrics {
    /// Per-rank compute skew: max over mean of [`Self::compute_per_rank`].
    /// `None` when the phase has no compute.
    pub fn imbalance(&self) -> Option<f64> {
        let total: Duration = self.compute_per_rank.iter().sum();
        if total.is_zero() || self.compute_per_rank.is_empty() {
            return None;
        }
        let mean = total.as_secs_f64() / self.compute_per_rank.len() as f64;
        let max = self
            .compute_per_rank
            .iter()
            .map(Duration::as_secs_f64)
            .fold(0.0, f64::max);
        Some(max / mean)
    }
}

/// Aggregate a merged trace into per-phase metrics, in first-appearance
/// order across ranks.
pub fn phase_metrics(merged: &MergedTrace) -> Vec<PhaseMetrics> {
    let mut order: Vec<String> = Vec::new();
    for (trace, names) in merged.traces.iter().zip(&merged.phase_names) {
        for e in trace {
            if let Some(name) = names.get(e.phase as usize) {
                if !order.contains(name) {
                    order.push(name.clone());
                }
            }
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for phase in &order {
        let mut m = PhaseMetrics {
            phase: phase.clone(),
            events: 0,
            msgs: 0,
            bytes: 0,
            compute: Duration::ZERO,
            comm: Duration::ZERO,
            wait: Duration::ZERO,
            overlap: Duration::ZERO,
            compute_hist: Percentiles::default(),
            wait_hist: Percentiles::default(),
            compute_per_rank: vec![Duration::ZERO; merged.traces.len()],
        };
        let mut compute_samples = Vec::new();
        let mut wait_samples = Vec::new();
        for (rank, (trace, names)) in merged.traces.iter().zip(&merged.phase_names).enumerate() {
            for e in trace {
                if names.get(e.phase as usize) != Some(phase) {
                    continue;
                }
                m.events += 1;
                m.bytes += e.bytes as u64;
                match e.kind {
                    EventKind::Compute => {
                        m.compute += e.span();
                        m.compute_per_rank[rank] += e.span();
                        compute_samples.push(e.span());
                    }
                    EventKind::Overlap => {
                        m.compute += e.span();
                        m.overlap += e.span();
                        m.compute_per_rank[rank] += e.span();
                        compute_samples.push(e.span());
                    }
                    EventKind::Send | EventKind::Reduce => {
                        m.msgs += 1;
                        m.comm += e.span();
                    }
                    EventKind::Recv => {
                        m.msgs += 1;
                        m.wait += e.wait();
                        wait_samples.push(e.wait());
                    }
                    EventKind::Barrier => {
                        m.wait += e.wait();
                        wait_samples.push(e.wait());
                    }
                }
            }
        }
        m.compute_hist = percentiles(&mut compute_samples);
        m.wait_hist = percentiles(&mut wait_samples);
        out.push(m);
    }
    out
}

fn dur(d: Duration) -> String {
    let us = d.as_nanos() as f64 / 1000.0;
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{us:.1}µs")
    }
}

/// Render per-phase metrics as a text table (one row per phase).
pub fn render_phase_metrics(metrics: &[PhaseMetrics]) -> String {
    let name_w = metrics
        .iter()
        .map(|m| m.phase.len())
        .chain(["phase".len()])
        .max()
        .unwrap_or(5);
    let mut out = format!(
        "{:name_w$}  {:>6}  {:>6}  {:>10}  {:>9}  {:>9}  {:>9}  {:>5}  {:>20}  {:>20}\n",
        "phase",
        "events",
        "msgs",
        "bytes",
        "compute",
        "comm",
        "wait",
        "imb",
        "wait p50/p95/max",
        "compute p50/p95/max",
    );
    for m in metrics {
        out.push_str(&format!(
            "{:name_w$}  {:>6}  {:>6}  {:>10}  {:>9}  {:>9}  {:>9}  {:>5}  {:>20}  {:>20}\n",
            m.phase,
            m.events,
            m.msgs,
            m.bytes,
            dur(m.compute),
            dur(m.comm),
            dur(m.wait),
            m.imbalance()
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".into()),
            format!(
                "{}/{}/{}",
                dur(m.wait_hist.p50),
                dur(m.wait_hist.p95),
                dur(m.wait_hist.max)
            ),
            format!(
                "{}/{}/{}",
                dur(m.compute_hist.p50),
                dur(m.compute_hist.p95),
                dur(m.compute_hist.max)
            ),
        ));
    }
    out
}

/// One rank's wall-time accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankBreakdown {
    /// Rank id (position in the merged trace).
    pub rank: usize,
    /// First event start to last event end.
    pub wall: Duration,
    /// Total compute-span time.
    pub compute: Duration,
    /// Total send/reduce busy time.
    pub comm: Duration,
    /// Total blocked (receive + barrier) time.
    pub wait: Duration,
}

impl RankBreakdown {
    /// Fraction of wall time the traced spans account for (0 when the
    /// trace is empty; spans never overlap on a rank, so ≤ ~1).
    pub fn coverage(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        (self.compute + self.comm + self.wait).as_secs_f64() / self.wall.as_secs_f64()
    }
}

/// Per-rank compute/comm/wait totals against the rank's traced wall
/// time (first event start → last event end).
pub fn rank_breakdown(traces: &[Vec<TraceEvent>]) -> Vec<RankBreakdown> {
    traces
        .iter()
        .enumerate()
        .map(|(rank, trace)| {
            let first = trace.iter().map(|e| e.start).min().unwrap_or_default();
            let last = trace.iter().map(|e| e.end).max().unwrap_or_default();
            let mut b = RankBreakdown {
                rank,
                wall: last.saturating_sub(first),
                compute: Duration::ZERO,
                comm: Duration::ZERO,
                wait: Duration::ZERO,
            };
            for e in trace {
                match e.kind {
                    EventKind::Compute | EventKind::Overlap => b.compute += e.span(),
                    EventKind::Send | EventKind::Reduce => b.comm += e.span(),
                    EventKind::Recv | EventKind::Barrier => b.wait += e.wait(),
                }
            }
            b
        })
        .collect()
}

/// Render the per-rank breakdown as a text table with a coverage column.
pub fn render_rank_breakdown(breakdowns: &[RankBreakdown]) -> String {
    let mut out = format!(
        "{:>6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>8}\n",
        "rank", "wall", "compute", "comm", "wait", "covered"
    );
    for b in breakdowns {
        out.push_str(&format!(
            "{:>6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>7.1}%\n",
            b.rank,
            dur(b.wall),
            dur(b.compute),
            dur(b.comm),
            dur(b.wait),
            b.coverage() * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{JournalEvent, JournalHeader, RankJournal, SCHEMA_VERSION};
    use serde::json;

    fn merged_fixture() -> MergedTrace {
        let mk = |rank: usize, events: Vec<JournalEvent>| RankJournal {
            header: JournalHeader {
                version: SCHEMA_VERSION,
                rank,
                ranks: 2,
                transport: "inproc".into(),
                epoch_unix_ns: 0,
            },
            events,
            complete: true,
            skipped: 0,
        };
        let ev = |kind, s: u64, e: u64, phase: &str| JournalEvent {
            kind,
            start: Duration::from_micros(s),
            end: Duration::from_micros(e),
            peer: if kind == EventKind::Send {
                Some(1)
            } else {
                None
            },
            elems: if kind == EventKind::Send { 8 } else { 0 },
            bytes: if kind == EventKind::Send { 64 } else { 0 },
            phase: phase.into(),
            engine: "tree".into(),
            seq: None,
        };
        crate::journal::merge(&[
            mk(
                0,
                vec![
                    ev(EventKind::Compute, 0, 40, "main"),
                    ev(EventKind::Send, 40, 40, "sync_0"),
                    ev(EventKind::Recv, 40, 90, "sync_0"),
                ],
            ),
            mk(
                1,
                vec![
                    ev(EventKind::Compute, 0, 80, "main"),
                    ev(EventKind::Barrier, 80, 100, "sync_0"),
                ],
            ),
        ])
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_track_per_rank() {
        let merged = merged_fixture();
        let text = chrome_trace(&merged);
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata records + 5 spans
        assert_eq!(events.len(), 7);
        let tids: Vec<i128> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .map(|e| e.get("tid").unwrap().as_int().unwrap())
            .collect();
        assert!(tids.contains(&0) && tids.contains(&1));
        let meta: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("rank 0")
        );
        // a send span carries its peer and wire bytes
        let send = events
            .iter()
            .find(|e| e.get("cat").map(|c| c.as_str()) == Some(Some("send")))
            .unwrap();
        assert_eq!(
            send.get("args").unwrap().get("peer").unwrap().as_int(),
            Some(1)
        );
        assert_eq!(
            send.get("args").unwrap().get("bytes").unwrap().as_int(),
            Some(64)
        );
    }

    /// Golden test for the flow-event export: a stamped send/recv pair
    /// must produce exactly one `ph:"s"` and one `ph:"f"` with the same
    /// id, and that id must be stable across runs (it is derived from
    /// `(sender_rank, seq)`, nothing time- or order-dependent).
    #[test]
    fn chrome_trace_emits_paired_flow_events_for_stamped_messages() {
        let mk = |rank: usize, events: Vec<JournalEvent>| RankJournal {
            header: JournalHeader {
                version: SCHEMA_VERSION,
                rank,
                ranks: 2,
                transport: "inproc".into(),
                epoch_unix_ns: 0,
            },
            events,
            complete: true,
            skipped: 0,
        };
        let msg = |kind, peer: usize, seq: u64, s: u64, e: u64| JournalEvent {
            kind,
            start: Duration::from_micros(s),
            end: Duration::from_micros(e),
            peer: Some(peer),
            elems: 8,
            bytes: 64,
            phase: "sync_0".into(),
            engine: "tree".into(),
            seq: Some(seq),
        };
        let merged = crate::journal::merge(&[
            mk(0, vec![msg(EventKind::Send, 1, 3, 10, 12)]),
            mk(1, vec![msg(EventKind::Recv, 0, 3, 10, 40)]),
        ]);
        let doc = json::parse(&chrome_trace(&merged)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let flows: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Value::as_str) == Some("flow"))
            .collect();
        assert_eq!(flows.len(), 2, "one start + one finish");
        let s = flows
            .iter()
            .find(|f| f.get("ph").unwrap().as_str() == Some("s"))
            .expect("flow start");
        let f = flows
            .iter()
            .find(|f| f.get("ph").unwrap().as_str() == Some("f"))
            .expect("flow finish");
        // the golden id: sender rank 0 << 40 | seq 3
        assert_eq!(s.get("id").unwrap().as_int(), Some(3));
        assert_eq!(f.get("id").unwrap().as_int(), Some(3));
        assert_eq!(s.get("tid").unwrap().as_int(), Some(0), "starts on sender");
        assert_eq!(f.get("tid").unwrap().as_int(), Some(1), "ends on receiver");
        assert_eq!(f.get("bp").unwrap().as_str(), Some("e"), "binds enclosing");
        assert!(s.get("bp").is_none());
        // anchored inside their slices: s at send start, f at recv end
        assert_eq!(s.get("ts").unwrap().as_f64(), Some(10.0));
        assert_eq!(f.get("ts").unwrap().as_f64(), Some(40.0));
        // a second export is byte-identical (stable ordering)
        assert_eq!(chrome_trace(&merged), chrome_trace(&merged));
    }

    #[test]
    fn flow_id_packs_rank_and_seq() {
        assert_eq!(flow_id(0, 1), 1);
        assert_eq!(flow_id(3, 1), (3 << 40) + 1);
        // ids never collide across sender ranks for in-range seqs
        assert_ne!(flow_id(1, 7), flow_id(2, 7));
    }

    #[test]
    fn phase_metrics_split_compute_comm_wait() {
        let merged = merged_fixture();
        let ms = phase_metrics(&merged);
        assert_eq!(ms.len(), 2);
        let main = &ms[0];
        assert_eq!(main.phase, "main");
        assert_eq!(main.events, 2);
        assert_eq!(main.compute, Duration::from_micros(120));
        assert_eq!(main.wait, Duration::ZERO);
        assert_eq!(main.compute_hist.max, Duration::from_micros(80));
        assert_eq!(main.compute_hist.p50, Duration::from_micros(40));
        let sync = &ms[1];
        assert_eq!(sync.phase, "sync_0");
        assert_eq!(sync.msgs, 2, "send + recv; barrier is not a message");
        assert_eq!(sync.bytes, 64);
        assert_eq!(sync.wait, Duration::from_micros(70), "recv 50 + barrier 20");
        let rendered = render_phase_metrics(&ms);
        assert!(rendered.contains("sync_0"), "{rendered}");
        assert!(rendered.lines().next().unwrap().contains("compute"));
    }

    #[test]
    fn overlap_counts_as_compute_and_accumulates_separately() {
        let journal = RankJournal {
            header: JournalHeader {
                version: SCHEMA_VERSION,
                rank: 0,
                ranks: 1,
                transport: "inproc".into(),
                epoch_unix_ns: 0,
            },
            events: vec![
                JournalEvent {
                    kind: EventKind::Overlap,
                    start: Duration::from_micros(0),
                    end: Duration::from_micros(30),
                    peer: None,
                    elems: 0,
                    bytes: 0,
                    phase: "sync_0".into(),
                    engine: "tree".into(),
                    seq: None,
                },
                JournalEvent {
                    kind: EventKind::Recv,
                    start: Duration::from_micros(30),
                    end: Duration::from_micros(40),
                    peer: Some(1),
                    elems: 4,
                    bytes: 32,
                    phase: "sync_0".into(),
                    engine: "tree".into(),
                    seq: Some(1),
                },
            ],
            complete: true,
            skipped: 0,
        };
        let merged = crate::journal::merge(&[journal]);
        let ms = phase_metrics(&merged);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].overlap, Duration::from_micros(30));
        assert_eq!(ms[0].compute, Duration::from_micros(30), "overlap is work");
        assert_eq!(ms[0].wait, Duration::from_micros(10));
        let b = rank_breakdown(&merged.traces);
        assert_eq!(b[0].compute, Duration::from_micros(30));
        assert_eq!(b[0].wait, Duration::from_micros(10));
        assert!((b[0].coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_breakdown_covers_wall_time() {
        let merged = merged_fixture();
        let b = rank_breakdown(&merged.traces);
        assert_eq!(b[0].wall, Duration::from_micros(90));
        assert_eq!(b[0].compute, Duration::from_micros(40));
        assert_eq!(b[0].wait, Duration::from_micros(50));
        assert!(b[0].coverage() > 0.99, "{}", b[0].coverage());
        assert_eq!(b[1].wall, Duration::from_micros(100));
        assert!((b[1].coverage() - 1.0).abs() < 1e-9);
        let rendered = render_rank_breakdown(&b);
        assert!(rendered.contains("covered"), "{rendered}");
        assert!(rendered.contains("100.0%"), "{rendered}");
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let p = percentiles(&mut samples);
        assert_eq!(p.p50, Duration::from_micros(50));
        assert_eq!(p.p95, Duration::from_micros(95));
        assert_eq!(p.max, Duration::from_micros(100));
        assert_eq!(percentiles(&mut Vec::new()), Percentiles::default());
    }
}
