//! Per-rank execution traces and text renderers.
//!
//! The paper reasons about *where time goes* in the generated programs —
//! pipeline stalls from mirror-image decomposition, communication versus
//! computation, barrier waits. The communicator records every
//! communication event with wall-clock timestamps, wire footprint, and
//! the program phase it ran in; [`render_timeline`] turns the per-rank
//! traces into a text Gantt chart, and [`render_wire_table`] breaks the
//! wire traffic down per rank per phase — identically for the in-process
//! and TCP transports, since both feed the same trace.

use std::time::{Duration, Instant};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A buffered send (instantaneous).
    Send,
    /// A receive: `start..end` spans the blocked wait.
    Recv,
    /// A barrier wait.
    Barrier,
    /// An allreduce (includes its internal waits).
    Reduce,
    /// Local computation: `start..end` spans time spent *outside* the
    /// communicator (loop-nest execution, halo pack/unpack).
    Compute,
    /// Interior computation overlapped with in-flight halo exchange:
    /// like [`EventKind::Compute`], but the span runs between posting
    /// nonblocking ghost sends/receives and waiting on them, so its
    /// duration is communication latency *hidden* behind useful work.
    Overlap,
}

impl EventKind {
    /// Stable lowercase name, used by the journal and exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::Barrier => "barrier",
            EventKind::Reduce => "reduce",
            EventKind::Compute => "compute",
            EventKind::Overlap => "overlap",
        }
    }

    /// Inverse of [`EventKind::name`].
    pub fn from_name(s: &str) -> Option<EventKind> {
        Some(match s {
            "send" => EventKind::Send,
            "recv" => EventKind::Recv,
            "barrier" => EventKind::Barrier,
            "reduce" => EventKind::Reduce,
            "compute" => EventKind::Compute,
            "overlap" => EventKind::Overlap,
            _ => return None,
        })
    }
}

/// One traced event on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Offset from the communicator epoch at event start.
    pub start: Duration,
    /// Offset at event end (== `start` for sends).
    pub end: Duration,
    /// Peer rank: `Some(receiver)` for sends, `Some(source)` for
    /// receives, `None` for collectives and compute spans.
    pub peer: Option<usize>,
    /// Payload f64 elements (0 for barrier and compute).
    pub elems: usize,
    /// Wire bytes moved by this event (framed size on networked
    /// transports; payload size in-process; 0 for barrier and compute).
    pub bytes: usize,
    /// Index into the rank's phase-name list (see
    /// [`crate::Comm::phase_names`]) identifying the program phase this
    /// event ran in.
    pub phase: u32,
    /// Cross-rank causality stamp. For sends: this message's
    /// per-endpoint sequence number. For receives: the *sender's*
    /// sequence number, so `(peer, seq)` pairs the receive with exactly
    /// one send event on the peer's trace. `None` for collectives,
    /// compute spans, and events recorded before stamping existed.
    pub seq: Option<u64>,
}

impl TraceEvent {
    /// Time spent blocked in this event (zero for compute and overlap
    /// spans, which are working, not waiting).
    pub fn wait(&self) -> Duration {
        if matches!(self.kind, EventKind::Compute | EventKind::Overlap) {
            return Duration::ZERO;
        }
        self.end.saturating_sub(self.start)
    }

    /// Span duration, regardless of kind.
    pub fn span(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// A sink for timed execution spans. The interpreter records compute
/// spans against whatever recorder its hooks expose; [`crate::Comm`]
/// implements this by appending to its own trace under the current
/// phase, so compute and communication share one timeline.
pub trait Recorder {
    /// Record a span of kind `kind` running from `start` to `end`
    /// (wall-clock instants; the recorder translates to its epoch).
    fn record_span(&self, kind: EventKind, start: Instant, end: Instant);
}

/// Summarize a rank's trace: `(events, total wait, elems sent+received)`.
/// Compute spans count as events but contribute no wait and no elements.
pub fn summarize(trace: &[TraceEvent]) -> (usize, Duration, usize) {
    let wait = trace.iter().map(TraceEvent::wait).sum();
    let elems = trace.iter().map(|e| e.elems).sum();
    (trace.len(), wait, elems)
}

/// Total wire bytes a rank moved (sent + received), from its trace.
pub fn wire_bytes(trace: &[TraceEvent]) -> u64 {
    trace.iter().map(|e| e.bytes as u64).sum()
}

/// Aggregate one rank's trace into per-phase wire traffic:
/// `(phase name, messages, bytes)` in phase-index order, skipping phases
/// with no traced *communication* events (compute spans are ignored —
/// this is a wire table). `phase_names` is the rank's phase list
/// ([`crate::Comm::phase_names`]).
pub fn wire_by_phase(trace: &[TraceEvent], phase_names: &[String]) -> Vec<(String, u64, u64)> {
    let slots = phase_names.len().max(
        trace
            .iter()
            .map(|e| e.phase as usize + 1)
            .max()
            .unwrap_or(0),
    );
    let mut msgs = vec![0u64; slots];
    let mut bytes = vec![0u64; slots];
    let mut touched = vec![false; slots];
    for e in trace {
        if matches!(e.kind, EventKind::Compute | EventKind::Overlap) {
            continue;
        }
        let p = e.phase as usize;
        touched[p] = true;
        bytes[p] += e.bytes as u64;
        if matches!(
            e.kind,
            EventKind::Send | EventKind::Recv | EventKind::Reduce
        ) {
            msgs[p] += 1;
        }
    }
    (0..slots)
        .filter(|&p| touched[p])
        .map(|p| {
            let name = phase_names
                .get(p)
                .cloned()
                .unwrap_or_else(|| format!("phase_{p}"));
            (name, msgs[p], bytes[p])
        })
        .collect()
}

/// Render per-rank per-phase wire traffic as a text table.
///
/// `traces[r]` and `phase_names[r]` are rank `r`'s trace and phase list.
/// Rows are phases in first-appearance order across ranks; cells are
/// `msgs/bytes`; a final column and row total per phase and per rank.
pub fn render_wire_table(traces: &[Vec<TraceEvent>], phase_names: &[Vec<String>]) -> String {
    let n = traces.len();
    // ordered union of phase names with any traffic
    let mut phases: Vec<String> = Vec::new();
    let per_rank: Vec<Vec<(String, u64, u64)>> = traces
        .iter()
        .zip(phase_names)
        .map(|(t, names)| wire_by_phase(t, names))
        .collect();
    for rows in &per_rank {
        for (name, _, _) in rows {
            if !phases.contains(name) {
                phases.push(name.clone());
            }
        }
    }
    let cell = |msgs: u64, bytes: u64| {
        if msgs == 0 && bytes == 0 {
            "-".to_string()
        } else {
            format!("{msgs} msg/{bytes} B")
        }
    };
    let name_w = phases
        .iter()
        .map(|p| p.len())
        .chain(["phase".len(), "total".len()])
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    out.push_str(&format!("{:name_w$}", "phase"));
    for r in 0..n {
        out.push_str(&format!("  {:>16}", format!("rank {r}")));
    }
    out.push_str(&format!("  {:>16}\n", "total"));
    let mut rank_totals = vec![(0u64, 0u64); n];
    for phase in &phases {
        out.push_str(&format!("{phase:name_w$}"));
        let (mut pm, mut pb) = (0u64, 0u64);
        for (r, rows) in per_rank.iter().enumerate() {
            let (m, b) = rows
                .iter()
                .find(|(name, _, _)| name == phase)
                .map(|&(_, m, b)| (m, b))
                .unwrap_or((0, 0));
            pm += m;
            pb += b;
            rank_totals[r].0 += m;
            rank_totals[r].1 += b;
            out.push_str(&format!("  {:>16}", cell(m, b)));
        }
        out.push_str(&format!("  {:>16}\n", cell(pm, pb)));
    }
    out.push_str(&format!("{:name_w$}", "total"));
    let (mut tm, mut tb) = (0u64, 0u64);
    for &(m, b) in &rank_totals {
        tm += m;
        tb += b;
        out.push_str(&format!("  {:>16}", cell(m, b)));
    }
    out.push_str(&format!("  {:>16}\n", cell(tm, tb)));
    out
}

/// Render per-rank traces as a fixed-width text timeline.
///
/// Each row is one rank; each column a time bucket. The glyph is the
/// dominant activity in the bucket: `R` receive-wait, `B` barrier,
/// `A` allreduce, `s` send, `C` compute span, `O` overlapped compute,
/// `·` idle (no traced event). Waits dominate sends dominate compute
/// dominates idle.
pub fn render_timeline(traces: &[Vec<TraceEvent>], width: usize) -> String {
    let width = width.max(10);
    let horizon = traces
        .iter()
        .flat_map(|t| t.iter().map(|e| e.end))
        .max()
        .unwrap_or_default();
    if horizon.is_zero() {
        return traces
            .iter()
            .enumerate()
            .map(|(r, _)| format!("rank {r} |{}|\n", "·".repeat(width)))
            .collect();
    }
    // precedence of a glyph when buckets contend
    fn strength(g: char) -> u8 {
        match g {
            'R' | 'B' | 'A' => 3,
            's' => 2,
            'C' | 'O' => 1,
            _ => 0,
        }
    }
    let bucket = horizon.as_secs_f64() / width as f64;
    let mut out = String::new();
    for (r, trace) in traces.iter().enumerate() {
        let mut row = vec!['·'; width];
        for e in trace {
            let b0 = ((e.start.as_secs_f64() / bucket) as usize).min(width - 1);
            let b1 = ((e.end.as_secs_f64() / bucket) as usize).min(width - 1);
            let glyph = match e.kind {
                EventKind::Send => 's',
                EventKind::Recv => 'R',
                EventKind::Barrier => 'B',
                EventKind::Reduce => 'A',
                EventKind::Compute => 'C',
                EventKind::Overlap => 'O',
            };
            for cell in row.iter_mut().take(b1 + 1).skip(b0) {
                if strength(glyph) >= strength(*cell) {
                    *cell = glyph;
                }
            }
        }
        out.push_str(&format!("rank {r} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "        0{}{:?}\n        (R recv-wait, B barrier, A allreduce, s send, C compute, O overlap, · idle)\n",
        " ".repeat(width.saturating_sub(1)),
        horizon
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, start_ms: u64, end_ms: u64, elems: usize) -> TraceEvent {
        ev_in(kind, start_ms, end_ms, elems, 0)
    }

    fn ev_in(kind: EventKind, start_ms: u64, end_ms: u64, elems: usize, phase: u32) -> TraceEvent {
        TraceEvent {
            kind,
            start: Duration::from_millis(start_ms),
            end: Duration::from_millis(end_ms),
            peer: None,
            elems,
            bytes: elems * 8,
            phase,
            seq: None,
        }
    }

    #[test]
    fn summarize_totals() {
        let t = vec![
            ev(EventKind::Send, 1, 1, 10),
            ev(EventKind::Recv, 2, 7, 10),
            ev(EventKind::Barrier, 9, 10, 0),
        ];
        let (n, wait, elems) = summarize(&t);
        assert_eq!(n, 3);
        assert_eq!(wait, Duration::from_millis(6));
        assert_eq!(elems, 20);
        assert_eq!(wire_bytes(&t), 160);
    }

    #[test]
    fn render_rows_per_rank() {
        let traces = vec![
            vec![ev(EventKind::Recv, 0, 50, 5)],
            vec![
                ev(EventKind::Send, 10, 10, 5),
                ev(EventKind::Reduce, 80, 100, 1),
            ],
        ];
        let s = render_timeline(&traces, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("rank 0 |"));
        assert!(lines[1].starts_with("rank 1 |"));
        assert!(lines[0].contains('R'));
        assert!(lines[1].contains('s'));
        assert!(lines[1].contains('A'));
    }

    #[test]
    fn empty_traces_render() {
        let s = render_timeline(&[vec![], vec![]], 12);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("·"));
    }

    #[test]
    fn waits_dominate_sends_in_a_bucket() {
        let traces = vec![vec![
            ev(EventKind::Recv, 0, 100, 1),
            ev(EventKind::Send, 50, 50, 1),
        ]];
        let s = render_timeline(&traces, 10);
        let row = s.lines().next().unwrap();
        assert!(
            !row.contains('s'),
            "send must not overwrite the wait: {row}"
        );
    }

    #[test]
    fn wire_by_phase_groups_and_skips_silent_phases() {
        let names: Vec<String> = ["main", "sync_0", "quiet", "reduce_err"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let trace = vec![
            ev_in(EventKind::Send, 0, 0, 4, 1),
            ev_in(EventKind::Recv, 1, 2, 4, 1),
            ev_in(EventKind::Reduce, 3, 4, 1, 3),
            ev_in(EventKind::Barrier, 5, 6, 0, 3),
        ];
        let rows = wire_by_phase(&trace, &names);
        assert_eq!(
            rows,
            vec![
                ("sync_0".to_string(), 2, 64),
                ("reduce_err".to_string(), 1, 8),
            ]
        );
    }

    #[test]
    fn wire_table_totals_add_up() {
        let names = vec![
            vec!["main".to_string(), "sync_0".to_string()],
            vec!["main".to_string(), "sync_0".to_string()],
        ];
        let traces = vec![
            vec![ev_in(EventKind::Send, 0, 0, 8, 1)],
            vec![ev_in(EventKind::Recv, 0, 1, 8, 1)],
        ];
        let s = render_wire_table(&traces, &names);
        assert!(s.contains("sync_0"), "{s}");
        assert!(s.contains("1 msg/64 B"), "{s}");
        // grand total: 2 messages, 128 bytes
        assert!(s.contains("2 msg/128 B"), "{s}");
        assert!(s.lines().next().unwrap().contains("rank 0"));
    }

    #[test]
    fn compute_spans_have_no_wait_and_no_wire_footprint() {
        let t = vec![
            ev(EventKind::Compute, 0, 40, 0),
            ev(EventKind::Recv, 40, 50, 4),
        ];
        let (n, wait, elems) = summarize(&t);
        assert_eq!(n, 2);
        assert_eq!(wait, Duration::from_millis(10), "compute is not wait");
        assert_eq!(elems, 4);
        assert_eq!(t[0].span(), Duration::from_millis(40));
        // compute never shows up in the wire table
        let names = vec!["main".to_string()];
        let rows = wire_by_phase(&t, &names);
        assert_eq!(rows, vec![("main".to_string(), 1, 32)]);
        let quiet = vec![ev(EventKind::Compute, 0, 40, 0)];
        assert!(wire_by_phase(&quiet, &names).is_empty());
    }

    #[test]
    fn overlap_spans_hide_wait_and_stay_off_the_wire_table() {
        let t = vec![
            ev(EventKind::Overlap, 0, 30, 0),
            ev(EventKind::Recv, 30, 35, 4),
        ];
        let (n, wait, _) = summarize(&t);
        assert_eq!(n, 2);
        assert_eq!(wait, Duration::from_millis(5), "overlap is not wait");
        let names = vec!["main".to_string()];
        assert_eq!(wire_by_phase(&t, &names), vec![("main".to_string(), 1, 32)]);
        let s = render_timeline(&[t], 10);
        assert!(s.lines().next().unwrap().contains('O'), "{s}");
    }

    #[test]
    fn event_kind_names_round_trip() {
        for k in [
            EventKind::Send,
            EventKind::Recv,
            EventKind::Barrier,
            EventKind::Reduce,
            EventKind::Compute,
            EventKind::Overlap,
        ] {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_name("mystery"), None);
    }

    #[test]
    fn timeline_golden_output() {
        // rank 0: compute 0-40 ms, recv 40-80 ms, barrier 80-100 ms
        // rank 1: compute 0-70 ms, send at 70 ms, barrier 80-100 ms
        let traces = vec![
            vec![
                ev(EventKind::Compute, 0, 40, 0),
                ev(EventKind::Recv, 40, 80, 8),
                ev(EventKind::Barrier, 80, 100, 0),
            ],
            vec![
                ev(EventKind::Compute, 0, 70, 0),
                ev(EventKind::Send, 70, 70, 8),
                ev(EventKind::Barrier, 80, 100, 0),
            ],
        ];
        let s = render_timeline(&traces, 10);
        let expect = "\
rank 0 |CCCCRRRRBB|
rank 1 |CCCCCCCsBB|
        0         100ms
        (R recv-wait, B barrier, A allreduce, s send, C compute, O overlap, · idle)\n";
        assert_eq!(s, expect);
    }

    #[test]
    fn wire_table_golden_output() {
        let names = vec![
            vec!["main".to_string(), "sync_0".to_string()],
            vec!["main".to_string(), "sync_0".to_string()],
        ];
        let traces = vec![
            vec![
                ev_in(EventKind::Compute, 0, 5, 0, 0),
                ev_in(EventKind::Send, 5, 5, 8, 1),
            ],
            vec![ev_in(EventKind::Recv, 5, 6, 8, 1)],
        ];
        let s = render_wire_table(&traces, &names);
        let expect = "\
phase             rank 0            rank 1             total
sync_0        1 msg/64 B        1 msg/64 B       2 msg/128 B
total         1 msg/64 B        1 msg/64 B       2 msg/128 B\n";
        assert_eq!(s, expect);
    }
}
