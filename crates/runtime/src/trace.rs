//! Per-rank execution traces and a text timeline renderer.
//!
//! The paper reasons about *where time goes* in the generated programs —
//! pipeline stalls from mirror-image decomposition, communication versus
//! computation, barrier waits. The communicator records every
//! communication event with wall-clock timestamps, and
//! [`render_timeline`] turns the per-rank traces into a text Gantt chart
//! so a user can *see* the pipeline skew of a self-dependent sweep or
//! the synchronization structure of a frame.

use std::time::Duration;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A buffered send (instantaneous).
    Send,
    /// A receive: `start..end` spans the blocked wait.
    Recv,
    /// A barrier wait.
    Barrier,
    /// An allreduce (includes its internal waits).
    Reduce,
}

/// One traced event on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Offset from the communicator epoch at event start.
    pub start: Duration,
    /// Offset at event end (== `start` for sends).
    pub end: Duration,
    /// Peer rank (receiver for sends, source for receives; 0 for
    /// collectives).
    pub peer: usize,
    /// Payload f64 elements (0 for barrier).
    pub elems: usize,
}

impl TraceEvent {
    /// Time spent blocked in this event.
    pub fn wait(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// Summarize a rank's trace: `(events, total wait, elems sent+received)`.
pub fn summarize(trace: &[TraceEvent]) -> (usize, Duration, usize) {
    let wait = trace.iter().map(TraceEvent::wait).sum();
    let elems = trace.iter().map(|e| e.elems).sum();
    (trace.len(), wait, elems)
}

/// Render per-rank traces as a fixed-width text timeline.
///
/// Each row is one rank; each column a time bucket. The glyph is the
/// dominant activity in the bucket: `R` receive-wait, `B` barrier,
/// `A` allreduce, `s` send, `·` compute/idle (no traced event).
pub fn render_timeline(traces: &[Vec<TraceEvent>], width: usize) -> String {
    let width = width.max(10);
    let horizon = traces
        .iter()
        .flat_map(|t| t.iter().map(|e| e.end))
        .max()
        .unwrap_or_default();
    if horizon.is_zero() {
        return traces
            .iter()
            .enumerate()
            .map(|(r, _)| format!("rank {r} |{}|\n", "·".repeat(width)))
            .collect();
    }
    let bucket = horizon.as_secs_f64() / width as f64;
    let mut out = String::new();
    for (r, trace) in traces.iter().enumerate() {
        let mut row = vec!['·'; width];
        for e in trace {
            let b0 = ((e.start.as_secs_f64() / bucket) as usize).min(width - 1);
            let b1 = ((e.end.as_secs_f64() / bucket) as usize).min(width - 1);
            let glyph = match e.kind {
                EventKind::Send => 's',
                EventKind::Recv => 'R',
                EventKind::Barrier => 'B',
                EventKind::Reduce => 'A',
            };
            for cell in row.iter_mut().take(b1 + 1).skip(b0) {
                // precedence: waits dominate sends dominate idle
                let keep = matches!(*cell, 'R' | 'B' | 'A') && glyph == 's';
                if !keep {
                    *cell = glyph;
                }
            }
        }
        out.push_str(&format!("rank {r} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "        0{}{:?}\n        (R recv-wait, B barrier, A allreduce, s send, · compute)\n",
        " ".repeat(width.saturating_sub(1)),
        horizon
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, start_ms: u64, end_ms: u64, elems: usize) -> TraceEvent {
        TraceEvent {
            kind,
            start: Duration::from_millis(start_ms),
            end: Duration::from_millis(end_ms),
            peer: 0,
            elems,
        }
    }

    #[test]
    fn summarize_totals() {
        let t = vec![
            ev(EventKind::Send, 1, 1, 10),
            ev(EventKind::Recv, 2, 7, 10),
            ev(EventKind::Barrier, 9, 10, 0),
        ];
        let (n, wait, elems) = summarize(&t);
        assert_eq!(n, 3);
        assert_eq!(wait, Duration::from_millis(6));
        assert_eq!(elems, 20);
    }

    #[test]
    fn render_rows_per_rank() {
        let traces = vec![
            vec![ev(EventKind::Recv, 0, 50, 5)],
            vec![
                ev(EventKind::Send, 10, 10, 5),
                ev(EventKind::Reduce, 80, 100, 1),
            ],
        ];
        let s = render_timeline(&traces, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("rank 0 |"));
        assert!(lines[1].starts_with("rank 1 |"));
        assert!(lines[0].contains('R'));
        assert!(lines[1].contains('s'));
        assert!(lines[1].contains('A'));
    }

    #[test]
    fn empty_traces_render() {
        let s = render_timeline(&[vec![], vec![]], 12);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("·"));
    }

    #[test]
    fn waits_dominate_sends_in_a_bucket() {
        let traces = vec![vec![
            ev(EventKind::Recv, 0, 100, 1),
            ev(EventKind::Send, 50, 50, 1),
        ]];
        let s = render_timeline(&traces, 10);
        let row = s.lines().next().unwrap();
        assert!(
            !row.contains('s'),
            "send must not overwrite the wait: {row}"
        );
    }
}
