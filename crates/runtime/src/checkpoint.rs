//! Epoch checkpoint/restart: schema-versioned per-rank snapshots.
//!
//! A *checkpoint-safe* synchronization point (marked by the compiler in
//! the `SpmdPlan`) is a `call acf_sync_<k>` statement in the main
//! program unit. At the start of such a call the hook set has already
//! completed every pending `isend`/`irecv`, the interpreter's control
//! stack is just the main unit, and no message addressed to the
//! not-yet-executed sync exists anywhere in the mesh — so a snapshot of
//! (arrays, scalars, I/O queues, counters, loop cursor) taken there is
//! a globally consistent cut: restoring every rank at the same visit of
//! the same sync and *re-executing* the sync regenerates all in-flight
//! traffic deterministically. See DESIGN.md §11 for the protocol.
//!
//! This module owns the portable snapshot data model and its on-disk
//! layout; the interpreter layer (`autocfd-interp`) converts machine
//! state to and from [`Snapshot`]s. Layout under a checkpoint
//! directory:
//!
//! ```text
//! DIR/run.json              — relaunch manifest (source, partition, flags)
//! DIR/epoch-<E>/rank-<r>.json — per-rank snapshot of checkpoint epoch E
//! ```
//!
//! Snapshots are written to a temp file and atomically renamed, so a
//! crash mid-write leaves at most a stray `.tmp` file, never a
//! half-readable snapshot under the final name. Recovery picks the
//! newest epoch for which *all* ranks' snapshots parse and agree
//! ([`latest_consistent_epoch`]); a torn or missing file simply makes
//! recovery fall back to the previous complete epoch.
//!
//! All floating-point payloads are stored as IEEE-754 bit patterns
//! (`f64::to_bits`) in JSON integers, so restore is bit-exact including
//! negative zero, infinities and NaN payloads.

use serde::json::{self, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version of the snapshot/manifest schema. Bump on any incompatible
/// change; loaders reject versions they do not know instead of
/// guessing. Version 2 added partition geometry: each snapshot records
/// the `parts` its owned regions were cut for, and the manifest records
/// the global grid extents — together they make a checkpoint directory
/// self-describing enough to re-decompose onto a different rank count.
/// Version 1 files read back with both left empty (geometry unknown:
/// same-rank-count resume still works, elastic resume refuses).
pub const CHECKPOINT_SCHEMA_VERSION: i64 = 2;

/// Progress of one active `do` loop on the path from the top of the
/// main unit to the checkpoint statement, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoProgress {
    /// Loop variable name.
    pub var: String,
    /// The loop variable's value in the iteration being snapshotted.
    pub iv: i64,
    /// Loop step.
    pub step: i64,
    /// Full iterations still to run *after* the current one finishes.
    pub remaining: u64,
}

/// Where in the main unit execution stood when the snapshot was taken:
/// the checkpoint statement plus the state of every enclosing `do`.
/// `if`/`do while` levels on the path need no saved state — their arms
/// are rediscovered statically and their conditions re-evaluated from
/// the restored scalars.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cursor {
    /// Statement id of the `call acf_sync_<k>` the snapshot cuts at.
    pub stmt: u32,
    /// Enclosing `do` loops, outermost first.
    pub dos: Vec<DoProgress>,
}

/// Plan-independent source coordinates of the gap the snapshot was cut
/// at: which statement list of the main unit, and the index of the
/// source-statement gap within it. Statement ids are minted by the
/// parser, *before* any partition-specific rewriting, so two compiles
/// of the same source agree on these coordinates even when their
/// inserted sync sets (and hence the cursor's statement ids) differ —
/// this is what lets an elastic resume map a cut taken under one
/// partition onto another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CutSite {
    /// List discriminant: 0 = unit body, 1 = `do` body, 2 = `then` arm,
    /// 3 = `else if` arm, 4 = `else` arm.
    pub list_kind: u8,
    /// Source id of the statement owning the list (0 for the unit body).
    pub list_stmt: u32,
    /// `else if` arm ordinal (0 otherwise).
    pub arm: u32,
    /// Source-statement gap index within the list.
    pub gap: u64,
}

/// One array's saved contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySnap {
    /// Binding name (frame variable or common-block member).
    pub name: String,
    /// Declared `(lower, upper)` bounds per dimension.
    pub bounds: Vec<(i64, i64)>,
    /// True if declared `integer`.
    pub is_int: bool,
    /// Column-major element storage as `f64::to_bits` patterns.
    pub data: Vec<u64>,
}

/// One scalar's saved value.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarSnap {
    /// Fortran `integer`.
    Int(i64),
    /// Fortran `real`/`double precision`, as its IEEE-754 bit pattern.
    Real(u64),
    /// Fortran `logical`.
    Logical(bool),
    /// Character value.
    Str(String),
}

/// Saved operation counters (restored so resumed profiles stay
/// comparable to uninterrupted runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpsSnap {
    /// Floating-point operations.
    pub flops: u64,
    /// Array element loads.
    pub loads: u64,
    /// Array element stores.
    pub stores: u64,
    /// Statements executed.
    pub stmts: u64,
}

/// A complete per-rank snapshot at one checkpoint epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Owning rank.
    pub rank: usize,
    /// Mesh size the run was partitioned for.
    pub ranks: usize,
    /// Partition parts per grid axis the owned regions were cut for
    /// (empty when loaded from a pre-geometry snapshot).
    pub parts: Vec<u32>,
    /// Checkpoint epoch: the count of checkpoint-safe sync visits made
    /// when this snapshot was cut. All ranks of one epoch agree.
    pub epoch: u64,
    /// Id of the sync (`acf_sync_<id>`) the snapshot cuts at.
    pub sync_id: u32,
    /// Resume position in the main unit.
    pub cursor: Cursor,
    /// Source coordinates of the cut gap (`None` on pre-geometry
    /// snapshots, which elastic resume refuses).
    pub cut: Option<CutSite>,
    /// Main-frame local arrays (excluding common-block members).
    pub arrays: Vec<ArraySnap>,
    /// Common-block members as `(block, member, contents)`.
    pub commons: Vec<(String, String, ArraySnap)>,
    /// Main-frame scalars.
    pub scalars: Vec<(String, ScalarSnap)>,
    /// Unconsumed list-directed input, as bit patterns.
    pub input: Vec<u64>,
    /// `write` output captured so far.
    pub output: Vec<String>,
    /// Operation counters at the cut.
    pub ops: OpsSnap,
}

/// Relaunch manifest written next to the snapshots: everything `acfc
/// resume DIR` needs to recompile the identical program (statement ids
/// are minted deterministically, so an identical compile yields the
/// same plan and the saved cursor stays valid) and relaunch the mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Original Fortran source text, embedded verbatim.
    pub source: String,
    /// Partition parts per grid axis.
    pub parts: Vec<u32>,
    /// Global grid extents per axis (the `!$acf grid(...)` directive),
    /// so a resume can re-partition for a different rank count without
    /// recompiling first. Empty when the manifest predates geometry
    /// recording.
    pub grid: Vec<u64>,
    /// Mesh size.
    pub ranks: usize,
    /// Dependence-test distance limit the compile used.
    pub distance: i64,
    /// Whether sync merging/optimization was on.
    pub optimize: bool,
    /// Whether compute/communication overlap was on.
    pub overlap: bool,
    /// Checkpoint cadence (snapshot every N checkpoint-safe visits).
    pub checkpoint_every: u64,
    /// Receive timeout in milliseconds.
    pub timeout_ms: u64,
    /// Execution engine name (`"tree"` or `"kernel"`) the run used —
    /// a plain string here because this crate sits below the planner.
    /// Manifests written before engines existed read back as `"tree"`.
    pub engine: String,
    /// Kernel-engine worker threads (1 for sequential kernels and for
    /// the tree engine). Pre-engine manifests read back as 1.
    pub threads: u64,
}

// ---------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------

fn bits_arr(bits: &[u64]) -> Value {
    Value::Arr(bits.iter().map(|&b| Value::Int(i128::from(b))).collect())
}

fn array_snap_json(a: &ArraySnap) -> Value {
    Value::obj(vec![
        ("name", Value::Str(a.name.clone())),
        (
            "bounds",
            Value::Arr(
                a.bounds
                    .iter()
                    .map(|&(lo, hi)| {
                        Value::Arr(vec![Value::Int(i128::from(lo)), Value::Int(i128::from(hi))])
                    })
                    .collect(),
            ),
        ),
        ("is_int", Value::Bool(a.is_int)),
        ("data", bits_arr(&a.data)),
    ])
}

fn scalar_json(s: &ScalarSnap) -> Value {
    match s {
        ScalarSnap::Int(v) => Value::obj(vec![
            ("t", Value::Str("int".into())),
            ("v", Value::Int(i128::from(*v))),
        ]),
        ScalarSnap::Real(bits) => Value::obj(vec![
            ("t", Value::Str("real".into())),
            ("bits", Value::Int(i128::from(*bits))),
        ]),
        ScalarSnap::Logical(b) => Value::obj(vec![
            ("t", Value::Str("log".into())),
            ("v", Value::Bool(*b)),
        ]),
        ScalarSnap::Str(s) => Value::obj(vec![
            ("t", Value::Str("str".into())),
            ("v", Value::Str(s.clone())),
        ]),
    }
}

/// Render a snapshot as schema-versioned JSON.
pub fn snapshot_to_json(s: &Snapshot) -> String {
    let cursor = Value::obj(vec![
        ("stmt", Value::Int(i128::from(s.cursor.stmt))),
        (
            "dos",
            Value::Arr(
                s.cursor
                    .dos
                    .iter()
                    .map(|d| {
                        Value::obj(vec![
                            ("var", Value::Str(d.var.clone())),
                            ("iv", Value::Int(i128::from(d.iv))),
                            ("step", Value::Int(i128::from(d.step))),
                            ("remaining", Value::Int(i128::from(d.remaining))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut fields = vec![
        ("version", Value::Int(i128::from(CHECKPOINT_SCHEMA_VERSION))),
        ("rank", Value::Int(s.rank as i128)),
        ("ranks", Value::Int(s.ranks as i128)),
        (
            "parts",
            Value::Arr(s.parts.iter().map(|&p| Value::Int(i128::from(p))).collect()),
        ),
        ("epoch", Value::Int(i128::from(s.epoch))),
        ("sync_id", Value::Int(i128::from(s.sync_id))),
        ("cursor", cursor),
    ];
    if let Some(c) = &s.cut {
        fields.push((
            "cut",
            Value::obj(vec![
                ("kind", Value::Int(i128::from(c.list_kind))),
                ("stmt", Value::Int(i128::from(c.list_stmt))),
                ("arm", Value::Int(i128::from(c.arm))),
                ("gap", Value::Int(i128::from(c.gap))),
            ]),
        ));
    }
    fields.extend(vec![
        (
            "arrays",
            Value::Arr(s.arrays.iter().map(array_snap_json).collect()),
        ),
        (
            "commons",
            Value::Arr(
                s.commons
                    .iter()
                    .map(|(block, name, a)| {
                        Value::obj(vec![
                            ("block", Value::Str(block.clone())),
                            ("member", Value::Str(name.clone())),
                            ("array", array_snap_json(a)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "scalars",
            Value::Arr(
                s.scalars
                    .iter()
                    .map(|(name, v)| {
                        Value::obj(vec![
                            ("name", Value::Str(name.clone())),
                            ("value", scalar_json(v)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("input", bits_arr(&s.input)),
        (
            "output",
            Value::Arr(s.output.iter().map(|l| Value::Str(l.clone())).collect()),
        ),
        (
            "ops",
            Value::obj(vec![
                ("flops", Value::Int(i128::from(s.ops.flops))),
                ("loads", Value::Int(i128::from(s.ops.loads))),
                ("stores", Value::Int(i128::from(s.ops.stores))),
                ("stmts", Value::Int(i128::from(s.ops.stmts))),
            ]),
        ),
    ]);
    Value::obj(fields).to_string()
}

/// Accept any schema version this build knows how to read (1 through
/// the current); `what` names the file kind in the error.
fn check_version(v: &Value, what: &str) -> Result<(), String> {
    let version = int_field(v, "version").map_err(|e| e.replace("snapshot", what))?;
    if !(1..=i128::from(CHECKPOINT_SCHEMA_VERSION)).contains(&version) {
        return Err(format!(
            "{what}: schema version {version} (this build reads 1..={CHECKPOINT_SCHEMA_VERSION})"
        ));
    }
    Ok(())
}

/// Parse an optional `u32` array field; absent (schema 1) reads back
/// empty.
fn parts_field(v: &Value, key: &str, what: &str) -> Result<Vec<u32>, String> {
    let Some(raw) = v.get(key).and_then(Value::as_arr) else {
        return Ok(Vec::new());
    };
    raw.iter()
        .map(|p| {
            p.as_int()
                .and_then(|i| u32::try_from(i).ok())
                .ok_or_else(|| format!("{what}: bad `{key}` entry"))
        })
        .collect()
}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("snapshot: missing `{key}`"))
}

fn int_field(v: &Value, key: &str) -> Result<i128, String> {
    get(v, key)?
        .as_int()
        .ok_or_else(|| format!("snapshot: `{key}` is not an integer"))
}

fn num<T: TryFrom<i128>>(v: &Value, key: &str) -> Result<T, String> {
    T::try_from(int_field(v, key)?).map_err(|_| format!("snapshot: `{key}` out of range"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    Ok(get(v, key)?
        .as_str()
        .ok_or_else(|| format!("snapshot: `{key}` is not a string"))?
        .to_string())
}

fn arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| format!("snapshot: `{key}` is not an array"))
}

fn bits_field(v: &Value, key: &str) -> Result<Vec<u64>, String> {
    arr(v, key)?
        .iter()
        .map(|x| {
            x.as_int()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("snapshot: bad bit pattern in `{key}`"))
        })
        .collect()
}

fn parse_array_snap(v: &Value) -> Result<ArraySnap, String> {
    let bounds = arr(v, "bounds")?
        .iter()
        .map(|b| {
            let pair = b
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("snapshot: bound is not a pair")?;
            let lo = pair[0]
                .as_int()
                .and_then(|i| i64::try_from(i).ok())
                .ok_or("snapshot: bad bound")?;
            let hi = pair[1]
                .as_int()
                .and_then(|i| i64::try_from(i).ok())
                .ok_or("snapshot: bad bound")?;
            Ok::<(i64, i64), String>((lo, hi))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ArraySnap {
        name: str_field(v, "name")?,
        bounds,
        is_int: matches!(get(v, "is_int")?, Value::Bool(true)),
        data: bits_field(v, "data")?,
    })
}

fn parse_scalar(v: &Value) -> Result<ScalarSnap, String> {
    match str_field(v, "t")?.as_str() {
        "int" => Ok(ScalarSnap::Int(num(v, "v")?)),
        "real" => Ok(ScalarSnap::Real(num(v, "bits")?)),
        "log" => Ok(ScalarSnap::Logical(matches!(
            get(v, "v")?,
            Value::Bool(true)
        ))),
        "str" => Ok(ScalarSnap::Str(str_field(v, "v")?)),
        other => Err(format!("snapshot: unknown scalar tag `{other}`")),
    }
}

/// Parse a snapshot back from its JSON rendering.
pub fn snapshot_from_json(text: &str) -> Result<Snapshot, String> {
    let v = json::parse(text).map_err(|e| format!("snapshot: {e}"))?;
    check_version(&v, "snapshot")?;
    let cv = get(&v, "cursor")?;
    let cursor = Cursor {
        stmt: num(cv, "stmt")?,
        dos: arr(cv, "dos")?
            .iter()
            .map(|d| {
                Ok::<DoProgress, String>(DoProgress {
                    var: str_field(d, "var")?,
                    iv: num(d, "iv")?,
                    step: num(d, "step")?,
                    remaining: num(d, "remaining")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let arrays = arr(&v, "arrays")?
        .iter()
        .map(parse_array_snap)
        .collect::<Result<Vec<_>, _>>()?;
    let commons = arr(&v, "commons")?
        .iter()
        .map(|c| {
            Ok::<(String, String, ArraySnap), String>((
                str_field(c, "block")?,
                str_field(c, "member")?,
                parse_array_snap(get(c, "array")?)?,
            ))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let scalars = arr(&v, "scalars")?
        .iter()
        .map(|s| {
            Ok::<(String, ScalarSnap), String>((
                str_field(s, "name")?,
                parse_scalar(get(s, "value")?)?,
            ))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let output = arr(&v, "output")?
        .iter()
        .map(|l| {
            l.as_str()
                .map(str::to_string)
                .ok_or_else(|| "snapshot: bad output line".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let ov = get(&v, "ops")?;
    // absent on schema-1 snapshots: geometry unknown, elastic refuses
    let cut = match v.get("cut") {
        None => None,
        Some(cv) => Some(CutSite {
            list_kind: num(cv, "kind")?,
            list_stmt: num(cv, "stmt")?,
            arm: num(cv, "arm")?,
            gap: num(cv, "gap")?,
        }),
    };
    Ok(Snapshot {
        rank: num(&v, "rank")?,
        ranks: num(&v, "ranks")?,
        parts: parts_field(&v, "parts", "snapshot")?,
        epoch: num(&v, "epoch")?,
        sync_id: num(&v, "sync_id")?,
        cursor,
        cut,
        arrays,
        commons,
        scalars,
        input: bits_field(&v, "input")?,
        output,
        ops: OpsSnap {
            flops: num(ov, "flops")?,
            loads: num(ov, "loads")?,
            stores: num(ov, "stores")?,
            stmts: num(ov, "stmts")?,
        },
    })
}

/// Render a run manifest as schema-versioned JSON.
pub fn manifest_to_json(m: &RunManifest) -> String {
    Value::obj(vec![
        ("version", Value::Int(i128::from(CHECKPOINT_SCHEMA_VERSION))),
        ("source", Value::Str(m.source.clone())),
        (
            "parts",
            Value::Arr(m.parts.iter().map(|&p| Value::Int(i128::from(p))).collect()),
        ),
        (
            "grid",
            Value::Arr(m.grid.iter().map(|&e| Value::Int(i128::from(e))).collect()),
        ),
        ("ranks", Value::Int(m.ranks as i128)),
        ("distance", Value::Int(i128::from(m.distance))),
        ("optimize", Value::Bool(m.optimize)),
        ("overlap", Value::Bool(m.overlap)),
        (
            "checkpoint_every",
            Value::Int(i128::from(m.checkpoint_every)),
        ),
        ("timeout_ms", Value::Int(i128::from(m.timeout_ms))),
        ("engine", Value::Str(m.engine.clone())),
        ("threads", Value::Int(i128::from(m.threads))),
    ])
    .to_string()
}

/// Parse a run manifest back from its JSON rendering.
pub fn manifest_from_json(text: &str) -> Result<RunManifest, String> {
    let v = json::parse(text).map_err(|e| format!("run manifest: {e}"))?;
    check_version(&v, "run manifest")?;
    let parts = arr(&v, "parts")?
        .iter()
        .map(|p| {
            p.as_int()
                .and_then(|i| u32::try_from(i).ok())
                .ok_or_else(|| "run manifest: bad part".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let grid = v
        .get("grid")
        .and_then(Value::as_arr)
        .map(|raw| {
            raw.iter()
                .map(|e| {
                    e.as_int()
                        .and_then(|i| u64::try_from(i).ok())
                        .ok_or_else(|| "run manifest: bad grid extent".to_string())
                })
                .collect::<Result<Vec<_>, _>>()
        })
        .transpose()?
        .unwrap_or_default();
    Ok(RunManifest {
        source: str_field(&v, "source")?,
        parts,
        grid,
        ranks: num(&v, "ranks")?,
        distance: num(&v, "distance")?,
        optimize: matches!(get(&v, "optimize")?, Value::Bool(true)),
        overlap: matches!(get(&v, "overlap")?, Value::Bool(true)),
        checkpoint_every: num(&v, "checkpoint_every")?,
        timeout_ms: num(&v, "timeout_ms")?,
        // lenient: manifests written before engine selection existed
        // omit these — they ran the tree engine, single-threaded
        engine: v
            .get("engine")
            .and_then(Value::as_str)
            .unwrap_or("tree")
            .to_string(),
        threads: v
            .get("threads")
            .and_then(Value::as_int)
            .and_then(|n| u64::try_from(n).ok())
            .unwrap_or(1)
            .max(1),
    })
}

// ---------------------------------------------------------------------
// On-disk layout
// ---------------------------------------------------------------------

/// Directory holding epoch `epoch`'s snapshots.
pub fn epoch_dir(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("epoch-{epoch}"))
}

/// Path of rank `rank`'s snapshot within epoch `epoch`.
pub fn rank_snapshot_path(dir: &Path, epoch: u64, rank: usize) -> PathBuf {
    epoch_dir(dir, epoch).join(format!("rank-{rank}.json"))
}

/// Path of the run manifest within `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("run.json")
}

fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

/// Write rank `snap.rank`'s snapshot for its epoch under `dir`,
/// atomically (temp file + rename — a crash mid-write never leaves a
/// half-readable file under the final name). Returns the final path.
pub fn write_snapshot(dir: &Path, snap: &Snapshot) -> io::Result<PathBuf> {
    let edir = epoch_dir(dir, snap.epoch);
    fs::create_dir_all(&edir)?;
    let path = edir.join(format!("rank-{}.json", snap.rank));
    write_atomic(&path, &snapshot_to_json(snap))?;
    Ok(path)
}

/// Load one snapshot file.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    snapshot_from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Write the run manifest into `dir` (created if needed).
pub fn write_manifest(dir: &Path, m: &RunManifest) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = manifest_path(dir);
    write_atomic(&path, &manifest_to_json(m))?;
    Ok(path)
}

/// Load the run manifest from `dir`.
pub fn load_manifest(dir: &Path) -> Result<RunManifest, String> {
    let path = manifest_path(dir);
    let text = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    manifest_from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Every epoch number with a directory under `dir`, ascending.
fn epoch_numbers(dir: &Path) -> Vec<u64> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut epochs: Vec<u64> = entries
        .flatten()
        .filter_map(|e| {
            e.file_name()
                .to_str()?
                .strip_prefix("epoch-")?
                .parse::<u64>()
                .ok()
        })
        .collect();
    epochs.sort_unstable();
    epochs
}

/// Newest epoch under `dir` whose snapshots form a complete
/// self-consistent cut (see [`load_epoch`]): all files of the epoch's
/// own mesh present, parseable, and agreeing on (epoch, mesh size,
/// sync id, cursor statement). Geometry is judged from the snapshots
/// themselves, not the manifest: an epoch left behind by a
/// pre-repartition geometry is still the latest usable cut — elastic
/// resume re-partitions it onto the manifest's current mesh — so a
/// relaunch that died before writing its first checkpoint in the new
/// geometry never strands the directory. A torn epoch (missing or
/// half-written file) still fails [`load_epoch`] and the scan falls
/// back to the next older one, so recovery always lands on a complete
/// consistent cut or reports none.
pub fn latest_consistent_epoch(dir: &Path) -> Option<u64> {
    epoch_numbers(dir)
        .into_iter()
        .rev()
        .find(|&epoch| load_epoch(dir, epoch).is_ok())
}

/// Load every rank's snapshot of one epoch, verifying consistency. The
/// epoch's mesh size is inferred from the files themselves: with `n`
/// `rank-<r>.json` files present, ranks `0..n` must all exist, each
/// claiming its own rank out of exactly `n` and the requested epoch,
/// all cut at the same sync visit with the same partition parts. This
/// makes a fully-written epoch loadable without the manifest (an
/// elastic resume reads old-geometry epochs this way after the manifest
/// has moved on), while a torn epoch — some ranks' files missing —
/// still fails, because the survivors claim a bigger mesh than the
/// files on disk.
pub fn load_epoch(dir: &Path, epoch: u64) -> Result<Vec<Snapshot>, String> {
    let edir = epoch_dir(dir, epoch);
    let entries = fs::read_dir(&edir).map_err(|e| format!("read {}: {e}", edir.display()))?;
    let ranks = entries
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .and_then(|n| n.strip_prefix("rank-")?.strip_suffix(".json"))
                .is_some_and(|r| r.parse::<usize>().is_ok())
        })
        .count();
    if ranks == 0 {
        return Err(format!(
            "epoch {epoch}: no rank snapshots under {}",
            edir.display()
        ));
    }
    let mut snaps = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let snap = load_snapshot(&rank_snapshot_path(dir, epoch, rank))?;
        if snap.rank != rank || snap.ranks != ranks || snap.epoch != epoch {
            return Err(format!(
                "epoch {epoch} rank {rank}: snapshot claims rank {}/{} epoch {}",
                snap.rank, snap.ranks, snap.epoch
            ));
        }
        snaps.push(snap);
    }
    let first = &snaps[0];
    for s in &snaps[1..] {
        if s.sync_id != first.sync_id || s.cursor.stmt != first.cursor.stmt {
            return Err(format!(
                "epoch {epoch}: ranks disagree on the cut point \
                 (sync {} stmt {} vs sync {} stmt {})",
                first.sync_id, first.cursor.stmt, s.sync_id, s.cursor.stmt
            ));
        }
        if s.parts != first.parts || s.cut != first.cut {
            return Err(format!(
                "epoch {epoch}: ranks disagree on partition geometry \
                 ({:?} vs {:?})",
                first.parts, s.parts
            ));
        }
    }
    Ok(snaps)
}

// ---------------------------------------------------------------------
// Region copy: the regather/scatter primitive
// ---------------------------------------------------------------------

/// Copy the elements of `region` — per-dimension inclusive global index
/// ranges — from `src` into `dst`, both full-size column-major arrays
/// declared with `bounds`. This is the primitive both halves of elastic
/// repartitioning are built from: *regather* copies each old rank's
/// owned region into a global stitch buffer, *scatter* is a whole-array
/// copy of the stitched field into each new rank's snapshot. Returns
/// the number of elements copied.
///
/// The caller supplies regions already clamped to `bounds` (the
/// interpreter's `owned_region` does that); out-of-bounds regions or
/// wrong-size buffers are an error, never a silent partial copy.
pub fn copy_region(
    bounds: &[(i64, i64)],
    region: &[(i64, i64)],
    src: &[u64],
    dst: &mut [u64],
) -> Result<u64, String> {
    if region.len() != bounds.len() {
        return Err(format!(
            "copy_region: region has {} dims, bounds have {}",
            region.len(),
            bounds.len()
        ));
    }
    let mut len = 1usize;
    let mut strides = Vec::with_capacity(bounds.len());
    for (d, &(blo, bhi)) in bounds.iter().enumerate() {
        let (rlo, rhi) = region[d];
        if rlo < blo || rhi > bhi {
            return Err(format!(
                "copy_region: dim {d} region ({rlo}, {rhi}) outside bounds ({blo}, {bhi})"
            ));
        }
        strides.push(len);
        len *= usize::try_from(bhi - blo + 1).map_err(|_| "copy_region: bad bounds")?;
    }
    if src.len() != len || dst.len() != len {
        return Err(format!(
            "copy_region: bounds hold {len} elements, src has {} and dst has {}",
            src.len(),
            dst.len()
        ));
    }
    if region.iter().any(|&(lo, hi)| hi < lo) {
        return Ok(0); // empty region: nothing to move
    }
    // column-major odometer over the region, first dimension fastest
    let mut idx: Vec<i64> = region.iter().map(|&(lo, _)| lo).collect();
    let mut copied = 0u64;
    loop {
        let mut off = 0usize;
        for (d, &x) in idx.iter().enumerate() {
            off += strides[d] * usize::try_from(x - bounds[d].0).expect("in-bounds index");
        }
        dst[off] = src[off];
        copied += 1;
        let mut d = 0;
        loop {
            if d == idx.len() {
                return Ok(copied);
            }
            idx[d] += 1;
            if idx[d] <= region[d].1 {
                break;
            }
            idx[d] = region[d].0;
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(rank: usize, epoch: u64) -> Snapshot {
        Snapshot {
            rank,
            ranks: 2,
            parts: vec![2, 1],
            epoch,
            sync_id: 3,
            cursor: Cursor {
                stmt: 17,
                dos: vec![DoProgress {
                    var: "it".into(),
                    iv: 4,
                    step: 1,
                    remaining: 6,
                }],
            },
            cut: Some(CutSite {
                list_kind: 1,
                list_stmt: 9,
                arm: 0,
                gap: 2,
            }),
            arrays: vec![ArraySnap {
                name: "v".into(),
                bounds: vec![(1, 2), (0, 1)],
                is_int: false,
                data: vec![
                    1.5f64.to_bits(),
                    (-0.0f64).to_bits(),
                    f64::NAN.to_bits(),
                    f64::INFINITY.to_bits(),
                ],
            }],
            commons: vec![(
                "blk".into(),
                "w".into(),
                ArraySnap {
                    name: "w".into(),
                    bounds: vec![(1, 2)],
                    is_int: true,
                    data: vec![2.0f64.to_bits(), 3.0f64.to_bits()],
                },
            )],
            scalars: vec![
                ("i".into(), ScalarSnap::Int(-7)),
                ("err".into(), ScalarSnap::Real(1e-9f64.to_bits())),
                ("done".into(), ScalarSnap::Logical(true)),
                ("tag".into(), ScalarSnap::Str("frame".into())),
            ],
            input: vec![0.25f64.to_bits()],
            output: vec!["line one".into()],
            ops: OpsSnap {
                flops: 10,
                loads: 20,
                stores: 30,
                stmts: 40,
            },
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let s = sample_snapshot(1, 2);
        let back = snapshot_from_json(&snapshot_to_json(&s)).unwrap();
        assert_eq!(back, s);
        // NaN payload preserved exactly through the bits encoding
        assert_eq!(back.arrays[0].data[2], f64::NAN.to_bits());
    }

    #[test]
    fn manifest_round_trips() {
        let m = RunManifest {
            source: "      program p\n      end\n".into(),
            parts: vec![2, 1, 2],
            grid: vec![16, 8, 16],
            ranks: 4,
            distance: 3,
            optimize: true,
            overlap: false,
            checkpoint_every: 5,
            timeout_ms: 30_000,
            engine: "kernel".into(),
            threads: 4,
        };
        let back = manifest_from_json(&manifest_to_json(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_engine_fields_default_when_absent() {
        let m = RunManifest {
            source: "      program p\n      end\n".into(),
            parts: vec![2],
            grid: vec![8],
            ranks: 2,
            distance: 1,
            optimize: true,
            overlap: false,
            checkpoint_every: 1,
            timeout_ms: 1000,
            engine: "tree".into(),
            threads: 1,
        };
        // strip the engine fields the way a pre-engine manifest would
        let text = manifest_to_json(&m)
            .replace(",\"engine\":\"tree\"", "")
            .replace(",\"threads\":1", "");
        assert!(!text.contains("engine"));
        let back = manifest_from_json(&text).unwrap();
        assert_eq!(back.engine, "tree");
        assert_eq!(back.threads, 1);
    }

    #[test]
    fn version_mismatch_rejected() {
        let text =
            snapshot_to_json(&sample_snapshot(0, 0)).replace("\"version\":2", "\"version\":9");
        assert!(snapshot_from_json(&text).unwrap_err().contains("version 9"));
    }

    #[test]
    fn schema_one_snapshot_reads_back_without_geometry() {
        // a v1 snapshot has no `parts`; it must still load (geometry
        // unknown → empty), so same-rank-count resume keeps working
        let text = snapshot_to_json(&sample_snapshot(1, 3))
            .replace("\"version\":2", "\"version\":1")
            .replace(",\"parts\":[2,1]", "");
        let back = snapshot_from_json(&text).unwrap();
        assert!(back.parts.is_empty());
        assert_eq!(back.rank, 1);
    }

    fn sample_manifest(ranks: usize) -> RunManifest {
        RunManifest {
            source: "      program p\n      end\n".into(),
            parts: vec![ranks as u32, 1],
            grid: vec![8, 8],
            ranks,
            distance: 1,
            optimize: true,
            overlap: false,
            checkpoint_every: 1,
            timeout_ms: 1000,
            engine: "tree".into(),
            threads: 1,
        }
    }

    #[test]
    fn torn_newest_epoch_falls_back() {
        let dir = std::env::temp_dir().join(format!("acfd-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_manifest(&dir, &sample_manifest(2)).unwrap();
        for epoch in [1, 2] {
            for rank in 0..2 {
                write_snapshot(&dir, &sample_snapshot(rank, epoch)).unwrap();
            }
        }
        assert_eq!(latest_consistent_epoch(&dir), Some(2));

        // truncate rank 1's newest snapshot mid-file: epoch 2 is torn
        let torn = rank_snapshot_path(&dir, 2, 1);
        let text = fs::read_to_string(&torn).unwrap();
        fs::write(&torn, &text[..text.len() / 2]).unwrap();
        assert_eq!(latest_consistent_epoch(&dir), Some(1));

        // remove it entirely: still epoch 1 (the survivor claims a
        // 2-rank mesh but only one file is on disk)
        fs::remove_file(&torn).unwrap();
        assert_eq!(latest_consistent_epoch(&dir), Some(1));

        // no epoch has all ranks → none
        fs::remove_file(rank_snapshot_path(&dir, 1, 0)).unwrap();
        fs::remove_file(rank_snapshot_path(&dir, 2, 0)).unwrap();
        assert_eq!(latest_consistent_epoch(&dir), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_geometry_epoch_still_selectable() {
        // an elastic resume rewrote the manifest from 2 ranks to 3 but
        // died before its first 3-rank checkpoint; the old 2-rank epoch
        // is a complete self-consistent cut and must still be selected
        // (the resume path re-partitions it onto the manifest geometry)
        let dir = std::env::temp_dir().join(format!("acfd-ckpt-elastic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_manifest(&dir, &sample_manifest(3)).unwrap();
        for rank in 0..2 {
            write_snapshot(&dir, &sample_snapshot(rank, 5)).unwrap();
        }
        // explicit load works (mesh size inferred from the files)...
        assert_eq!(load_epoch(&dir, 5).unwrap().len(), 2);
        // ...and so does automatic selection, despite the 3-rank manifest
        assert_eq!(latest_consistent_epoch(&dir), Some(5));
        // once a newer 3-rank epoch lands, it wins
        for rank in 0..3 {
            let mut s = sample_snapshot(rank, 6);
            s.ranks = 3;
            s.parts = vec![3, 1];
            write_snapshot(&dir, &s).unwrap();
        }
        assert_eq!(latest_consistent_epoch(&dir), Some(6));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_cut_points_rejected() {
        let dir = std::env::temp_dir().join(format!("acfd-ckpt-cut-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_manifest(&dir, &sample_manifest(2)).unwrap();
        write_snapshot(&dir, &sample_snapshot(0, 1)).unwrap();
        let mut other = sample_snapshot(1, 1);
        other.sync_id = 9;
        write_snapshot(&dir, &other).unwrap();
        let err = load_epoch(&dir, 1).unwrap_err();
        assert!(err.contains("disagree"), "{err}");
        assert_eq!(latest_consistent_epoch(&dir), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_geometry_rejected() {
        let dir = std::env::temp_dir().join(format!("acfd-ckpt-geom-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_snapshot(&dir, &sample_snapshot(0, 1)).unwrap();
        let mut other = sample_snapshot(1, 1);
        other.parts = vec![1, 2];
        write_snapshot(&dir, &other).unwrap();
        let err = load_epoch(&dir, 1).unwrap_err();
        assert!(err.contains("partition geometry"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn copy_region_moves_exactly_the_region() {
        // 2D array (1..4, 1..3) column-major; copy the (2..3, 2..3) block
        let bounds = [(1i64, 4), (1i64, 3)];
        let src: Vec<u64> = (100..112).collect();
        let mut dst = vec![0u64; 12];
        let n = copy_region(&bounds, &[(2, 3), (2, 3)], &src, &mut dst).unwrap();
        assert_eq!(n, 4);
        // element (i, j) sits at (i-1) + (j-1)*4
        let at = |i: i64, j: i64| ((i - 1) + (j - 1) * 4) as usize;
        for i in 1..=4 {
            for j in 1..=3 {
                let want = if (2..=3).contains(&i) && (2..=3).contains(&j) {
                    src[at(i, j)]
                } else {
                    0
                };
                assert_eq!(dst[at(i, j)], want, "({i}, {j})");
            }
        }
    }

    #[test]
    fn copy_region_rejects_bad_shapes() {
        let bounds = [(1i64, 4)];
        let src = vec![0u64; 4];
        let mut dst = vec![0u64; 4];
        // region outside bounds
        assert!(copy_region(&bounds, &[(0, 2)], &src, &mut dst).is_err());
        // wrong dimensionality
        assert!(copy_region(&bounds, &[(1, 2), (1, 2)], &src, &mut dst).is_err());
        // wrong buffer size
        let mut short = vec![0u64; 3];
        assert!(copy_region(&bounds, &[(1, 2)], &src, &mut short).is_err());
        // empty region copies nothing
        assert_eq!(copy_region(&bounds, &[(3, 2)], &src, &mut dst).unwrap(), 0);
    }

    #[test]
    fn write_is_atomic_under_final_name() {
        let dir = std::env::temp_dir().join(format!("acfd-ckpt-atomic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = write_snapshot(&dir, &sample_snapshot(0, 7)).unwrap();
        assert!(path.ends_with("epoch-7/rank-0.json"));
        // no stray temp file left behind
        let names: Vec<String> = fs::read_dir(epoch_dir(&dir, 7))
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["rank-0.json"]);
        let _ = fs::remove_dir_all(&dir);
    }
}
