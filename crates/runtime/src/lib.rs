#![warn(missing_docs)]

//! Rank-per-thread message-passing runtime — the PVM/MPI substitute.
//!
//! The Auto-CFD paper generates SPMD programs with PVM/MPI calls and runs
//! them on a dedicated Ethernet cluster of Pentium workstations. This
//! crate provides the same programming model, layered over a pluggable
//! [`Transport`], so the generated parallel programs can actually
//! *execute* and be checked for equivalence with their sequential
//! originals:
//!
//! * [`Transport`] — the wire contract: nonblocking tagged
//!   point-to-point `isend`/`irecv` returning typed request handles
//!   ([`SendRequest`]/[`RecvRequest`]) with `wait`/`test` completion
//!   operations and per-`(source, tag)` FIFO matching (blocking
//!   `send`/`recv` are default-method shims over the handles), a
//!   barrier (default: dissemination over reserved tags), and
//!   wire-level byte counters.
//!   [`inproc::InprocTransport`] runs ranks as threads over channels;
//!   the companion crate `autocfd-runtime-net` runs them as processes
//!   over TCP with the same semantics;
//! * [`run_spmd`] — launch `n` ranks in-process, each a thread with a
//!   [`Comm`] endpoint, and collect their results;
//! * [`Comm`] — the transport-agnostic communicator: `send`/`recv`/
//!   `sendrecv` plus the collectives the restructured programs need
//!   (`barrier`, `allreduce` max / sum / min — the convergence test of a
//!   CFD frame is an allreduce-max of the local error), with program
//!   *phase* labels threaded into traces and errors;
//! * deadlock and failure surfacing: every receive carries a timeout and
//!   failures return a typed [`CommError`] saying *which* rank waited on
//!   which peer/tag in which phase, instead of hanging the run;
//! * per-rank statistics and event traces (message, element, and wire
//!   byte counts per phase), which the cluster cost model and the
//!   profiler consume.
//!
//! Sends are buffered, matching the eager-send semantics of
//! small-message MPI on Ethernet: a `send` never blocks, so the
//! symmetric `sendrecv` used by halo exchange cannot deadlock.

pub mod checkpoint;
pub mod comm;
pub mod error;
pub mod export;
pub mod inproc;
pub mod journal;
pub mod telemetry;
pub mod trace;
pub mod transport;

pub use checkpoint::{
    latest_consistent_epoch, load_epoch, load_manifest, load_snapshot, write_manifest,
    write_snapshot, ArraySnap, Cursor, DoProgress, OpsSnap, RunManifest, ScalarSnap, Snapshot,
    CHECKPOINT_SCHEMA_VERSION,
};
pub use comm::{Comm, CommStats, ReduceOp, DEFAULT_TIMEOUT};
pub use error::{CommError, CommErrorKind};
pub use export::{
    chrome_trace, phase_metrics, rank_breakdown, render_phase_metrics, render_rank_breakdown,
    PhaseMetrics, RankBreakdown,
};
pub use inproc::{run_spmd, run_spmd_with_timeout, InprocTransport};
pub use journal::{
    epoch_unix_ns, load_trace_dir, merge, merge_marker_aligned, parse_line, parse_rank_journal,
    write_rank_journal, JournalError, JournalEvent, JournalHeader, JournalRecord, JournalWriter,
    MergedTrace, RankJournal, SCHEMA_VERSION,
};
pub use telemetry::{
    encode_stat_frame, parse_stat_frame, read_spool, spool_path, PeerTraffic, StatFrame,
    TelemetryBus, TelemetryConfig, TelemetrySink, DEFAULT_TELEMETRY_INTERVAL, TELEMETRY_SCHEMA,
};
pub use trace::{
    render_timeline, render_wire_table, summarize, wire_by_phase, wire_bytes, EventKind, Recorder,
    TraceEvent,
};
pub use transport::{
    InboxMsg, MatchingInbox, RecvRequest, SendRequest, Transport, WireStats, BARRIER_TAG_BASE,
};
