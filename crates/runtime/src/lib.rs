#![warn(missing_docs)]

//! Rank-per-thread message-passing runtime — the PVM/MPI substitute.
//!
//! The Auto-CFD paper generates SPMD programs with PVM/MPI calls and runs
//! them on a dedicated Ethernet cluster of Pentium workstations. This
//! crate provides the same programming model on threads, so the generated
//! parallel programs can actually *execute* and be checked for
//! equivalence with their sequential originals:
//!
//! * [`run_spmd`] — launch `n` ranks, each a thread with a [`Comm`]
//!   endpoint, and collect their results;
//! * [`Comm`] — point-to-point `send`/`recv`/`sendrecv` with tag
//!   matching and per-(source, tag) FIFO ordering, plus the collectives
//!   the restructured programs need: `barrier`, `allreduce` (max / sum /
//!   min — the convergence test of a CFD frame is an allreduce-max of
//!   the local error);
//! * deadlock surfacing: every receive carries a timeout; a blocked
//!   exchange reports *which* rank waited on which peer/tag instead of
//!   hanging the test suite;
//! * communication statistics per rank (message and byte counts), which
//!   the cluster cost model consumes.
//!
//! Sends are buffered (unbounded channels), matching the eager-send
//! semantics of small-message MPI on Ethernet: a `send` never blocks, so
//! the symmetric `sendrecv` used by halo exchange cannot deadlock.

pub mod comm;
pub mod trace;

pub use comm::{run_spmd, Comm, CommStats, RecvError, ReduceOp, DEFAULT_TIMEOUT};
pub use trace::{render_timeline, summarize, EventKind, TraceEvent};
