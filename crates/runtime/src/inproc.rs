//! The in-process backend: every rank is a thread, messages travel over
//! crossbeam channels, and the barrier is `std::sync::Barrier`. This is
//! the zero-setup default transport behind [`run_spmd`]; the TCP backend
//! in `autocfd-runtime-net` implements the same [`Transport`] contract
//! across processes.

use crate::comm::{Comm, DEFAULT_TIMEOUT};
use crate::error::CommError;
use crate::transport::{InboxMsg, MatchingInbox, RecvRequest, SendRequest, Transport, WireStats};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One rank's endpoint of an in-process (thread + channel) mesh.
pub struct InprocTransport {
    rank: usize,
    size: usize,
    /// `senders[d]` feeds rank `d`'s inbox.
    senders: Vec<Sender<InboxMsg>>,
    inbox: MatchingInbox,
    barrier: Arc<Barrier>,
    /// Monotonic causality stamp for outgoing messages (first send = 1).
    send_seq: AtomicU64,
    /// Shared mesh-wide telemetry slots: `telemetry[r]` holds rank `r`'s
    /// latest published stat frame (JSON line).
    telemetry: Arc<Vec<Mutex<Option<String>>>>,
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recvd: AtomicU64,
    bytes_recvd: AtomicU64,
}

impl InprocTransport {
    /// Build a fully connected `n`-rank mesh; element `r` is rank `r`'s
    /// endpoint.
    pub fn mesh(n: usize) -> Vec<InprocTransport> {
        assert!(n >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<InboxMsg>();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(n));
        let telemetry = Arc::new((0..n).map(|_| Mutex::new(None)).collect::<Vec<_>>());
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| InprocTransport {
                rank,
                size: n,
                senders: senders.clone(),
                inbox: MatchingInbox::new(rank, rx),
                barrier: barrier.clone(),
                send_seq: AtomicU64::new(0),
                telemetry: telemetry.clone(),
                msgs_sent: AtomicU64::new(0),
                bytes_sent: AtomicU64::new(0),
                msgs_recvd: AtomicU64::new(0),
                bytes_recvd: AtomicU64::new(0),
            })
            .collect()
    }
}

impl Transport for InprocTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn isend(&self, to: usize, tag: u64, payload: &[f64]) -> Result<SendRequest, CommError> {
        let wire_bytes = payload.len() * 8;
        let seq = self.send_seq.fetch_add(1, Ordering::Relaxed) + 1;
        // peer gone = program shutting down; ignore like MPI_Send to a
        // finalized rank would abort — tests catch it via recv timeouts.
        let _ = self.senders[to].send(InboxMsg::Data {
            from: self.rank,
            tag,
            payload: payload.to_vec(),
            wire_bytes,
            seq,
        });
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(wire_bytes as u64, Ordering::Relaxed);
        Ok(SendRequest {
            to,
            tag,
            wire_bytes,
            seq,
        })
    }

    fn wait_recv(
        &self,
        mut req: RecvRequest,
        timeout: Duration,
    ) -> Result<(Vec<f64>, usize, u64), CommError> {
        // test_recv already pulled it off the inbox (and counted it)
        if let Some(found) = req.take_done() {
            return Ok(found);
        }
        let (payload, wire_bytes, seq) = self.inbox.recv(req.from, req.tag, timeout)?;
        self.msgs_recvd.fetch_add(1, Ordering::Relaxed);
        self.bytes_recvd
            .fetch_add(wire_bytes as u64, Ordering::Relaxed);
        Ok((payload, wire_bytes, seq))
    }

    fn test_recv(&self, req: &mut RecvRequest) -> Result<bool, CommError> {
        if req.is_done() {
            return Ok(true);
        }
        match self.inbox.try_recv(req.from, req.tag)? {
            Some((payload, wire_bytes, seq)) => {
                self.msgs_recvd.fetch_add(1, Ordering::Relaxed);
                self.bytes_recvd
                    .fetch_add(wire_bytes as u64, Ordering::Relaxed);
                req.complete(payload, wire_bytes, seq);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn barrier(&self, _timeout: Duration) -> Result<(), CommError> {
        // threads share an address space, so the native barrier is both
        // cheaper and immune to tag-band traffic
        self.barrier.wait();
        Ok(())
    }

    fn publish_telemetry(&self, frame_json: &str) -> bool {
        *self.telemetry[self.rank].lock() = Some(frame_json.to_string());
        true
    }

    fn peer_telemetry(&self, peer: usize) -> Option<String> {
        self.telemetry.get(peer)?.lock().clone()
    }

    fn wire_stats(&self) -> WireStats {
        WireStats {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_recvd: self.msgs_recvd.load(Ordering::Relaxed),
            bytes_recvd: self.bytes_recvd.load(Ordering::Relaxed),
        }
    }
}

/// Launch `n` ranks; each runs `f(comm)` on its own thread. Results are
/// returned in rank order. A panicking rank propagates its panic.
///
/// ```
/// use autocfd_runtime::{run_spmd, ReduceOp};
/// let maxima = run_spmd(4, |comm| {
///     comm.allreduce(comm.rank() as f64, ReduceOp::Max).unwrap()
/// });
/// assert_eq!(maxima, vec![3.0; 4]);
/// ```
pub fn run_spmd<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    run_spmd_with_timeout(n, DEFAULT_TIMEOUT, f)
}

/// [`run_spmd`] with an explicit receive timeout (tests use short ones to
/// exercise deadlock surfacing).
pub fn run_spmd_with_timeout<T, F>(n: usize, timeout: Duration, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    let epoch = Instant::now();
    let comms: Vec<Comm> = InprocTransport::mesh(n)
        .into_iter()
        .map(|t| Comm::new(Box::new(t), timeout, epoch))
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| scope.spawn(|| f(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("SPMD rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const T: Duration = Duration::from_millis(500);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Any interleaving of `isend`/`irecv`/`test_recv`/`wait_recv`
        /// on the in-process mesh delivers every message exactly once,
        /// FIFO per `(from, tag)` pair: requests are retired in an
        /// arbitrary order, some by blocking wait and some by polling
        /// to completion first, and an unsatisfiable request is polled
        /// throughout without ever completing or stealing a message.
        #[test]
        fn interleaved_requests_deliver_fifo_per_tag_and_lose_nothing(
            tags in proptest::collection::vec(0u64..3, 1..16),
            order in proptest::collection::vec(0usize..1000, 16),
            polls in proptest::collection::vec(proptest::bool::ANY, 16),
        ) {
            let mut mesh = InprocTransport::mesh(2);
            let receiver = mesh.remove(0);
            let sender = mesh.remove(0);
            for (k, &tag) in tags.iter().enumerate() {
                let req = sender.isend(0, tag, &[k as f64]).unwrap();
                prop_assert_eq!(sender.wait_send(req, T).unwrap(), 8);
            }
            // a receive nobody will satisfy: polling it must report
            // "in flight" every time and never consume real traffic
            let mut ghost = receiver.irecv(1, 99);

            let mut reqs: Vec<RecvRequest> =
                tags.iter().map(|&tag| receiver.irecv(1, tag)).collect();
            let mut per_tag: Vec<Vec<f64>> = vec![Vec::new(); 3];
            let mut step = 0usize;
            while !reqs.is_empty() {
                prop_assert!(!receiver.test_recv(&mut ghost).unwrap());
                let i = order[step % order.len()] % reqs.len();
                let mut req = reqs.swap_remove(i);
                let tag = req.tag as usize;
                if polls[step % polls.len()] {
                    // poll to completion: the payload is cached in the
                    // handle, and the wait below must return it without
                    // touching the inbox again
                    while !receiver.test_recv(&mut req).unwrap() {}
                }
                let (payload, wire, seq) = receiver.wait_recv(req, T).unwrap();
                prop_assert_eq!(wire, 8);
                prop_assert!(seq >= 1, "every data message carries a causality stamp");
                prop_assert_eq!(payload.len(), 1);
                per_tag[tag].push(payload[0]);
                step += 1;
            }
            // FIFO per (from, tag): whatever order requests retire in,
            // each tag's payloads come back in its send order
            for (tag, got) in per_tag.iter().enumerate() {
                let sent: Vec<f64> = tags
                    .iter()
                    .enumerate()
                    .filter(|&(_, &t)| t as usize == tag)
                    .map(|(k, _)| k as f64)
                    .collect();
                prop_assert_eq!(got, &sent, "tag {}", tag);
            }
            // no lost completions, no duplicates
            let ws = receiver.wire_stats();
            prop_assert_eq!(ws.msgs_recvd, tags.len() as u64);
            prop_assert_eq!(ws.bytes_recvd, 8 * tags.len() as u64);
        }
    }
}
