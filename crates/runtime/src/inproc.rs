//! The in-process backend: every rank is a thread, messages travel over
//! crossbeam channels, and the barrier is `std::sync::Barrier`. This is
//! the zero-setup default transport behind [`run_spmd`]; the TCP backend
//! in `autocfd-runtime-net` implements the same [`Transport`] contract
//! across processes.

use crate::comm::{Comm, DEFAULT_TIMEOUT};
use crate::error::CommError;
use crate::transport::{InboxMsg, MatchingInbox, Transport, WireStats};
use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One rank's endpoint of an in-process (thread + channel) mesh.
pub struct InprocTransport {
    rank: usize,
    size: usize,
    /// `senders[d]` feeds rank `d`'s inbox.
    senders: Vec<Sender<InboxMsg>>,
    inbox: MatchingInbox,
    barrier: Arc<Barrier>,
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recvd: AtomicU64,
    bytes_recvd: AtomicU64,
}

impl InprocTransport {
    /// Build a fully connected `n`-rank mesh; element `r` is rank `r`'s
    /// endpoint.
    pub fn mesh(n: usize) -> Vec<InprocTransport> {
        assert!(n >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<InboxMsg>();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(n));
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| InprocTransport {
                rank,
                size: n,
                senders: senders.clone(),
                inbox: MatchingInbox::new(rank, rx),
                barrier: barrier.clone(),
                msgs_sent: AtomicU64::new(0),
                bytes_sent: AtomicU64::new(0),
                msgs_recvd: AtomicU64::new(0),
                bytes_recvd: AtomicU64::new(0),
            })
            .collect()
    }
}

impl Transport for InprocTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, tag: u64, payload: &[f64]) -> Result<usize, CommError> {
        let wire_bytes = payload.len() * 8;
        // peer gone = program shutting down; ignore like MPI_Send to a
        // finalized rank would abort — tests catch it via recv timeouts.
        let _ = self.senders[to].send(InboxMsg::Data {
            from: self.rank,
            tag,
            payload: payload.to_vec(),
            wire_bytes,
        });
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(wire_bytes as u64, Ordering::Relaxed);
        Ok(wire_bytes)
    }

    fn recv(
        &self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<(Vec<f64>, usize), CommError> {
        let (payload, wire_bytes) = self.inbox.recv(from, tag, timeout)?;
        self.msgs_recvd.fetch_add(1, Ordering::Relaxed);
        self.bytes_recvd
            .fetch_add(wire_bytes as u64, Ordering::Relaxed);
        Ok((payload, wire_bytes))
    }

    fn barrier(&self, _timeout: Duration) -> Result<(), CommError> {
        // threads share an address space, so the native barrier is both
        // cheaper and immune to tag-band traffic
        self.barrier.wait();
        Ok(())
    }

    fn wire_stats(&self) -> WireStats {
        WireStats {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_recvd: self.msgs_recvd.load(Ordering::Relaxed),
            bytes_recvd: self.bytes_recvd.load(Ordering::Relaxed),
        }
    }
}

/// Launch `n` ranks; each runs `f(comm)` on its own thread. Results are
/// returned in rank order. A panicking rank propagates its panic.
///
/// ```
/// use autocfd_runtime::{run_spmd, ReduceOp};
/// let maxima = run_spmd(4, |comm| {
///     comm.allreduce(comm.rank() as f64, ReduceOp::Max).unwrap()
/// });
/// assert_eq!(maxima, vec![3.0; 4]);
/// ```
pub fn run_spmd<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    run_spmd_with_timeout(n, DEFAULT_TIMEOUT, f)
}

/// [`run_spmd`] with an explicit receive timeout (tests use short ones to
/// exercise deadlock surfacing).
pub fn run_spmd_with_timeout<T, F>(n: usize, timeout: Duration, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    let epoch = Instant::now();
    let comms: Vec<Comm> = InprocTransport::mesh(n)
        .into_iter()
        .map(|t| Comm::new(Box::new(t), timeout, epoch))
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| scope.spawn(|| f(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("SPMD rank panicked"))
            .collect()
    })
}
