//! The communicator: point-to-point messaging and collectives over any
//! [`Transport`], with per-rank statistics, phase labels, and an event
//! trace for the profiler.

use crate::error::CommError;
use crate::telemetry::{encode_stat_frame, TelemetryConfig, TelemetrySink};
use crate::trace::{EventKind, Recorder, TraceEvent};
use crate::transport::{RecvRequest, SendRequest, Transport, WireStats};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default receive timeout; long enough for heavyweight tests, short
/// enough that a deadlocked exchange fails rather than hangs.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Reduction operators for [`Comm::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise maximum (CFD convergence error).
    Max,
    /// Elementwise minimum.
    Min,
    /// Elementwise sum.
    Sum,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Sum => a + b,
        }
    }
}

/// Per-rank communication statistics.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Messages sent.
    pub msgs_sent: AtomicU64,
    /// Total f64 elements sent.
    pub elems_sent: AtomicU64,
    /// Barrier participations.
    pub barriers: AtomicU64,
    /// Allreduce participations.
    pub reduces: AtomicU64,
}

impl CommStats {
    /// Snapshot as plain numbers `(msgs, elems, barriers, reduces)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.msgs_sent.load(Ordering::Relaxed),
            self.elems_sent.load(Ordering::Relaxed),
            self.barriers.load(Ordering::Relaxed),
            self.reduces.load(Ordering::Relaxed),
        )
    }
}

/// One rank's endpoint into the communicator, generic over the wire: the
/// same collectives, tracing, and statistics run over the in-process
/// channel backend ([`crate::inproc`]) or the multi-process TCP backend
/// (`autocfd-runtime-net`).
pub struct Comm {
    transport: Box<dyn Transport>,
    stats: CommStats,
    timeout: Duration,
    /// Shared epoch for trace timestamps (same instant on every rank).
    epoch: Instant,
    /// Recorded communication events.
    trace: Mutex<Vec<TraceEvent>>,
    /// Phase names in first-entered order; trace events and errors refer
    /// to phases by index into this list.
    phases: Mutex<Vec<String>>,
    /// Index of the currently executing phase.
    phase: AtomicU32,
    /// Live telemetry sink, when enabled (see [`Comm::enable_telemetry`]).
    telemetry: Mutex<Option<Arc<TelemetrySink>>>,
}

impl Comm {
    /// Wrap a transport endpoint. `epoch` anchors trace timestamps and
    /// should be (approximately) the same instant on every rank;
    /// `timeout` bounds every receive.
    pub fn new(transport: Box<dyn Transport>, timeout: Duration, epoch: Instant) -> Comm {
        Comm {
            transport,
            stats: CommStats::default(),
            timeout,
            epoch,
            trace: Mutex::new(Vec::new()),
            phases: Mutex::new(vec!["main".to_string()]),
            phase: AtomicU32::new(0),
            telemetry: Mutex::new(None),
        }
    }

    /// Turn the live telemetry plane on: from now on this rank
    /// aggregates its spans into periodic stat frames, spools them (if
    /// `config.spool_dir` is set), and offers them to the transport's
    /// side channel. Returns the sink so callers can read the bus or the
    /// dropped-frame counter.
    pub fn enable_telemetry(&self, config: TelemetryConfig) -> Arc<TelemetrySink> {
        let sink = Arc::new(TelemetrySink::new(config));
        *self.telemetry.lock() = Some(Arc::clone(&sink));
        sink
    }

    /// The telemetry sink, if [`Comm::enable_telemetry`] has been called.
    pub fn telemetry(&self) -> Option<Arc<TelemetrySink>> {
        self.telemetry.lock().clone()
    }

    /// Record that checkpoint `epoch` has completed on this rank; shows
    /// up in the next stat frame so observers can see checkpoint lag.
    pub fn note_checkpoint_epoch(&self, epoch: u64) {
        if let Some(sink) = self.telemetry() {
            sink.note_checkpoint(epoch);
        }
    }

    /// Cut and publish a stat frame if the telemetry interval elapsed.
    /// Called from the record paths; cheap no-op when telemetry is off
    /// or the interval has not passed.
    fn maybe_publish_telemetry(&self) {
        let Some(sink) = self.telemetry() else { return };
        if !sink.due() {
            return;
        }
        let frame = sink.publish(
            self.rank(),
            &self.current_phase_name(),
            self.epoch.elapsed(),
        );
        let taken = self.transport.publish_telemetry(&encode_stat_frame(&frame));
        if !taken && self.size() > 1 {
            sink.note_wire_drop();
        }
    }

    /// This rank's id (0-based).
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// This rank's statistics handle.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Wire-level counters from the transport (messages/bytes actually
    /// moved, including framing overhead on networked backends).
    pub fn wire_stats(&self) -> WireStats {
        self.transport.wire_stats()
    }

    /// Enter a named program phase (`sync_3`, `pre_1`, `reduce_err`, ...).
    /// Subsequent trace events and errors carry it; re-entering a name
    /// reuses its index.
    pub fn enter_phase(&self, name: &str) {
        let mut phases = self.phases.lock();
        let idx = match phases.iter().position(|p| p == name) {
            Some(i) => i,
            None => {
                phases.push(name.to_string());
                phases.len() - 1
            }
        };
        self.phase.store(idx as u32, Ordering::Relaxed);
    }

    /// Phase names in index order (parallel to `TraceEvent::phase`).
    pub fn phase_names(&self) -> Vec<String> {
        self.phases.lock().clone()
    }

    fn current_phase(&self) -> u32 {
        self.phase.load(Ordering::Relaxed)
    }

    fn current_phase_name(&self) -> String {
        let phases = self.phases.lock();
        phases
            .get(self.current_phase() as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Attach the executing phase to a transport error.
    fn ctx(&self, e: CommError) -> CommError {
        let name = self.current_phase_name();
        e.with_phase(&name)
    }

    fn record(
        &self,
        kind: EventKind,
        start: Instant,
        peer: Option<usize>,
        elems: usize,
        bytes: usize,
        seq: Option<u64>,
    ) {
        let end = self.epoch.elapsed();
        let start = start.duration_since(self.epoch);
        self.trace.lock().push(TraceEvent {
            kind,
            start,
            end,
            peer,
            elems,
            bytes,
            phase: self.current_phase(),
            seq,
        });
        if let Some(sink) = self.telemetry() {
            let span = end.saturating_sub(start);
            match kind {
                EventKind::Send => {
                    sink.add_comm(span);
                    if let Some(p) = peer {
                        sink.add_send(p, bytes);
                    }
                }
                EventKind::Reduce => sink.add_comm(span),
                EventKind::Recv | EventKind::Barrier => sink.add_wait(span),
                EventKind::Compute => sink.add_compute(span),
                EventKind::Overlap => sink.add_overlap(span),
            }
        }
        self.maybe_publish_telemetry();
    }

    /// The instant trace timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Drain this rank's recorded trace (see [`crate::trace`]).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace.lock())
    }

    /// Send `payload` to rank `to` with `tag`. Buffered; never blocks.
    ///
    /// # Panics
    /// Panics if `to` is out of range or is this rank itself.
    pub fn send(&self, to: usize, tag: u64, payload: &[f64]) -> Result<(), CommError> {
        let t0 = Instant::now();
        let (bytes, seq) = self.send_raw(to, tag, payload)?;
        self.record(
            EventKind::Send,
            t0,
            Some(to),
            payload.len(),
            bytes,
            Some(seq),
        );
        Ok(())
    }

    fn send_raw(&self, to: usize, tag: u64, payload: &[f64]) -> Result<(usize, u64), CommError> {
        assert!(to < self.size(), "send to rank {to} of {}", self.size());
        assert_ne!(to, self.rank(), "self-send is a schedule bug");
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .elems_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let req = self
            .transport
            .isend(to, tag, payload)
            .map_err(|e| self.ctx(e))?;
        let seq = req.seq;
        let bytes = self
            .transport
            .wait_send(req, self.timeout)
            .map_err(|e| self.ctx(e))?;
        Ok((bytes, seq))
    }

    /// Receive the next message from `from` with `tag` (FIFO per
    /// `(from, tag)`); messages for other `(from, tag)` pairs arriving
    /// first are parked, preserving their own order.
    pub fn recv(&self, from: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let t0 = Instant::now();
        let (payload, bytes, seq) = self.recv_raw(from, tag)?;
        self.record(
            EventKind::Recv,
            t0,
            Some(from),
            payload.len(),
            bytes,
            Some(seq),
        );
        Ok(payload)
    }

    /// Post a nonblocking send of `payload` to rank `to` under `tag`.
    /// Both shipped backends buffer sends, so the returned request is
    /// already complete; a `Send` trace event is recorded at post time
    /// (same footprint as the blocking [`Comm::send`], so overlap does
    /// not change per-phase message/byte accounting).
    ///
    /// # Panics
    /// Panics if `to` is out of range or is this rank itself.
    pub fn isend(&self, to: usize, tag: u64, payload: &[f64]) -> Result<SendRequest, CommError> {
        let t0 = Instant::now();
        assert!(to < self.size(), "send to rank {to} of {}", self.size());
        assert_ne!(to, self.rank(), "self-send is a schedule bug");
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .elems_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let req = self
            .transport
            .isend(to, tag, payload)
            .map_err(|e| self.ctx(e))?;
        self.record(
            EventKind::Send,
            t0,
            Some(to),
            payload.len(),
            req.wire_bytes,
            Some(req.seq),
        );
        Ok(req)
    }

    /// Complete a send request posted with [`Comm::isend`], returning
    /// its wire bytes.
    pub fn wait_send(&self, req: SendRequest) -> Result<usize, CommError> {
        self.transport
            .wait_send(req, self.timeout)
            .map_err(|e| self.ctx(e))
    }

    /// Post a nonblocking receive for a message from `from` under
    /// `tag`. Nothing is recorded until the request completes.
    pub fn irecv(&self, from: usize, tag: u64) -> RecvRequest {
        self.transport.irecv(from, tag)
    }

    /// Block until the receive posted as `req` completes, recording a
    /// `Recv` trace event spanning the wait (so hidden latency shows up
    /// as a short wait instead of a long one).
    pub fn wait_recv(&self, req: RecvRequest) -> Result<Vec<f64>, CommError> {
        let t0 = Instant::now();
        let from = req.from;
        let (payload, bytes, seq) = self
            .transport
            .wait_recv(req, self.timeout)
            .map_err(|e| self.ctx(e))?;
        self.record(
            EventKind::Recv,
            t0,
            Some(from),
            payload.len(),
            bytes,
            Some(seq),
        );
        Ok(payload)
    }

    /// Poll a receive request without blocking; see
    /// [`Transport::test_recv`].
    pub fn test_recv(&self, req: &mut RecvRequest) -> Result<bool, CommError> {
        self.transport.test_recv(req).map_err(|e| self.ctx(e))
    }

    /// Complete a receive with a bounded spin before parking: poll
    /// [`Comm::test_recv`] a few dozen times (cheap when the message is
    /// already in flight — the common case right after an overlap
    /// split), then fall back to the blocking [`Comm::wait_recv`],
    /// which parks the thread instead of burning a core while a slow
    /// rank catches up. Records exactly one `Recv` trace event, like
    /// `wait_recv`.
    pub fn wait_recv_adaptive(&self, mut req: RecvRequest) -> Result<Vec<f64>, CommError> {
        const SPIN_LIMIT: u32 = 64;
        let t0 = Instant::now();
        for _ in 0..SPIN_LIMIT {
            if self
                .transport
                .test_recv(&mut req)
                .map_err(|e| self.ctx(e))?
            {
                let from = req.from;
                let (payload, bytes, seq) = self
                    .transport
                    .wait_recv(req, self.timeout)
                    .map_err(|e| self.ctx(e))?;
                self.record(
                    EventKind::Recv,
                    t0,
                    Some(from),
                    payload.len(),
                    bytes,
                    Some(seq),
                );
                return Ok(payload);
            }
            std::hint::spin_loop();
        }
        std::thread::yield_now();
        let from = req.from;
        let (payload, bytes, seq) = self
            .transport
            .wait_recv(req, self.timeout)
            .map_err(|e| self.ctx(e))?;
        self.record(
            EventKind::Recv,
            t0,
            Some(from),
            payload.len(),
            bytes,
            Some(seq),
        );
        Ok(payload)
    }

    fn recv_raw(&self, from: usize, tag: u64) -> Result<(Vec<f64>, usize, u64), CommError> {
        let req = self.transport.irecv(from, tag);
        self.transport
            .wait_recv(req, self.timeout)
            .map_err(|e| self.ctx(e))
    }

    /// Simultaneous exchange with a peer: send then receive. Safe against
    /// deadlock because sends are buffered.
    pub fn sendrecv(
        &self,
        peer: usize,
        send_tag: u64,
        payload: &[f64],
        recv_tag: u64,
    ) -> Result<Vec<f64>, CommError> {
        self.send(peer, send_tag, payload)?;
        self.recv(peer, recv_tag)
    }

    /// Block until all ranks arrive.
    pub fn barrier(&self) -> Result<(), CommError> {
        let t0 = Instant::now();
        self.stats.barriers.fetch_add(1, Ordering::Relaxed);
        self.transport
            .barrier(self.timeout)
            .map_err(|e| self.ctx(e))?;
        self.record(EventKind::Barrier, t0, None, 0, 0, None);
        Ok(())
    }

    /// All-reduce a single value with `op`; every rank returns the same
    /// result. Implemented as gather-to-0 + broadcast.
    pub fn allreduce(&self, value: f64, op: ReduceOp) -> Result<f64, CommError> {
        let t0 = Instant::now();
        self.stats.reduces.fetch_add(1, Ordering::Relaxed);
        const REDUCE_TAG: u64 = u64::MAX - 1;
        const BCAST_TAG: u64 = u64::MAX - 2;
        if self.size() == 1 {
            return Ok(value);
        }
        let mut bytes = 0usize;
        let result = if self.rank() == 0 {
            let mut acc = value;
            for src in 1..self.size() {
                let (v, b, _) = self.recv_raw(src, REDUCE_TAG)?;
                bytes += b;
                acc = op.apply(acc, v[0]);
            }
            for dst in 1..self.size() {
                bytes += self.send_raw(dst, BCAST_TAG, &[acc])?.0;
            }
            acc
        } else {
            bytes += self.send_raw(0, REDUCE_TAG, &[value])?.0;
            let (v, b, _) = self.recv_raw(0, BCAST_TAG)?;
            bytes += b;
            v[0]
        };
        self.record(EventKind::Reduce, t0, None, 1, bytes, None);
        Ok(result)
    }

    /// Gather every rank's `payload` at `root`: returns `Some(vec of
    /// per-rank payloads, in rank order)` on the root and `None`
    /// elsewhere.
    pub fn gather(&self, root: usize, payload: &[f64]) -> Result<Option<Vec<Vec<f64>>>, CommError> {
        const TAG: u64 = u64::MAX - 4;
        if self.rank() == root {
            let mut out = vec![Vec::new(); self.size()];
            out[root] = payload.to_vec();
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv(src, TAG)?;
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, TAG, payload)?;
            Ok(None)
        }
    }

    /// Broadcast `payload` from `root` to all ranks; returns the payload
    /// on every rank.
    pub fn broadcast(&self, root: usize, payload: &[f64]) -> Result<Vec<f64>, CommError> {
        const TAG: u64 = u64::MAX - 3;
        if self.size() == 1 {
            return Ok(payload.to_vec());
        }
        if self.rank() == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send(dst, TAG, payload)?;
                }
            }
            Ok(payload.to_vec())
        } else {
            self.recv(root, TAG)
        }
    }

    /// Release wire resources (close sockets, join I/O threads). Safe to
    /// call more than once; dropping the `Comm` without calling it is
    /// also fine for the in-process backend.
    pub fn shutdown(&self) {
        self.transport.shutdown();
    }
}

impl Recorder for Comm {
    /// Append a span (typically [`EventKind::Compute`] from the
    /// interpreter) to this rank's trace under the current phase.
    fn record_span(&self, kind: EventKind, start: Instant, end: Instant) {
        self.trace.lock().push(TraceEvent {
            kind,
            start: start.duration_since(self.epoch),
            end: end.duration_since(self.epoch),
            peer: None,
            elems: 0,
            bytes: 0,
            phase: self.current_phase(),
            seq: None,
        });
        if let Some(sink) = self.telemetry() {
            let span = end.saturating_duration_since(start);
            match kind {
                EventKind::Overlap => sink.add_overlap(span),
                _ => sink.add_compute(span),
            }
        }
        self.maybe_publish_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inproc::{run_spmd, run_spmd_with_timeout};

    #[test]
    fn ring_pass() {
        let results = run_spmd(4, |comm| {
            let r = comm.rank();
            let n = comm.size();
            comm.send((r + 1) % n, 7, &[r as f64]).unwrap();
            comm.recv((r + n - 1) % n, 7).unwrap()[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn single_rank_works() {
        let results = run_spmd(1, |comm| {
            comm.barrier().unwrap();
            comm.allreduce(42.0, ReduceOp::Max).unwrap()
        });
        assert_eq!(results, vec![42.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0]).unwrap();
                comm.send(1, 2, &[2.0]).unwrap();
                comm.send(1, 3, &[3.0]).unwrap();
                0.0
            } else {
                // receive in reverse tag order: parking must kick in
                let c = comm.recv(0, 3).unwrap()[0];
                let b = comm.recv(0, 2).unwrap()[0];
                let a = comm.recv(0, 1).unwrap()[0];
                a * 100.0 + b * 10.0 + c
            }
        });
        assert_eq!(results[1], 123.0);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                for k in 0..100 {
                    comm.send(1, 5, &[k as f64]).unwrap();
                }
                0.0
            } else {
                let mut prev = -1.0;
                for _ in 0..100 {
                    let v = comm.recv(0, 5).unwrap()[0];
                    assert!(v > prev, "FIFO violated: {v} after {prev}");
                    prev = v;
                }
                prev
            }
        });
        assert_eq!(results[1], 99.0);
    }

    #[test]
    fn sendrecv_symmetric_exchange_no_deadlock() {
        // all ranks exchange with both neighbors simultaneously
        let n = 6;
        let results = run_spmd(n, |comm| {
            let r = comm.rank();
            let mut acc = 0.0;
            if r > 0 {
                acc += comm.sendrecv(r - 1, 10, &[r as f64], 11).unwrap()[0];
            }
            if r + 1 < comm.size() {
                acc += comm.sendrecv(r + 1, 11, &[r as f64], 10).unwrap()[0];
            }
            acc
        });
        // interior ranks get left + right neighbor ids
        assert_eq!(results[2], 1.0 + 3.0);
        assert_eq!(results[0], 1.0);
        assert_eq!(results[n - 1], (n - 2) as f64);
    }

    #[test]
    fn allreduce_ops() {
        for (op, expect) in [
            (ReduceOp::Max, 3.0),
            (ReduceOp::Min, 0.0),
            (ReduceOp::Sum, 6.0),
        ] {
            let results = run_spmd(4, move |comm| {
                comm.allreduce(comm.rank() as f64, op).unwrap()
            });
            assert!(
                results.iter().all(|&v| v == expect),
                "{op:?} -> {results:?}"
            );
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = run_spmd(4, |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            comm.gather(1, &mine).unwrap()
        });
        assert!(results[0].is_none() && results[2].is_none() && results[3].is_none());
        let g = results[1].as_ref().unwrap();
        assert_eq!(g.len(), 4);
        for (r, v) in g.iter().enumerate() {
            assert_eq!(v.len(), r + 1);
            assert!(v.iter().all(|&x| x == r as f64));
        }
    }

    #[test]
    fn gather_single_rank() {
        let results = run_spmd(1, |comm| comm.gather(0, &[7.0]).unwrap());
        assert_eq!(results[0].as_ref().unwrap()[0], vec![7.0]);
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let results = run_spmd(4, |comm| {
            let data = if comm.rank() == 2 {
                vec![9.0, 8.0]
            } else {
                vec![]
            };
            comm.broadcast(2, &data).unwrap()
        });
        assert!(results.iter().all(|v| v == &vec![9.0, 8.0]));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_spmd(8, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // after the barrier everyone must observe all 8 increments
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn deadlock_surfaces_as_timeout() {
        let results = run_spmd_with_timeout(2, Duration::from_millis(50), |comm| {
            if comm.rank() == 0 {
                // rank 0 waits for a message rank 1 never sends
                comm.recv(1, 99)
            } else {
                Ok(vec![])
            }
        });
        let err = results[0].as_ref().unwrap_err();
        assert!(err.is_timeout());
        assert_eq!((err.rank, err.peer, err.tag), (0, Some(1), Some(99)));
    }

    #[test]
    fn errors_carry_the_entered_phase() {
        let results = run_spmd_with_timeout(2, Duration::from_millis(50), |comm| {
            comm.enter_phase("sync_7");
            if comm.rank() == 0 {
                comm.recv(1, 99)
            } else {
                Ok(vec![])
            }
        });
        let err = results[0].as_ref().unwrap_err();
        assert_eq!(err.phase.as_deref(), Some("sync_7"));
    }

    #[test]
    fn stats_count_traffic() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0.0; 10]).unwrap();
                comm.send(1, 2, &[0.0; 5]).unwrap();
            } else {
                comm.recv(0, 1).unwrap();
                comm.recv(0, 2).unwrap();
            }
            comm.barrier().unwrap();
            comm.stats().snapshot()
        });
        assert_eq!(results[0], (2, 15, 1, 0));
        assert_eq!(results[1], (0, 0, 1, 0));
    }

    #[test]
    fn wire_stats_count_bytes_both_ways() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0.0; 10]).unwrap();
            } else {
                comm.recv(0, 1).unwrap();
            }
            comm.barrier().unwrap();
            comm.wire_stats()
        });
        assert_eq!((results[0].msgs_sent, results[0].bytes_sent), (1, 80));
        assert_eq!((results[1].msgs_recvd, results[1].bytes_recvd), (1, 80));
    }

    #[test]
    fn trace_events_carry_phase_and_bytes() {
        let results = run_spmd(2, |comm| {
            comm.enter_phase("fill_0");
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0, 2.0]).unwrap();
            } else {
                comm.recv(0, 1).unwrap();
            }
            comm.enter_phase("reduce_err");
            comm.allreduce(1.0, ReduceOp::Max).unwrap();
            (comm.take_trace(), comm.phase_names())
        });
        let (trace, names) = &results[0];
        // "main" is index 0; entered phases follow in order
        assert_eq!(names, &["main", "fill_0", "reduce_err"]);
        let send = trace
            .iter()
            .find(|e| e.kind == EventKind::Send)
            .expect("send traced");
        assert_eq!(send.bytes, 16);
        assert_eq!(names[send.phase as usize], "fill_0");
        let reduce = trace
            .iter()
            .find(|e| e.kind == EventKind::Reduce)
            .expect("reduce traced");
        assert!(reduce.bytes > 0);
        assert_eq!(names[reduce.phase as usize], "reduce_err");
    }

    #[test]
    #[should_panic(expected = "SPMD rank panicked")]
    fn self_send_panics() {
        run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(0, 1, &[1.0]).unwrap();
            }
        });
    }

    #[test]
    fn large_payload_roundtrip() {
        let big: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
        let results = run_spmd(2, move |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &big).unwrap();
                true
            } else {
                let got = comm.recv(0, 1).unwrap();
                got.len() == 100_000 && got[99_999] == 99_999.0
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn nonblocking_roundtrip_records_the_same_events_as_blocking() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                let req = comm.isend(1, 4, &[1.0, 2.0, 3.0]).unwrap();
                assert_eq!(comm.wait_send(req).unwrap(), 24);
            } else {
                let mut req = comm.irecv(0, 4);
                // poll until the message lands, then wait must hand back
                // the payload test_recv cached — never a lost completion
                while !comm.test_recv(&mut req).unwrap() {
                    std::thread::yield_now();
                }
                assert_eq!(comm.wait_recv(req).unwrap(), vec![1.0, 2.0, 3.0]);
            }
            comm.barrier().unwrap();
            comm.take_trace()
        });
        let send = results[0]
            .iter()
            .find(|e| e.kind == EventKind::Send)
            .expect("isend traced as a Send at post time");
        assert_eq!((send.peer, send.elems, send.bytes), (Some(1), 3, 24));
        let recv = results[1]
            .iter()
            .find(|e| e.kind == EventKind::Recv)
            .expect("wait_recv traced as a Recv");
        assert_eq!((recv.peer, recv.elems, recv.bytes), (Some(0), 3, 24));
    }

    #[test]
    fn adaptive_wait_delivers_and_records_one_event() {
        // fast path: message already sent when the waiter spins
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, &[5.0]).unwrap();
                comm.barrier().unwrap();
                vec![]
            } else {
                comm.barrier().unwrap();
                let req = comm.irecv(0, 9);
                let got = comm.wait_recv_adaptive(req).unwrap();
                let recvs = comm
                    .take_trace()
                    .iter()
                    .filter(|e| e.kind == EventKind::Recv)
                    .count();
                assert_eq!(recvs, 1, "adaptive wait must record exactly one Recv");
                got
            }
        });
        assert_eq!(results[1], vec![5.0]);

        // slow path: the sender stalls past the spin window, so the
        // waiter must park and still complete
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(30));
                comm.send(1, 9, &[7.0]).unwrap();
                vec![]
            } else {
                let req = comm.irecv(0, 9);
                comm.wait_recv_adaptive(req).unwrap()
            }
        });
        assert_eq!(results[1], vec![7.0]);
    }

    #[test]
    fn default_dissemination_barrier_synchronizes() {
        // Exercise the Transport::barrier default (dissemination over
        // send/recv) by wrapping the inproc mesh in a transport that does
        // NOT override barrier, so the trait default runs.
        use crate::inproc::InprocTransport;
        use crate::transport::{Transport, WireStats};
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct NoNativeBarrier(InprocTransport);
        impl Transport for NoNativeBarrier {
            fn rank(&self) -> usize {
                self.0.rank()
            }
            fn size(&self) -> usize {
                self.0.size()
            }
            fn isend(
                &self,
                to: usize,
                tag: u64,
                payload: &[f64],
            ) -> Result<SendRequest, CommError> {
                self.0.isend(to, tag, payload)
            }
            fn wait_recv(
                &self,
                req: RecvRequest,
                timeout: Duration,
            ) -> Result<(Vec<f64>, usize, u64), CommError> {
                self.0.wait_recv(req, timeout)
            }
            fn test_recv(&self, req: &mut RecvRequest) -> Result<bool, CommError> {
                self.0.test_recv(req)
            }
            fn wire_stats(&self) -> WireStats {
                self.0.wire_stats()
            }
        }

        for n in [1usize, 2, 3, 5, 8] {
            let mesh: Vec<NoNativeBarrier> = InprocTransport::mesh(n)
                .into_iter()
                .map(NoNativeBarrier)
                .collect();
            let arrivals = AtomicUsize::new(0);
            let released_early = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for t in mesh {
                    let (arrivals, released_early) = (&arrivals, &released_early);
                    scope.spawn(move || {
                        arrivals.fetch_add(1, Ordering::SeqCst);
                        t.barrier(Duration::from_secs(5)).unwrap();
                        if arrivals.load(Ordering::SeqCst) != n {
                            released_early.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            assert_eq!(released_early.load(Ordering::SeqCst), 0, "n={n}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::inproc::run_spmd;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// allreduce agrees with the sequential fold on every rank.
        #[test]
        fn allreduce_matches_sequential(
            values in proptest::collection::vec(-1.0e6f64..1.0e6, 2..6),
        ) {
            let n = values.len();
            let vals = values.clone();
            let results = run_spmd(n, move |comm| {
                comm.allreduce(vals[comm.rank()], ReduceOp::Max).unwrap()
            });
            let expect = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(results.iter().all(|&v| v == expect));

            let vals = values.clone();
            let sums = run_spmd(n, move |comm| {
                comm.allreduce(vals[comm.rank()], ReduceOp::Sum).unwrap()
            });
            let expect_sum: f64 = values.iter().sum();
            // gather-to-root makes the reduction order deterministic
            prop_assert!(sums.iter().all(|&v| (v - expect_sum).abs() < 1e-6));
        }

        /// Random neighbor exchanges deliver exactly the sent payloads.
        #[test]
        fn exchange_payload_integrity(
            payload in proptest::collection::vec(-1.0e9f64..1.0e9, 1..64),
            n in 2usize..5,
        ) {
            let p = payload.clone();
            let results = run_spmd(n, move |comm| {
                let r = comm.rank();
                let peer = if r % 2 == 0 { r + 1 } else { r - 1 };
                if peer >= comm.size() {
                    return true; // odd rank count: last even rank idles
                }
                let tagged: Vec<f64> =
                    p.iter().map(|v| v + r as f64).collect();
                let got = comm.sendrecv(peer, 1, &tagged, 1).unwrap();
                let expect: Vec<f64> =
                    p.iter().map(|v| v + peer as f64).collect();
                got == expect
            });
            prop_assert!(results.iter().all(|&ok| ok));
        }
    }
}
