//! The communicator: point-to-point messaging and collectives.

use crate::trace::{EventKind, TraceEvent};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Default receive timeout; long enough for heavyweight tests, short
/// enough that a deadlocked exchange fails rather than hangs.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A message in flight: `(source, tag, payload)`.
type Msg = (usize, u64, Vec<f64>);

/// Why a receive failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// No matching message arrived within the timeout — almost always a
    /// deadlock or a schedule bug in generated code.
    Timeout {
        /// The waiting rank.
        rank: usize,
        /// The peer it waited on.
        from: usize,
        /// The tag it waited for.
        tag: u64,
    },
    /// The peer's endpoint is gone (its thread ended or panicked).
    Disconnected {
        /// The waiting rank.
        rank: usize,
        /// The peer it waited on.
        from: usize,
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout { rank, from, tag } => write!(
                f,
                "rank {rank}: timeout waiting for message from rank {from} tag {tag} (deadlock?)"
            ),
            RecvError::Disconnected { rank, from } => {
                write!(f, "rank {rank}: peer {from} disconnected")
            }
        }
    }
}

impl std::error::Error for RecvError {}

/// Reduction operators for [`Comm::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise maximum (CFD convergence error).
    Max,
    /// Elementwise minimum.
    Min,
    /// Elementwise sum.
    Sum,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Sum => a + b,
        }
    }
}

/// Per-rank communication statistics.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Messages sent.
    pub msgs_sent: AtomicU64,
    /// Total f64 elements sent.
    pub elems_sent: AtomicU64,
    /// Barrier participations.
    pub barriers: AtomicU64,
    /// Allreduce participations.
    pub reduces: AtomicU64,
}

impl CommStats {
    /// Snapshot as plain numbers `(msgs, elems, barriers, reduces)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.msgs_sent.load(Ordering::Relaxed),
            self.elems_sent.load(Ordering::Relaxed),
            self.barriers.load(Ordering::Relaxed),
            self.reduces.load(Ordering::Relaxed),
        )
    }
}

/// One rank's endpoint into the communicator.
pub struct Comm {
    rank: usize,
    size: usize,
    /// `senders[d]` delivers to rank `d`.
    senders: Vec<Sender<Msg>>,
    /// This rank's inbox.
    inbox: Receiver<Msg>,
    /// Out-of-order messages parked until their `(from, tag)` is asked for.
    parked: Mutex<VecDeque<Msg>>,
    barrier: Arc<Barrier>,
    stats: Arc<CommStats>,
    timeout: Duration,
    /// Shared epoch for trace timestamps (same instant on every rank).
    epoch: Instant,
    /// Recorded communication events.
    trace: Mutex<Vec<TraceEvent>>,
}

impl Comm {
    /// This rank's id (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's statistics handle.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Drain this rank's recorded trace (see [`crate::trace`]).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace.lock())
    }

    fn record(&self, kind: EventKind, start: Instant, peer: usize, elems: usize) {
        let end = self.epoch.elapsed();
        let start = start.duration_since(self.epoch);
        self.trace.lock().push(TraceEvent {
            kind,
            start,
            end,
            peer,
            elems,
        });
    }

    /// Send `payload` to rank `to` with `tag`. Buffered; never blocks.
    ///
    /// # Panics
    /// Panics if `to` is out of range or is this rank itself.
    pub fn send(&self, to: usize, tag: u64, payload: &[f64]) {
        let t0 = Instant::now();
        self.send_raw(to, tag, payload);
        self.record(EventKind::Send, t0, to, payload.len());
    }

    fn send_raw(&self, to: usize, tag: u64, payload: &[f64]) {
        assert!(to < self.size, "send to rank {to} of {}", self.size);
        assert_ne!(to, self.rank, "self-send is a schedule bug");
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .elems_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        // peer gone = program shutting down; ignore like MPI_Send to a
        // finalized rank would abort — tests catch it via recv timeouts.
        let _ = self.senders[to].send((self.rank, tag, payload.to_vec()));
    }

    /// Receive the next message from `from` with `tag` (FIFO per
    /// `(from, tag)`); messages for other `(from, tag)` pairs arriving
    /// first are parked, preserving their own order.
    pub fn recv(&self, from: usize, tag: u64) -> Result<Vec<f64>, RecvError> {
        let t0 = Instant::now();
        let r = self.recv_raw(from, tag);
        if let Ok(p) = &r {
            self.record(EventKind::Recv, t0, from, p.len());
        }
        r
    }

    fn recv_raw(&self, from: usize, tag: u64) -> Result<Vec<f64>, RecvError> {
        // check parked messages first
        {
            let mut parked = self.parked.lock();
            if let Some(pos) = parked.iter().position(|m| m.0 == from && m.1 == tag) {
                return Ok(parked.remove(pos).unwrap().2);
            }
        }
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.inbox.recv_timeout(remaining) {
                Ok((src, t, payload)) => {
                    if src == from && t == tag {
                        return Ok(payload);
                    }
                    self.parked.lock().push_back((src, t, payload));
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    return Err(RecvError::Timeout {
                        rank: self.rank,
                        from,
                        tag,
                    })
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(RecvError::Disconnected {
                        rank: self.rank,
                        from,
                    })
                }
            }
        }
    }

    /// Simultaneous exchange with a peer: send then receive. Safe against
    /// deadlock because sends are buffered.
    pub fn sendrecv(
        &self,
        peer: usize,
        send_tag: u64,
        payload: &[f64],
        recv_tag: u64,
    ) -> Result<Vec<f64>, RecvError> {
        self.send(peer, send_tag, payload);
        self.recv(peer, recv_tag)
    }

    /// Block until all ranks arrive.
    pub fn barrier(&self) {
        let t0 = Instant::now();
        self.stats.barriers.fetch_add(1, Ordering::Relaxed);
        self.barrier.wait();
        self.record(EventKind::Barrier, t0, 0, 0);
    }

    /// All-reduce a single value with `op`; every rank returns the same
    /// result. Implemented as gather-to-0 + broadcast.
    pub fn allreduce(&self, value: f64, op: ReduceOp) -> Result<f64, RecvError> {
        let t0 = Instant::now();
        self.stats.reduces.fetch_add(1, Ordering::Relaxed);
        const REDUCE_TAG: u64 = u64::MAX - 1;
        const BCAST_TAG: u64 = u64::MAX - 2;
        if self.size == 1 {
            return Ok(value);
        }
        let result = if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                let v = self.recv_raw(src, REDUCE_TAG)?;
                acc = op.apply(acc, v[0]);
            }
            for dst in 1..self.size {
                self.send_raw(dst, BCAST_TAG, &[acc]);
            }
            acc
        } else {
            self.send_raw(0, REDUCE_TAG, &[value]);
            self.recv_raw(0, BCAST_TAG)?[0]
        };
        self.record(EventKind::Reduce, t0, 0, 1);
        Ok(result)
    }

    /// Gather every rank's `payload` at `root`: returns `Some(vec of
    /// per-rank payloads, in rank order)` on the root and `None`
    /// elsewhere.
    pub fn gather(&self, root: usize, payload: &[f64]) -> Result<Option<Vec<Vec<f64>>>, RecvError> {
        const TAG: u64 = u64::MAX - 4;
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size];
            out[root] = payload.to_vec();
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv(src, TAG)?;
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, TAG, payload);
            Ok(None)
        }
    }

    /// Broadcast `payload` from `root` to all ranks; returns the payload
    /// on every rank.
    pub fn broadcast(&self, root: usize, payload: &[f64]) -> Result<Vec<f64>, RecvError> {
        const TAG: u64 = u64::MAX - 3;
        if self.size == 1 {
            return Ok(payload.to_vec());
        }
        if self.rank == root {
            for dst in 0..self.size {
                if dst != root {
                    self.send(dst, TAG, payload);
                }
            }
            Ok(payload.to_vec())
        } else {
            self.recv(root, TAG)
        }
    }
}

/// Launch `n` ranks; each runs `f(comm)` on its own thread. Results are
/// returned in rank order. A panicking rank propagates its panic.
///
/// ```
/// use autocfd_runtime::{run_spmd, ReduceOp};
/// let maxima = run_spmd(4, |comm| {
///     comm.allreduce(comm.rank() as f64, ReduceOp::Max).unwrap()
/// });
/// assert_eq!(maxima, vec![3.0; 4]);
/// ```
pub fn run_spmd<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    run_spmd_with_timeout(n, DEFAULT_TIMEOUT, f)
}

/// [`run_spmd`] with an explicit receive timeout (tests use short ones to
/// exercise deadlock surfacing).
pub fn run_spmd_with_timeout<T, F>(n: usize, timeout: Duration, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    assert!(n >= 1, "need at least one rank");
    let mut senders = Vec::with_capacity(n);
    let mut inboxes = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Msg>();
        senders.push(tx);
        inboxes.push(rx);
    }
    let barrier = Arc::new(Barrier::new(n));
    let epoch = Instant::now();
    let comms: Vec<Comm> = inboxes
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Comm {
            rank,
            size: n,
            senders: senders.clone(),
            inbox,
            parked: Mutex::new(VecDeque::new()),
            barrier: barrier.clone(),
            stats: Arc::new(CommStats::default()),
            timeout,
            epoch,
            trace: Mutex::new(Vec::new()),
        })
        .collect();
    drop(senders);

    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| scope.spawn(|| f(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("SPMD rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = run_spmd(4, |comm| {
            let r = comm.rank();
            let n = comm.size();
            comm.send((r + 1) % n, 7, &[r as f64]);
            comm.recv((r + n - 1) % n, 7).unwrap()[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn single_rank_works() {
        let results = run_spmd(1, |comm| {
            comm.barrier();
            comm.allreduce(42.0, ReduceOp::Max).unwrap()
        });
        assert_eq!(results, vec![42.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0]);
                comm.send(1, 2, &[2.0]);
                comm.send(1, 3, &[3.0]);
                0.0
            } else {
                // receive in reverse tag order: parking must kick in
                let c = comm.recv(0, 3).unwrap()[0];
                let b = comm.recv(0, 2).unwrap()[0];
                let a = comm.recv(0, 1).unwrap()[0];
                a * 100.0 + b * 10.0 + c
            }
        });
        assert_eq!(results[1], 123.0);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                for k in 0..100 {
                    comm.send(1, 5, &[k as f64]);
                }
                0.0
            } else {
                let mut prev = -1.0;
                for _ in 0..100 {
                    let v = comm.recv(0, 5).unwrap()[0];
                    assert!(v > prev, "FIFO violated: {v} after {prev}");
                    prev = v;
                }
                prev
            }
        });
        assert_eq!(results[1], 99.0);
    }

    #[test]
    fn sendrecv_symmetric_exchange_no_deadlock() {
        // all ranks exchange with both neighbors simultaneously
        let n = 6;
        let results = run_spmd(n, |comm| {
            let r = comm.rank();
            let mut acc = 0.0;
            if r > 0 {
                acc += comm.sendrecv(r - 1, 10, &[r as f64], 11).unwrap()[0];
            }
            if r + 1 < comm.size() {
                acc += comm.sendrecv(r + 1, 11, &[r as f64], 10).unwrap()[0];
            }
            acc
        });
        // interior ranks get left + right neighbor ids
        assert_eq!(results[2], 1.0 + 3.0);
        assert_eq!(results[0], 1.0);
        assert_eq!(results[n - 1], (n - 2) as f64);
    }

    #[test]
    fn allreduce_ops() {
        for (op, expect) in [
            (ReduceOp::Max, 3.0),
            (ReduceOp::Min, 0.0),
            (ReduceOp::Sum, 6.0),
        ] {
            let results = run_spmd(4, move |comm| {
                comm.allreduce(comm.rank() as f64, op).unwrap()
            });
            assert!(
                results.iter().all(|&v| v == expect),
                "{op:?} -> {results:?}"
            );
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = run_spmd(4, |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            comm.gather(1, &mine).unwrap()
        });
        assert!(results[0].is_none() && results[2].is_none() && results[3].is_none());
        let g = results[1].as_ref().unwrap();
        assert_eq!(g.len(), 4);
        for (r, v) in g.iter().enumerate() {
            assert_eq!(v.len(), r + 1);
            assert!(v.iter().all(|&x| x == r as f64));
        }
    }

    #[test]
    fn gather_single_rank() {
        let results = run_spmd(1, |comm| comm.gather(0, &[7.0]).unwrap());
        assert_eq!(results[0].as_ref().unwrap()[0], vec![7.0]);
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let results = run_spmd(4, |comm| {
            let data = if comm.rank() == 2 {
                vec![9.0, 8.0]
            } else {
                vec![]
            };
            comm.broadcast(2, &data).unwrap()
        });
        assert!(results.iter().all(|v| v == &vec![9.0, 8.0]));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_spmd(8, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // after the barrier everyone must observe all 8 increments
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn deadlock_surfaces_as_timeout() {
        let results = run_spmd_with_timeout(2, Duration::from_millis(50), |comm| {
            if comm.rank() == 0 {
                // rank 0 waits for a message rank 1 never sends
                comm.recv(1, 99)
            } else {
                Ok(vec![])
            }
        });
        assert_eq!(
            results[0],
            Err(RecvError::Timeout {
                rank: 0,
                from: 1,
                tag: 99
            })
        );
    }

    #[test]
    fn stats_count_traffic() {
        let results = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0.0; 10]);
                comm.send(1, 2, &[0.0; 5]);
            } else {
                comm.recv(0, 1).unwrap();
                comm.recv(0, 2).unwrap();
            }
            comm.barrier();
            comm.stats().snapshot()
        });
        assert_eq!(results[0], (2, 15, 1, 0));
        assert_eq!(results[1], (0, 0, 1, 0));
    }

    #[test]
    #[should_panic(expected = "SPMD rank panicked")]
    fn self_send_panics() {
        run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(0, 1, &[1.0]);
            }
        });
    }

    #[test]
    fn large_payload_roundtrip() {
        let big: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
        let results = run_spmd(2, move |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &big);
                true
            } else {
                let got = comm.recv(0, 1).unwrap();
                got.len() == 100_000 && got[99_999] == 99_999.0
            }
        });
        assert!(results[1]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// allreduce agrees with the sequential fold on every rank.
        #[test]
        fn allreduce_matches_sequential(
            values in proptest::collection::vec(-1.0e6f64..1.0e6, 2..6),
        ) {
            let n = values.len();
            let vals = values.clone();
            let results = run_spmd(n, move |comm| {
                comm.allreduce(vals[comm.rank()], ReduceOp::Max).unwrap()
            });
            let expect = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(results.iter().all(|&v| v == expect));

            let vals = values.clone();
            let sums = run_spmd(n, move |comm| {
                comm.allreduce(vals[comm.rank()], ReduceOp::Sum).unwrap()
            });
            let expect_sum: f64 = values.iter().sum();
            // gather-to-root makes the reduction order deterministic
            prop_assert!(sums.iter().all(|&v| (v - expect_sum).abs() < 1e-6));
        }

        /// Random neighbor exchanges deliver exactly the sent payloads.
        #[test]
        fn exchange_payload_integrity(
            payload in proptest::collection::vec(-1.0e9f64..1.0e9, 1..64),
            n in 2usize..5,
        ) {
            let p = payload.clone();
            let results = run_spmd(n, move |comm| {
                let r = comm.rank();
                let peer = if r % 2 == 0 { r + 1 } else { r - 1 };
                if peer >= comm.size() {
                    return true; // odd rank count: last even rank idles
                }
                let tagged: Vec<f64> =
                    p.iter().map(|v| v + r as f64).collect();
                let got = comm.sendrecv(peer, 1, &tagged, 1).unwrap();
                let expect: Vec<f64> =
                    p.iter().map(|v| v + peer as f64).collect();
                got == expect
            });
            prop_assert!(results.iter().all(|&ok| ok));
        }
    }
}
