//! The typed communication error: every failure carries *who* waited,
//! *on whom*, *for what* (tag), and *where in the program* (phase), so a
//! dropped peer or a deadlocked exchange in a 4-rank TCP run reads like a
//! diagnosis instead of a hang.

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommErrorKind {
    /// No matching message within the receive timeout — almost always a
    /// deadlock or a schedule bug in generated code.
    Timeout,
    /// The peer's endpoint is gone (thread ended, process exited, or the
    /// TCP connection closed). The string is backend detail ("connection
    /// reset", "eof mid-frame", ...), empty for plain channel teardown.
    Disconnected(String),
    /// An I/O failure on the wire (socket error, short write).
    Io(String),
    /// A malformed or unexpected frame / handshake message.
    Protocol(String),
}

/// A communication failure with full context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommError {
    /// What happened.
    pub kind: CommErrorKind,
    /// The rank that observed the failure.
    pub rank: usize,
    /// The peer involved, when there is one.
    pub peer: Option<usize>,
    /// The message tag being waited for / sent, when there is one.
    pub tag: Option<u64>,
    /// The executing program phase (`sync_3`, `pre_1`, `reduce_err`, ...)
    /// at the time of the failure, attached by the communicator.
    pub phase: Option<String>,
}

impl CommError {
    /// A receive timeout on `(from, tag)`.
    pub fn timeout(rank: usize, from: usize, tag: u64) -> Self {
        CommError {
            kind: CommErrorKind::Timeout,
            rank,
            peer: Some(from),
            tag: Some(tag),
            phase: None,
        }
    }

    /// A vanished peer, with backend detail.
    pub fn disconnected(rank: usize, peer: usize, detail: impl Into<String>) -> Self {
        CommError {
            kind: CommErrorKind::Disconnected(detail.into()),
            rank,
            peer: Some(peer),
            tag: None,
            phase: None,
        }
    }

    /// A wire I/O failure towards `peer`.
    pub fn io(rank: usize, peer: usize, detail: impl Into<String>) -> Self {
        CommError {
            kind: CommErrorKind::Io(detail.into()),
            rank,
            peer: Some(peer),
            tag: None,
            phase: None,
        }
    }

    /// A protocol violation (bad frame, bad handshake).
    pub fn protocol(rank: usize, detail: impl Into<String>) -> Self {
        CommError {
            kind: CommErrorKind::Protocol(detail.into()),
            rank,
            peer: None,
            tag: None,
            phase: None,
        }
    }

    /// Attach the tag being waited for.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Attach the executing phase name (kept if already set).
    pub fn with_phase(mut self, phase: &str) -> Self {
        if self.phase.is_none() {
            self.phase = Some(phase.to_string());
        }
        self
    }

    /// Whether this is a receive timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(self.kind, CommErrorKind::Timeout)
    }

    /// Whether this is a vanished peer.
    pub fn is_disconnected(&self) -> bool {
        matches!(self.kind, CommErrorKind::Disconnected(_))
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {}", self.rank)?;
        match &self.kind {
            CommErrorKind::Timeout => {
                write!(f, ": timeout waiting for message")?;
                if let Some(p) = self.peer {
                    write!(f, " from rank {p}")?;
                }
            }
            CommErrorKind::Disconnected(detail) => {
                match self.peer {
                    Some(p) => write!(f, ": peer {p} disconnected")?,
                    None => write!(f, ": peer disconnected")?,
                }
                if !detail.is_empty() {
                    write!(f, " ({detail})")?;
                }
            }
            CommErrorKind::Io(detail) => {
                write!(f, ": i/o error")?;
                if let Some(p) = self.peer {
                    write!(f, " towards rank {p}")?;
                }
                write!(f, ": {detail}")?;
            }
            CommErrorKind::Protocol(detail) => {
                write!(f, ": protocol error: {detail}")?;
            }
        }
        if let Some(tag) = self.tag {
            write!(f, " tag {tag}")?;
        }
        if let Some(phase) = &self.phase {
            write!(f, " in phase `{phase}`")?;
        }
        if self.is_timeout() {
            write!(f, " (deadlock?)")?;
        }
        Ok(())
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_full_context() {
        let e = CommError::timeout(2, 0, 1003).with_phase("sync_0");
        let s = e.to_string();
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("from rank 0"), "{s}");
        assert!(s.contains("tag 1003"), "{s}");
        assert!(s.contains("phase `sync_0`"), "{s}");
        assert!(s.contains("deadlock"), "{s}");
    }

    #[test]
    fn phase_attaches_once() {
        let e = CommError::disconnected(1, 3, "connection reset")
            .with_phase("pre_2")
            .with_phase("later");
        assert_eq!(e.phase.as_deref(), Some("pre_2"));
        assert!(e.to_string().contains("connection reset"));
    }
}
