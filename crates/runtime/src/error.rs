//! The typed communication error: every failure carries *who* waited,
//! *on whom*, *for what* (tag), and *where in the program* (phase), so a
//! dropped peer or a deadlocked exchange in a 4-rank TCP run reads like a
//! diagnosis instead of a hang.

/// What went wrong.
///
/// Non-exhaustive: the fault-tolerance work adds variants over time
/// (most recently [`CommErrorKind::PeerRestarting`]); downstream
/// matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommErrorKind {
    /// No matching message within the receive timeout — almost always a
    /// deadlock or a schedule bug in generated code.
    Timeout,
    /// The peer's endpoint is gone (thread ended, process exited, or the
    /// TCP connection closed). The string is backend detail ("connection
    /// reset", "eof mid-frame", ...), empty for plain channel teardown.
    Disconnected(String),
    /// An I/O failure on the wire (socket error, short write).
    Io(String),
    /// A malformed or unexpected frame / handshake message.
    Protocol(String),
    /// The peer is temporarily unreachable but believed to be coming
    /// back: its endpoint refused connections while a bounded
    /// backoff-and-retry dial was in progress. Distinct from
    /// [`CommErrorKind::Disconnected`] (an *established* connection
    /// died): a supervisor seeing this should wait or resume from a
    /// checkpoint rather than declare the peer dead.
    PeerRestarting(String),
}

/// A communication failure with full context.
///
/// Non-exhaustive: construct via the provided constructors
/// ([`CommError::timeout`], [`CommError::disconnected`], ...), not a
/// struct literal.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct CommError {
    /// What happened.
    pub kind: CommErrorKind,
    /// The rank that observed the failure.
    pub rank: usize,
    /// The peer involved, when there is one.
    pub peer: Option<usize>,
    /// The message tag being waited for / sent, when there is one.
    pub tag: Option<u64>,
    /// The executing program phase (`sync_3`, `pre_1`, `reduce_err`, ...)
    /// at the time of the failure, attached by the communicator.
    pub phase: Option<String>,
    /// A free-form backend annotation — the TCP transport uses it to
    /// attach the peer's heartbeat status to a timeout, so the message
    /// says whether the peer is alive-but-slow or silent.
    pub note: Option<String>,
}

impl CommError {
    /// A receive timeout on `(from, tag)`.
    pub fn timeout(rank: usize, from: usize, tag: u64) -> Self {
        CommError {
            kind: CommErrorKind::Timeout,
            rank,
            peer: Some(from),
            tag: Some(tag),
            phase: None,
            note: None,
        }
    }

    /// A vanished peer, with backend detail.
    pub fn disconnected(rank: usize, peer: usize, detail: impl Into<String>) -> Self {
        CommError {
            kind: CommErrorKind::Disconnected(detail.into()),
            rank,
            peer: Some(peer),
            tag: None,
            phase: None,
            note: None,
        }
    }

    /// A wire I/O failure towards `peer`.
    pub fn io(rank: usize, peer: usize, detail: impl Into<String>) -> Self {
        CommError {
            kind: CommErrorKind::Io(detail.into()),
            rank,
            peer: Some(peer),
            tag: None,
            phase: None,
            note: None,
        }
    }

    /// A protocol violation (bad frame, bad handshake).
    pub fn protocol(rank: usize, detail: impl Into<String>) -> Self {
        CommError {
            kind: CommErrorKind::Protocol(detail.into()),
            rank,
            peer: None,
            tag: None,
            phase: None,
            note: None,
        }
    }

    /// A peer that refused connections through a full backoff window —
    /// presumed restarting rather than gone.
    pub fn peer_restarting(rank: usize, peer: usize, detail: impl Into<String>) -> Self {
        CommError {
            kind: CommErrorKind::PeerRestarting(detail.into()),
            rank,
            peer: Some(peer),
            tag: None,
            phase: None,
            note: None,
        }
    }

    /// Attach the tag being waited for.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Attach the executing phase name (kept if already set).
    pub fn with_phase(mut self, phase: &str) -> Self {
        if self.phase.is_none() {
            self.phase = Some(phase.to_string());
        }
        self
    }

    /// Attach a backend annotation (kept if already set), e.g. the
    /// peer's heartbeat status at the time of a timeout.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        if self.note.is_none() {
            self.note = Some(note.into());
        }
        self
    }

    /// Whether this is a receive timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(self.kind, CommErrorKind::Timeout)
    }

    /// Whether this is a vanished peer.
    pub fn is_disconnected(&self) -> bool {
        matches!(self.kind, CommErrorKind::Disconnected(_))
    }

    /// Whether this is a presumed-restarting peer.
    pub fn is_peer_restarting(&self) -> bool {
        matches!(self.kind, CommErrorKind::PeerRestarting(_))
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {}", self.rank)?;
        match &self.kind {
            CommErrorKind::Timeout => {
                write!(f, ": timeout waiting for message")?;
                if let Some(p) = self.peer {
                    write!(f, " from rank {p}")?;
                }
            }
            CommErrorKind::Disconnected(detail) => {
                match self.peer {
                    Some(p) => write!(f, ": peer {p} disconnected")?,
                    None => write!(f, ": peer disconnected")?,
                }
                if !detail.is_empty() {
                    write!(f, " ({detail})")?;
                }
            }
            CommErrorKind::Io(detail) => {
                write!(f, ": i/o error")?;
                if let Some(p) = self.peer {
                    write!(f, " towards rank {p}")?;
                }
                write!(f, ": {detail}")?;
            }
            CommErrorKind::Protocol(detail) => {
                write!(f, ": protocol error: {detail}")?;
            }
            CommErrorKind::PeerRestarting(detail) => {
                match self.peer {
                    Some(p) => write!(f, ": peer {p} unreachable, presumed restarting")?,
                    None => write!(f, ": peer unreachable, presumed restarting")?,
                }
                if !detail.is_empty() {
                    write!(f, " ({detail})")?;
                }
            }
        }
        if let Some(tag) = self.tag {
            write!(f, " tag {tag}")?;
        }
        if let Some(phase) = &self.phase {
            write!(f, " in phase `{phase}`")?;
        }
        if self.is_timeout() {
            write!(f, " (deadlock?)")?;
        }
        if let Some(note) = &self.note {
            write!(f, " [{note}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_full_context() {
        let e = CommError::timeout(2, 0, 1003).with_phase("sync_0");
        let s = e.to_string();
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("from rank 0"), "{s}");
        assert!(s.contains("tag 1003"), "{s}");
        assert!(s.contains("phase `sync_0`"), "{s}");
        assert!(s.contains("deadlock"), "{s}");
    }

    #[test]
    fn phase_attaches_once() {
        let e = CommError::disconnected(1, 3, "connection reset")
            .with_phase("pre_2")
            .with_phase("later");
        assert_eq!(e.phase.as_deref(), Some("pre_2"));
        assert!(e.to_string().contains("connection reset"));
    }
}
