//! Structured per-rank execution journal (JSONL).
//!
//! Every rank of a traced run streams its events to
//! `rank-<r>.jsonl` inside a per-run trace directory. Each line is one
//! self-contained JSON record:
//!
//! * a `header` line first — schema version, rank, rank count,
//!   transport, and the rank's trace epoch as Unix nanoseconds
//!   ([`epoch_unix_ns`]);
//! * one `event` line per [`TraceEvent`], with times as nanosecond
//!   offsets from the rank's epoch and the phase carried *by name* (so a
//!   truncated journal is still interpretable without the phase table);
//! * a `footer` line with the event count — its absence marks a journal
//!   cut short by a crash, which the parser tolerates and reports via
//!   [`RankJournal::complete`].
//!
//! Ranks timestamp against private epochs (separate processes on the TCP
//! transport); the [`merge`] step re-anchors every rank to the earliest
//! epoch in the run so one cross-rank timeline comes out, ready for the
//! renderers in [`crate::trace`] and the exporters in [`crate::export`].

use crate::trace::{EventKind, TraceEvent};
use serde::json::{self, Value};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// Version stamped into every journal header; bump on any change to the
/// record shapes below. The parser accepts every version from 1 upward —
/// version 2 added the per-event `engine` tag (defaults to `"tree"` when
/// reading version-1 journals); version 3 added the optional per-event
/// `seq` causality stamp and made reads forward-compatible: unknown
/// record types, unknown event kinds, and extra fields are *skipped and
/// counted* (see [`RankJournal::skipped`]) instead of erroring, so a
/// journal written by a newer build still merges on an older one.
pub const SCHEMA_VERSION: i64 = 3;

/// Run-level metadata opening each rank's journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub version: i64,
    /// The rank this journal belongs to.
    pub rank: usize,
    /// Total ranks in the run.
    pub ranks: usize,
    /// Transport label (`"inproc"` or `"tcp"`).
    pub transport: String,
    /// The rank's trace epoch as nanoseconds since the Unix epoch; the
    /// merger aligns ranks by these.
    pub epoch_unix_ns: i128,
}

/// One journaled event: a [`TraceEvent`] with its phase resolved to a
/// name (journal lines are self-contained).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Start offset from the rank's epoch.
    pub start: Duration,
    /// End offset from the rank's epoch.
    pub end: Duration,
    /// Peer rank for point-to-point events.
    pub peer: Option<usize>,
    /// Payload f64 elements.
    pub elems: usize,
    /// Wire bytes moved.
    pub bytes: usize,
    /// Program phase name.
    pub phase: String,
    /// Engine that executed the run this span belongs to: `"tree"` or
    /// `"kernel"`. Version-1 journals (written before the tag existed)
    /// read back as `"tree"`.
    pub engine: String,
    /// Per-endpoint message sequence number — the causality stamp that
    /// pairs a recv with the exact send that produced it (`(peer, seq)`
    /// is unique per sender). `None` for collectives, compute spans, and
    /// events from pre-version-3 journals.
    pub seq: Option<u64>,
}

/// One rank's parsed journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RankJournal {
    /// The header line.
    pub header: JournalHeader,
    /// Events in recorded order.
    pub events: Vec<JournalEvent>,
    /// Whether the footer was present and its count matched — `false`
    /// means the journal was truncated (the rank died mid-run).
    pub complete: bool,
    /// Lines skipped by the forward-compat parser: unknown record types
    /// or event kinds a newer schema introduced. Non-zero means the
    /// timeline is readable but not exhaustive — surface it as a
    /// warning, not an error.
    pub skipped: usize,
}

/// A journal read or parse failure.
#[derive(Debug)]
pub struct JournalError {
    /// What went wrong, with file/line context where known.
    pub message: String,
}

impl JournalError {
    fn new(message: impl Into<String>) -> JournalError {
        JournalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal error: {}", self.message)
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::new(e.to_string())
    }
}

/// A rank's trace epoch as Unix nanoseconds: the wall-clock time that
/// `epoch` refers to, computed from the current instant. Call while the
/// `Instant` is recent (at run end) — drift is the error of one
/// `SystemTime::now()` read.
pub fn epoch_unix_ns(epoch: Instant) -> i128 {
    let now_unix = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as i128;
    now_unix - epoch.elapsed().as_nanos() as i128
}

/// The journal file path for `rank` under `dir`.
pub fn rank_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank-{rank}.jsonl"))
}

/// An open, streaming journal for one rank. The header is written on
/// creation, events as they are appended, and the footer by
/// [`JournalWriter::finish`]; every line is flushed immediately so a
/// crashed rank leaves a truncated-but-parseable journal behind.
pub struct JournalWriter {
    file: std::fs::File,
    events: usize,
}

impl JournalWriter {
    /// Create `rank-<r>.jsonl` under `dir` (creating `dir` if needed)
    /// and write the header line.
    pub fn create(dir: &Path, header: &JournalHeader) -> Result<JournalWriter, JournalError> {
        std::fs::create_dir_all(dir)?;
        let mut file = std::fs::File::create(rank_path(dir, header.rank))?;
        let line = Value::obj(vec![
            ("type", Value::Str("header".into())),
            ("version", Value::Int(header.version as i128)),
            ("rank", Value::Int(header.rank as i128)),
            ("ranks", Value::Int(header.ranks as i128)),
            ("transport", Value::Str(header.transport.clone())),
            ("epoch_unix_ns", Value::Int(header.epoch_unix_ns)),
        ]);
        writeln!(file, "{line}")?;
        file.flush()?;
        Ok(JournalWriter { file, events: 0 })
    }

    /// Append one event line.
    pub fn append(&mut self, ev: &JournalEvent) -> Result<(), JournalError> {
        let peer = match ev.peer {
            Some(p) => Value::Int(p as i128),
            None => Value::Null,
        };
        let mut fields = vec![
            ("type", Value::Str("event".into())),
            ("kind", Value::Str(ev.kind.name().into())),
            ("start_ns", Value::Int(ev.start.as_nanos() as i128)),
            ("end_ns", Value::Int(ev.end.as_nanos() as i128)),
            ("peer", peer),
            ("elems", Value::Int(ev.elems as i128)),
            ("bytes", Value::Int(ev.bytes as i128)),
            ("phase", Value::Str(ev.phase.clone())),
            ("engine", Value::Str(ev.engine.clone())),
        ];
        if let Some(seq) = ev.seq {
            fields.push(("seq", Value::Int(seq as i128)));
        }
        let line = Value::obj(fields);
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        self.events += 1;
        Ok(())
    }

    /// Write the footer line and close the journal.
    pub fn finish(mut self) -> Result<(), JournalError> {
        let line = Value::obj(vec![
            ("type", Value::Str("footer".into())),
            ("events", Value::Int(self.events as i128)),
        ]);
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        Ok(())
    }
}

/// Resolve a rank's raw trace to journal events (phase indices become
/// names; unknown indices render as `phase_<i>`), tagging every event
/// with the engine (`"tree"` or `"kernel"`) that executed the run.
pub fn resolve_events(
    trace: &[TraceEvent],
    phase_names: &[String],
    engine: &str,
) -> Vec<JournalEvent> {
    trace
        .iter()
        .map(|e| JournalEvent {
            kind: e.kind,
            start: e.start,
            end: e.end,
            peer: e.peer,
            elems: e.elems,
            bytes: e.bytes,
            phase: phase_names
                .get(e.phase as usize)
                .cloned()
                .unwrap_or_else(|| format!("phase_{}", e.phase)),
            engine: engine.to_string(),
            seq: e.seq,
        })
        .collect()
}

/// Write one rank's complete journal (header, every event, footer) to
/// `dir/rank-<r>.jsonl`, returning the path. `engine` is the per-event
/// engine tag (`"tree"` or `"kernel"`).
pub fn write_rank_journal(
    dir: &Path,
    header: &JournalHeader,
    trace: &[TraceEvent],
    phase_names: &[String],
    engine: &str,
) -> Result<PathBuf, JournalError> {
    let mut w = JournalWriter::create(dir, header)?;
    for ev in resolve_events(trace, phase_names, engine) {
        w.append(&ev)?;
    }
    w.finish()?;
    Ok(rank_path(dir, header.rank))
}

fn field<'v>(line: &'v Value, key: &str, ln: usize) -> Result<&'v Value, JournalError> {
    line.get(key)
        .ok_or_else(|| JournalError::new(format!("line {ln}: missing `{key}`")))
}

fn int_field(line: &Value, key: &str, ln: usize) -> Result<i128, JournalError> {
    field(line, key, ln)?
        .as_int()
        .ok_or_else(|| JournalError::new(format!("line {ln}: `{key}` is not an integer")))
}

fn str_field(line: &Value, key: &str, ln: usize) -> Result<String, JournalError> {
    Ok(field(line, key, ln)?
        .as_str()
        .ok_or_else(|| JournalError::new(format!("line {ln}: `{key}` is not a string")))?
        .to_string())
}

/// One parsed journal line.
///
/// Non-exhaustive: future schema versions may add record types (a
/// checkpoint marker, say) without that being a breaking change, so
/// downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JournalRecord {
    /// The opening `header` line.
    Header(JournalHeader),
    /// One `event` line.
    Event(JournalEvent),
    /// The closing `footer` line.
    Footer {
        /// The event count the writer claims to have appended; a
        /// mismatch with the lines actually present marks truncation.
        events: usize,
    },
    /// A syntactically valid line this build does not understand — an
    /// unknown record type or event kind from a newer schema. Counted
    /// by [`parse_rank_journal`] so readers can warn instead of dying.
    Skipped {
        /// What was unrecognized (for the warning message).
        reason: String,
    },
}

/// Parse one journal line (`ln` is its 1-based line number, used in
/// error messages).
pub fn parse_line(raw: &str, ln: usize) -> Result<JournalRecord, JournalError> {
    let line = json::parse(raw).map_err(|e| JournalError::new(format!("line {ln}: {e}")))?;
    let ty = str_field(&line, "type", ln)?;
    match ty.as_str() {
        "header" => {
            let version = int_field(&line, "version", ln)? as i64;
            if version < 1 {
                return Err(JournalError::new(format!(
                    "line {ln}: unsupported schema version {version} (expected >= 1)"
                )));
            }
            // versions above SCHEMA_VERSION read best-effort: known
            // fields parse, unknown records/kinds become Skipped lines
            Ok(JournalRecord::Header(JournalHeader {
                version,
                rank: int_field(&line, "rank", ln)? as usize,
                ranks: int_field(&line, "ranks", ln)? as usize,
                transport: str_field(&line, "transport", ln)?,
                epoch_unix_ns: int_field(&line, "epoch_unix_ns", ln)?,
            }))
        }
        "event" => {
            let kind_name = str_field(&line, "kind", ln)?;
            let Some(kind) = EventKind::from_name(&kind_name) else {
                // an event kind from a newer schema: skip, don't die
                return Ok(JournalRecord::Skipped {
                    reason: format!("line {ln}: unknown event kind `{kind_name}`"),
                });
            };
            let peer = match field(&line, "peer", ln)? {
                Value::Null => None,
                v => Some(v.as_int().ok_or_else(|| {
                    JournalError::new(format!("line {ln}: `peer` is not an integer"))
                })? as usize),
            };
            Ok(JournalRecord::Event(JournalEvent {
                kind,
                start: Duration::from_nanos(int_field(&line, "start_ns", ln)? as u64),
                end: Duration::from_nanos(int_field(&line, "end_ns", ln)? as u64),
                peer,
                elems: int_field(&line, "elems", ln)? as usize,
                bytes: int_field(&line, "bytes", ln)? as usize,
                phase: str_field(&line, "phase", ln)?,
                // absent in version-1 journals: default to the tree walk
                engine: line
                    .get("engine")
                    .and_then(Value::as_str)
                    .unwrap_or("tree")
                    .to_string(),
                // absent before version 3 and on collectives
                seq: line.get("seq").and_then(Value::as_int).map(|s| s as u64),
            }))
        }
        "footer" => Ok(JournalRecord::Footer {
            events: int_field(&line, "events", ln)? as usize,
        }),
        other => Ok(JournalRecord::Skipped {
            reason: format!("line {ln}: unknown record type `{other}`"),
        }),
    }
}

/// Parse one rank's journal text. A missing or short footer is not an
/// error — the journal is returned with [`RankJournal::complete`] set to
/// `false` (that is exactly the crashed-rank case the journal exists
/// for). A missing header, or garbage on any present line, is an error.
pub fn parse_rank_journal(text: &str) -> Result<RankJournal, JournalError> {
    let mut header: Option<JournalHeader> = None;
    let mut events = Vec::new();
    let mut complete = false;
    let mut skipped = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let ln = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        match parse_line(raw, ln)? {
            JournalRecord::Header(h) => header = Some(h),
            JournalRecord::Event(e) => events.push(e),
            // the footer counts *writer-side* events: lines this build
            // skipped still count toward a matching footer
            JournalRecord::Footer { events: n } => complete = n == events.len() + skipped,
            JournalRecord::Skipped { .. } => skipped += 1,
            // `JournalRecord` is non-exhaustive for downstream crates;
            // record types this build doesn't know cannot parse above.
            #[allow(unreachable_patterns)]
            _ => {}
        }
    }
    let header = header.ok_or_else(|| JournalError::new("no header line"))?;
    Ok(RankJournal {
        header,
        events,
        complete,
        skipped,
    })
}

/// Load every `rank-*.jsonl` under `dir`, in rank order. Requires at
/// least one journal and rejects duplicate ranks.
pub fn load_trace_dir(dir: &Path) -> Result<Vec<RankJournal>, JournalError> {
    let mut journals = Vec::new();
    for entry in
        std::fs::read_dir(dir).map_err(|e| JournalError::new(format!("{}: {e}", dir.display())))?
    {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !(name.starts_with("rank-") && name.ends_with(".jsonl")) {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| JournalError::new(format!("{}: {e}", path.display())))?;
        let j = parse_rank_journal(&text)
            .map_err(|e| JournalError::new(format!("{}: {}", path.display(), e.message)))?;
        journals.push(j);
    }
    if journals.is_empty() {
        return Err(JournalError::new(format!(
            "no rank-*.jsonl journals in {}",
            dir.display()
        )));
    }
    journals.sort_by_key(|j| j.header.rank);
    for w in journals.windows(2) {
        if w[0].header.rank == w[1].header.rank {
            return Err(JournalError::new(format!(
                "duplicate journal for rank {}",
                w[0].header.rank
            )));
        }
    }
    Ok(journals)
}

/// A run's journals merged onto one epoch-aligned timeline, shaped for
/// the text renderers in [`crate::trace`] and the exporters in
/// [`crate::export`].
#[derive(Debug, Clone, PartialEq)]
pub struct MergedTrace {
    /// Per-rank events, times re-anchored to the earliest rank epoch and
    /// sorted by start within each rank. `traces[r]` belongs to the
    /// rank of `journals[r]`.
    pub traces: Vec<Vec<TraceEvent>>,
    /// Per-rank phase names in first-appearance order; `TraceEvent::phase`
    /// indexes into the owning rank's list.
    pub phase_names: Vec<Vec<String>>,
    /// Transport label from the headers.
    pub transport: String,
    /// Whether every rank's journal was complete (footer matched).
    pub complete: bool,
    /// Total lines skipped by the forward-compat parser across all
    /// ranks ([`RankJournal::skipped`] summed).
    pub skipped: usize,
}

/// Merge per-rank journals into one timeline. Ranks journal against
/// private epochs; each rank's events shift forward by the gap between
/// its epoch and the earliest epoch in the run, so timestamps become
/// comparable across ranks. Events are (re)sorted by start time within
/// each rank, making the merge robust to out-of-order lines.
pub fn merge(journals: &[RankJournal]) -> MergedTrace {
    let base = journals
        .iter()
        .map(|j| j.header.epoch_unix_ns)
        .min()
        .unwrap_or(0);
    let offsets: Vec<Duration> = journals
        .iter()
        .map(|j| Duration::from_nanos((j.header.epoch_unix_ns - base).max(0) as u64))
        .collect();
    merge_with_offsets(journals, &offsets)
}

/// Like [`merge`], but aligns ranks at a shared synchronization marker
/// instead of trusting the wall-clock epochs in the headers. Ranks on
/// different hosts (or launched seconds apart) journal against
/// origins whose wall-clock gap says nothing about where the ranks
/// stood *relative to each other* — epoch alignment then smears that
/// clock skew into every cross-rank figure. The first communication
/// event every rank shares is a true rendezvous: no rank can complete
/// it before the others arrive, so pinning its completion to one
/// instant across ranks bounds the alignment error by that sync's
/// duration instead of the clock skew. Skew math (per-phase compute
/// imbalance, straggler attribution) should run on this merge.
///
/// The marker is the first phase, in rank-0 event order, in which
/// every rank recorded a non-compute event; each rank aligns at its
/// first such event's end. Falls back to [`merge`] when no shared
/// marker phase exists (e.g. a single rank, or disjoint journals).
pub fn merge_marker_aligned(journals: &[RankJournal]) -> MergedTrace {
    let is_marker = |e: &JournalEvent| !matches!(e.kind, EventKind::Compute | EventKind::Overlap);
    let marker_ends = journals.first().and_then(|j0| {
        let mut seen: Vec<&str> = Vec::new();
        for e in j0.events.iter().filter(|e| is_marker(e)) {
            let phase = e.phase.as_str();
            if seen.contains(&phase) {
                continue;
            }
            seen.push(phase);
            let ends: Vec<Duration> = journals
                .iter()
                .filter_map(|j| {
                    j.events
                        .iter()
                        .find(|ev| ev.phase == phase && is_marker(ev))
                        .map(|ev| ev.end)
                })
                .collect();
            if ends.len() == journals.len() {
                return Some(ends);
            }
        }
        None
    });
    let Some(ends) = marker_ends else {
        return merge(journals);
    };
    let rendezvous = ends.iter().copied().max().unwrap_or_default();
    let offsets: Vec<Duration> = ends.iter().map(|&e| rendezvous - e).collect();
    merge_with_offsets(journals, &offsets)
}

/// Shared merge body: shift rank `r`'s events forward by `offsets[r]`,
/// intern phase names per rank, and re-sort within each rank.
fn merge_with_offsets(journals: &[RankJournal], offsets: &[Duration]) -> MergedTrace {
    let mut traces = Vec::with_capacity(journals.len());
    let mut phase_names = Vec::with_capacity(journals.len());
    for (j, &offset) in journals.iter().zip(offsets) {
        let mut names: Vec<String> = Vec::new();
        let mut trace: Vec<TraceEvent> = j
            .events
            .iter()
            .map(|e| {
                let phase = match names.iter().position(|n| n == &e.phase) {
                    Some(i) => i,
                    None => {
                        names.push(e.phase.clone());
                        names.len() - 1
                    }
                } as u32;
                TraceEvent {
                    kind: e.kind,
                    start: e.start + offset,
                    end: e.end + offset,
                    peer: e.peer,
                    elems: e.elems,
                    bytes: e.bytes,
                    phase,
                    seq: e.seq,
                }
            })
            .collect();
        trace.sort_by_key(|e| (e.start, e.end));
        traces.push(trace);
        phase_names.push(names);
    }
    MergedTrace {
        traces,
        phase_names,
        transport: journals
            .first()
            .map(|j| j.header.transport.clone())
            .unwrap_or_default(),
        complete: journals.iter().all(|j| j.complete),
        skipped: journals.iter().map(|j| j.skipped).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(rank: usize, epoch_unix_ns: i128) -> JournalHeader {
        JournalHeader {
            version: SCHEMA_VERSION,
            rank,
            ranks: 2,
            transport: "inproc".into(),
            epoch_unix_ns,
        }
    }

    fn event(kind: EventKind, start_us: u64, end_us: u64, phase: &str) -> JournalEvent {
        JournalEvent {
            kind,
            start: Duration::from_micros(start_us),
            end: Duration::from_micros(end_us),
            peer: match kind {
                EventKind::Send => Some(1),
                EventKind::Recv => Some(0),
                _ => None,
            },
            elems: 4,
            bytes: 32,
            phase: phase.into(),
            engine: "tree".into(),
            seq: match kind {
                EventKind::Send | EventKind::Recv => Some(1),
                _ => None,
            },
        }
    }

    #[test]
    fn journal_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("acf-journal-{}", std::process::id()));
        let trace = vec![
            TraceEvent {
                kind: EventKind::Compute,
                start: Duration::from_micros(0),
                end: Duration::from_micros(50),
                peer: None,
                elems: 0,
                bytes: 0,
                phase: 0,
                seq: None,
            },
            TraceEvent {
                kind: EventKind::Send,
                start: Duration::from_micros(50),
                end: Duration::from_micros(50),
                peer: Some(1),
                elems: 10,
                bytes: 80,
                phase: 1,
                seq: Some(7),
            },
        ];
        let names = vec!["main".to_string(), "sync_0".to_string()];
        let h = header(0, 1_722_000_000_123_456_789);
        let path = write_rank_journal(&dir, &h, &trace, &names, "kernel").unwrap();
        let parsed = parse_rank_journal(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(parsed.complete);
        assert_eq!(parsed.skipped, 0);
        assert_eq!(parsed.header, h);
        assert_eq!(parsed.events, resolve_events(&trace, &names, "kernel"));
        assert!(parsed.events.iter().all(|e| e.engine == "kernel"));
        assert_eq!(parsed.events[1].seq, Some(7), "causality stamp survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_journal_parses_as_incomplete() {
        let dir = std::env::temp_dir().join(format!("acf-trunc-{}", std::process::id()));
        let trace = vec![TraceEvent {
            kind: EventKind::Recv,
            start: Duration::from_micros(1),
            end: Duration::from_micros(9),
            peer: Some(1),
            elems: 2,
            bytes: 16,
            phase: 0,
            seq: Some(1),
        }];
        let path =
            write_rank_journal(&dir, &header(0, 1), &trace, &["main".to_string()], "tree").unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        // drop the footer, as a crash mid-run would
        let cut: String = full.lines().take(2).map(|l| format!("{l}\n")).collect();
        let parsed = parse_rank_journal(&cut).unwrap();
        assert!(!parsed.complete);
        assert_eq!(parsed.events.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_header_and_garbage_are_errors() {
        assert!(parse_rank_journal("").is_err());
        assert!(parse_rank_journal("not json at all").is_err());
        let negative_version = r#"{"type":"header","version":-1,"rank":0,"ranks":1,"transport":"inproc","epoch_unix_ns":0}"#;
        let e = parse_rank_journal(negative_version).unwrap_err();
        assert!(e.message.contains("version"), "{e}");
    }

    #[test]
    fn newer_schema_lines_are_skipped_and_counted() {
        // a version-99 journal with one known event, one unknown event
        // kind, and one unknown record type: the known event survives,
        // the other two are counted, and the footer (which counts all
        // three writer-side lines) still marks the journal complete
        let future = r#"{"type":"header","version":99,"rank":0,"ranks":1,"transport":"inproc","epoch_unix_ns":0}
{"type":"event","kind":"compute","start_ns":0,"end_ns":10,"peer":null,"elems":0,"bytes":0,"phase":"main","novel_field":42}
{"type":"event","kind":"teleport","start_ns":10,"end_ns":20,"peer":null,"elems":0,"bytes":0,"phase":"main"}
{"type":"gpu_counter","value":7}
{"type":"footer","events":3}"#;
        let parsed = parse_rank_journal(future).unwrap();
        assert_eq!(parsed.header.version, 99);
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.events[0].kind, EventKind::Compute);
        assert_eq!(parsed.skipped, 2);
        assert!(parsed.complete, "skipped lines count toward the footer");
        let merged = merge(&[parsed]);
        assert_eq!(merged.skipped, 2, "merge surfaces the skip count");
    }

    #[test]
    fn version1_events_without_engine_default_to_tree() {
        // a journal written before the engine tag existed still parses,
        // with every event tagged "tree"
        let v1 = r#"{"type":"header","version":1,"rank":0,"ranks":1,"transport":"inproc","epoch_unix_ns":0}
{"type":"event","kind":"compute","start_ns":0,"end_ns":10,"peer":null,"elems":0,"bytes":0,"phase":"main"}
{"type":"footer","events":1}"#;
        let parsed = parse_rank_journal(v1).unwrap();
        assert!(parsed.complete);
        assert_eq!(parsed.events[0].engine, "tree");
        assert_eq!(parsed.events[0].seq, None, "pre-v3 events carry no seq");
    }

    #[test]
    fn merge_aligns_rank_epochs() {
        // rank 1's clock started 100 µs after rank 0's: its events must
        // shift forward by the difference
        let j0 = RankJournal {
            header: header(0, 1_000_000_000),
            events: vec![event(EventKind::Send, 0, 0, "sync_0")],
            complete: true,
            skipped: 0,
        };
        let j1 = RankJournal {
            header: header(1, 1_000_100_000),
            events: vec![event(EventKind::Recv, 0, 30, "sync_0")],
            complete: true,
            skipped: 0,
        };
        let merged = merge(&[j0, j1]);
        assert_eq!(merged.traces[0][0].start, Duration::from_micros(0));
        assert_eq!(merged.traces[1][0].start, Duration::from_micros(100));
        assert_eq!(merged.traces[1][0].end, Duration::from_micros(130));
        assert_eq!(merged.phase_names[0], vec!["sync_0".to_string()]);
        assert!(merged.complete);
    }

    #[test]
    fn marker_alignment_cancels_offset_origins() {
        // Both ranks computed 100 µs then met at the sync_0 barrier —
        // but rank 1's wall clock (journal epoch) reads 5 s ahead.
        // Epoch alignment smears those 5 s into the timeline; marker
        // alignment pins both ranks' barrier completion to one instant
        // so skew math sees the true (identical) compute spans.
        let j0 = RankJournal {
            header: header(0, 1_000_000_000),
            events: vec![
                event(EventKind::Compute, 0, 100, "main"),
                event(EventKind::Barrier, 100, 130, "sync_0"),
            ],
            complete: true,
            skipped: 0,
        };
        let j1 = RankJournal {
            header: header(1, 5_001_000_000_000),
            events: vec![
                event(EventKind::Compute, 0, 100, "main"),
                event(EventKind::Barrier, 100, 130, "sync_0"),
            ],
            complete: true,
            skipped: 0,
        };
        let epoch = merge(&[j0.clone(), j1.clone()]);
        // wall-clock merge pushes rank 1 ~5 s into the future
        assert!(epoch.traces[1][0].start >= Duration::from_secs(5));
        let aligned = merge_marker_aligned(&[j0, j1]);
        assert_eq!(aligned.traces[0], aligned.traces[1]);
        assert_eq!(aligned.traces[0][1].end, Duration::from_micros(130));
        assert!(aligned.complete);
    }

    #[test]
    fn marker_alignment_shifts_late_ranks_not_early_ones() {
        // Rank 1 reached the barrier 40 µs later (journal-local); the
        // rendezvous instant is the latest arrival, so rank 0 shifts
        // forward by 40 µs and rank 1 not at all.
        let j0 = RankJournal {
            header: header(0, 0),
            events: vec![event(EventKind::Barrier, 100, 130, "sync_0")],
            complete: true,
            skipped: 0,
        };
        let j1 = RankJournal {
            header: header(1, 0),
            events: vec![event(EventKind::Barrier, 140, 170, "sync_0")],
            complete: true,
            skipped: 0,
        };
        let aligned = merge_marker_aligned(&[j0, j1]);
        assert_eq!(aligned.traces[0][0].end, Duration::from_micros(170));
        assert_eq!(aligned.traces[1][0].end, Duration::from_micros(170));
    }

    #[test]
    fn marker_alignment_falls_back_without_a_shared_sync() {
        // No phase has a non-compute event on every rank: behave like
        // the epoch merge.
        let j0 = RankJournal {
            header: header(0, 1_000),
            events: vec![event(EventKind::Compute, 0, 10, "main")],
            complete: true,
            skipped: 0,
        };
        let j1 = RankJournal {
            header: header(1, 2_000),
            events: vec![event(EventKind::Compute, 0, 10, "main")],
            complete: true,
            skipped: 0,
        };
        let aligned = merge_marker_aligned(&[j0.clone(), j1.clone()]);
        assert_eq!(aligned, merge(&[j0, j1]));
    }

    #[test]
    fn load_trace_dir_orders_and_validates() {
        let dir = std::env::temp_dir().join(format!("acf-dir-{}", std::process::id()));
        // write rank 1 before rank 0; loading must come back rank-ordered
        for rank in [1usize, 0] {
            write_rank_journal(&dir, &header(rank, rank as i128), &[], &[], "tree").unwrap();
        }
        let js = load_trace_dir(&dir).unwrap();
        assert_eq!(js.len(), 2);
        assert_eq!(js[0].header.rank, 0);
        assert_eq!(js[1].header.rank, 1);
        std::fs::remove_dir_all(&dir).ok();
        assert!(load_trace_dir(Path::new("/nonexistent-acf")).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_kind() -> impl Strategy<Value = EventKind> {
        prop_oneof![
            Just(EventKind::Send),
            Just(EventKind::Recv),
            Just(EventKind::Barrier),
            Just(EventKind::Reduce),
            Just(EventKind::Compute),
            Just(EventKind::Overlap),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Epoch alignment is exact: for every event, merged start ==
        /// (rank epoch + journal start) − earliest epoch; per-rank order
        /// is by start time; phase indices resolve to the journal names.
        #[test]
        fn merge_preserves_absolute_times_and_order(
            epochs in proptest::collection::vec(0i64..1_000_000, 1..4),
            starts in proptest::collection::vec(0u32..1_000_000, 1..20),
            kinds in proptest::collection::vec(arb_kind(), 1..20),
            phases in proptest::collection::vec(0u8..3, 1..20),
        ) {
            let n = starts.len().min(kinds.len()).min(phases.len());
            let journals: Vec<RankJournal> = epochs
                .iter()
                .enumerate()
                .map(|(rank, &epoch)| RankJournal {
                    header: JournalHeader {
                        version: SCHEMA_VERSION,
                        rank,
                        ranks: epochs.len(),
                        transport: "inproc".into(),
                        epoch_unix_ns: epoch as i128,
                    },
                    events: (0..n)
                        .map(|i| JournalEvent {
                            kind: kinds[i],
                            start: Duration::from_nanos(starts[i] as u64),
                            end: Duration::from_nanos(starts[i] as u64 + 5),
                            peer: None,
                            elems: i,
                            bytes: i * 8,
                            phase: format!("phase_{}", phases[i]),
                            engine: "tree".into(),
                            seq: None,
                        })
                        .collect(),
                    complete: true,
                    skipped: 0,
                })
                .collect();
            let base = *epochs.iter().min().unwrap() as i128;
            let merged = merge(&journals);
            for (j, trace) in journals.iter().zip(&merged.traces) {
                prop_assert_eq!(j.events.len(), trace.len());
                let offset = (j.header.epoch_unix_ns - base) as u64;
                // absolute times survive the re-anchoring
                let mut expected: Vec<u64> = j
                    .events
                    .iter()
                    .map(|e| e.start.as_nanos() as u64 + offset)
                    .collect();
                expected.sort_unstable();
                let got: Vec<u64> =
                    trace.iter().map(|e| e.start.as_nanos() as u64).collect();
                prop_assert_eq!(&expected, &got);
                // merged events are start-ordered within the rank
                prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
            }
            // every phase index resolves to the name the journal carried
            for (r, trace) in merged.traces.iter().enumerate() {
                for e in trace {
                    let name = &merged.phase_names[r][e.phase as usize];
                    prop_assert!(
                        journals[r].events.iter().any(|je| &je.phase == name)
                    );
                }
            }
        }
    }
}
