//! The pluggable transport layer: a [`Transport`] carries tagged `f64`
//! payloads between ranks, and everything above it — the [`crate::Comm`]
//! collectives, tracing, and the SPMD interpreter hooks — is
//! backend-agnostic. The in-process crossbeam backend
//! ([`crate::inproc`]) and the multi-process TCP backend (crate
//! `autocfd-runtime-net`) both plug in here.
//!
//! The primitive operations are *nonblocking*: [`Transport::isend`] and
//! [`Transport::irecv`] post an operation and return a typed request
//! handle ([`SendRequest`] / [`RecvRequest`]); the completion operations
//! [`Transport::wait_send`], [`Transport::wait_recv`],
//! [`Transport::wait_all_recv`] and [`Transport::test_recv`] retire
//! them. There is no blocking send/recv pair in the trait — callers
//! that want blocking semantics post and immediately wait (the
//! [`crate::Comm`] convenience methods do exactly that), so backends
//! only implement the nonblocking core.
//!
//! Backends that deliver messages through a single inbox channel (both
//! shipped backends do) share [`MatchingInbox`], so tag-matching, message
//! parking, and FIFO-per-`(from, tag)` ordering behave identically
//! in-process and over the wire.

use crate::error::CommError;
use crossbeam::channel::{Receiver, RecvTimeoutError};

pub use crate::inproc::InprocTransport;

// The multi-process TCP backend (`TcpTransport`) lives in the
// `autocfd-runtime-net` crate, which depends on this one, so it cannot
// be re-exported here without a crate cycle; the `autocfd::transport`
// facade module re-exports both backends side by side.
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// First tag of the band reserved for the default dissemination barrier
/// (round `k` uses `BARRIER_TAG_BASE + k`). User-visible schedules use
/// small tags and the collectives in `comm.rs` use `u64::MAX - 1..=4`,
/// so a 64-tag band below those is safely out of everyone's way.
pub const BARRIER_TAG_BASE: u64 = u64::MAX - 100;

/// Cumulative wire-level counters for one rank, as reported by a
/// backend: message and byte totals actually moved on its "wire"
/// (channel payloads in-process, framed TCP bytes over sockets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Messages handed to the wire.
    pub msgs_sent: u64,
    /// Bytes handed to the wire (including any framing overhead).
    pub bytes_sent: u64,
    /// Messages taken off the wire.
    pub msgs_recvd: u64,
    /// Bytes taken off the wire.
    pub bytes_recvd: u64,
}

impl WireStats {
    /// Accumulate another rank's counters into this one.
    pub fn merge(&mut self, other: &WireStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recvd += other.msgs_recvd;
        self.bytes_recvd += other.bytes_recvd;
    }
}

/// Handle for a posted nonblocking send ([`Transport::isend`]).
///
/// Both shipped backends buffer outgoing messages (a channel in-process,
/// a bounded per-peer write queue over TCP), so a send request is
/// logically complete the moment it is posted; the handle carries the
/// wire footprint for [`Transport::wait_send`] to report. The handle is
/// `#[must_use]` so a posted send cannot be silently forgotten.
#[derive(Debug)]
#[must_use = "complete the send with `wait_send` (or drop it knowingly)"]
pub struct SendRequest {
    /// Destination rank the message was posted to.
    pub to: usize,
    /// Tag the message was posted under.
    pub tag: u64,
    /// Wire bytes enqueued at post time.
    pub wire_bytes: usize,
    /// Per-sender monotonic sequence number stamped on the message
    /// (first send is 1; 0 means the backend does not stamp). Together
    /// with the sending rank this forms the causality span id that the
    /// matching receive records, letting the exporter draw send→recv
    /// flow edges and the advisor measure the cross-rank critical path.
    pub seq: u64,
}

/// Handle for a posted nonblocking receive ([`Transport::irecv`]).
///
/// Posting is infallible and purely local: the handle records the
/// `(from, tag)` the caller wants to match. [`Transport::test_recv`]
/// may complete it early, caching the payload inside the handle so a
/// later [`Transport::wait_recv`] returns it without touching the
/// inbox; a completion observed by `test_recv` is therefore never lost.
#[derive(Debug)]
#[must_use = "complete the receive with `wait_recv` or poll it with `test_recv`"]
pub struct RecvRequest {
    /// Source rank to match.
    pub from: usize,
    /// Tag to match.
    pub tag: u64,
    /// Payload cached by an early completion (`test_recv`):
    /// `(payload, wire_bytes, sender_seq)`.
    done: Option<(Vec<f64>, usize, u64)>,
}

impl RecvRequest {
    /// A fresh (incomplete) receive request for `(from, tag)`.
    pub fn new(from: usize, tag: u64) -> Self {
        RecvRequest {
            from,
            tag,
            done: None,
        }
    }

    /// Whether the request already holds its matched payload.
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }

    /// Store an early-completed payload (used by backends from
    /// `test_recv`); `seq` is the sender's sequence stamp (0 = none).
    /// Panics if the request is already complete.
    pub fn complete(&mut self, payload: Vec<f64>, wire_bytes: usize, seq: u64) {
        assert!(self.done.is_none(), "receive request completed twice");
        self.done = Some((payload, wire_bytes, seq));
    }

    /// Take the cached payload out of the handle, if any.
    pub fn take_done(&mut self) -> Option<(Vec<f64>, usize, u64)> {
        self.done.take()
    }
}

/// A point-to-point message carrier for one rank of an SPMD program.
///
/// The required primitives are nonblocking: [`Transport::isend`] posts a
/// buffered send, [`Transport::wait_recv`] / [`Transport::test_recv`]
/// retire receives posted with [`Transport::irecv`]. Matching is on
/// `(from, tag)` with FIFO order per pair. All completion paths return
/// the number of *wire bytes* moved so the profiler can attribute
/// traffic. All methods take `&self`: a transport is shared behind the
/// [`crate::Comm`] owned by its rank's thread, and backends synchronize
/// internally.
pub trait Transport: Send {
    /// This endpoint's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Post a nonblocking send of `payload` to rank `to` under `tag`.
    /// The payload is buffered by the backend, so the returned request
    /// is complete as soon as posting succeeds. Fails only when the
    /// peer is known dead (backends without failure detection may
    /// silently drop instead).
    fn isend(&self, to: usize, tag: u64, payload: &[f64]) -> Result<SendRequest, CommError>;

    /// Post a nonblocking receive for a message from `from` under
    /// `tag`. Posting is local and infallible; errors surface at
    /// completion time.
    fn irecv(&self, from: usize, tag: u64) -> RecvRequest {
        RecvRequest::new(from, tag)
    }

    /// Complete a send request, returning the wire bytes moved. Both
    /// shipped backends buffer sends, so the default returns
    /// immediately; a backend with real send completion would override
    /// this and honor `timeout`.
    fn wait_send(&self, req: SendRequest, _timeout: Duration) -> Result<usize, CommError> {
        Ok(req.wire_bytes)
    }

    /// Block until the receive posted as `req` completes (or `timeout`
    /// expires), returning the payload, its wire size, and the sender's
    /// sequence stamp (0 when the backend does not stamp). If
    /// [`Transport::test_recv`] already completed the request, the
    /// cached payload is returned without blocking.
    fn wait_recv(
        &self,
        req: RecvRequest,
        timeout: Duration,
    ) -> Result<(Vec<f64>, usize, u64), CommError>;

    /// Poll a receive request without blocking. Returns `Ok(true)` once
    /// the matching message has arrived (the payload is cached in the
    /// handle for the eventual `wait_recv`), `Ok(false)` while it is
    /// still in flight, and an error if the peer is known dead with no
    /// matching message left to drain.
    fn test_recv(&self, req: &mut RecvRequest) -> Result<bool, CommError>;

    /// Complete a batch of receive requests in order, returning their
    /// payloads. Equivalent to calling [`Transport::wait_recv`] on each
    /// request; the first failure aborts the batch.
    fn wait_all_recv(
        &self,
        reqs: Vec<RecvRequest>,
        timeout: Duration,
    ) -> Result<Vec<(Vec<f64>, usize, u64)>, CommError> {
        reqs.into_iter()
            .map(|req| self.wait_recv(req, timeout))
            .collect()
    }

    /// Synchronize all ranks. The default is a dissemination barrier
    /// built on the nonblocking core (`isend`/`wait_send` +
    /// `irecv`/`wait_recv`) over the reserved tag band — ⌈log₂ n⌉
    /// rounds, no coordinator. Backends with a cheaper native primitive
    /// (the in-process backend has `std::sync::Barrier`) override this.
    fn barrier(&self, timeout: Duration) -> Result<(), CommError> {
        let n = self.size();
        let rank = self.rank();
        let mut round = 0u64;
        let mut step = 1usize;
        while step < n {
            let to = (rank + step) % n;
            let from = (rank + n - step) % n;
            let send = self.isend(to, BARRIER_TAG_BASE + round, &[])?;
            self.wait_send(send, timeout)?;
            let recv = self.irecv(from, BARRIER_TAG_BASE + round);
            self.wait_recv(recv, timeout)?;
            step <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Cumulative wire counters for this rank. Backends that do not
    /// track traffic return zeros.
    fn wire_stats(&self) -> WireStats {
        WireStats::default()
    }

    /// Release wire resources (close sockets, join I/O threads). Called
    /// once when the rank finishes; the default is a no-op.
    fn shutdown(&self) {}

    /// Offer a telemetry stat frame (one JSON line, see
    /// [`crate::telemetry`]) to the backend's side channel. Must never
    /// block: backends either enqueue with drop-on-full semantics (TCP
    /// piggybacks on the heartbeat write queues) or store the frame in a
    /// shared slot (in-process). Returns `true` if the frame was taken
    /// by at least one peer channel; the default discards it.
    fn publish_telemetry(&self, _frame_json: &str) -> bool {
        false
    }

    /// The latest telemetry frame received *from* `peer` over the side
    /// channel, as its JSON line. Backends without a telemetry channel
    /// return `None`.
    fn peer_telemetry(&self, _peer: usize) -> Option<String> {
        None
    }
}

/// What a backend's delivery path feeds into a [`MatchingInbox`].
#[derive(Debug)]
pub enum InboxMsg {
    /// A payload from `from` under `tag`; `wire_bytes` is its size as
    /// moved on the backend's wire.
    Data {
        /// Sending rank.
        from: usize,
        /// Message tag.
        tag: u64,
        /// The values.
        payload: Vec<f64>,
        /// Wire footprint of this message.
        wire_bytes: usize,
        /// Sender's per-endpoint sequence stamp (0 = unstamped).
        seq: u64,
    },
    /// The connection to `peer` is gone; no further messages from it can
    /// arrive. `detail` says how it died ("connection reset", ...).
    PeerGone {
        /// The vanished rank.
        peer: usize,
        /// Backend-specific cause.
        detail: String,
    },
}

/// A parked message: `(from, tag, payload, wire_bytes, seq)`.
type ParkedMsg = (usize, u64, Vec<f64>, usize, u64);

/// Tag-matching receive logic shared by inbox-style backends.
///
/// Messages that arrive while the receiver waits for a different
/// `(from, tag)` are parked and matched later, preserving arrival order
/// per `(from, tag)` pair. A [`InboxMsg::PeerGone`] notice fails only
/// receives targeting that peer — and only after every message the peer
/// sent before dying has been drained.
pub struct MatchingInbox {
    rank: usize,
    rx: Receiver<InboxMsg>,
    /// Messages awaiting a matching `recv`.
    parked: Mutex<VecDeque<ParkedMsg>>,
    /// Peers known dead, with the failure detail.
    gone: Mutex<BTreeMap<usize, String>>,
}

impl MatchingInbox {
    /// An inbox for `rank` fed through `rx`.
    pub fn new(rank: usize, rx: Receiver<InboxMsg>) -> Self {
        MatchingInbox {
            rank,
            rx,
            parked: Mutex::new(VecDeque::new()),
            gone: Mutex::new(BTreeMap::new()),
        }
    }

    /// Take the first parked message matching `(from, tag)`.
    fn take_parked(&self, from: usize, tag: u64) -> Option<(Vec<f64>, usize, u64)> {
        let mut parked = self.parked.lock();
        let idx = parked
            .iter()
            .position(|(f, t, _, _, _)| *f == from && *t == tag)?;
        let (_, _, payload, wire, seq) = parked.remove(idx).expect("index from position");
        Some((payload, wire, seq))
    }

    /// Move every message already sitting in the channel into the parked
    /// queue (used before declaring a dead peer's stream exhausted, and
    /// by the nonblocking `try_recv` poll).
    fn drain_pending(&self) {
        while let Ok(msg) = self.rx.try_recv() {
            self.absorb(msg);
        }
    }

    fn absorb(&self, msg: InboxMsg) {
        match msg {
            InboxMsg::Data {
                from,
                tag,
                payload,
                wire_bytes,
                seq,
            } => self
                .parked
                .lock()
                .push_back((from, tag, payload, wire_bytes, seq)),
            InboxMsg::PeerGone { peer, detail } => {
                self.gone.lock().entry(peer).or_insert(detail);
            }
        }
    }

    /// Whether `peer` has been reported dead; returns the detail.
    fn peer_gone(&self, peer: usize) -> Option<String> {
        self.gone.lock().get(&peer).cloned()
    }

    /// Blocking tag-matched receive: waits until a message from
    /// `from` carrying `tag` arrives, or errors on timeout/peer death.
    pub fn recv(
        &self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<(Vec<f64>, usize, u64), CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(found) = self.take_parked(from, tag) {
                return Ok(found);
            }
            if let Some(detail) = self.peer_gone(from) {
                // The peer died; anything it managed to send is already in
                // the channel. Park it all and give matching one last look.
                self.drain_pending();
                if let Some(found) = self.take_parked(from, tag) {
                    return Ok(found);
                }
                return Err(CommError::disconnected(self.rank, from, detail).with_tag(tag));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(msg) => self.absorb(msg),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::timeout(self.rank, from, tag));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every sender handle dropped: the whole job is tearing
                    // down around a rank still waiting.
                    return Err(
                        CommError::disconnected(self.rank, from, "all peers shut down")
                            .with_tag(tag),
                    );
                }
            }
        }
    }

    /// Nonblocking tag-matched poll; see [`Transport::test_recv`] for
    /// the contract. Returns the matched payload if one is available
    /// now, `None` if the caller should poll again later, and an error
    /// once the peer is known dead with nothing left to drain.
    pub fn try_recv(
        &self,
        from: usize,
        tag: u64,
    ) -> Result<Option<(Vec<f64>, usize, u64)>, CommError> {
        if let Some(found) = self.take_parked(from, tag) {
            return Ok(Some(found));
        }
        self.drain_pending();
        if let Some(found) = self.take_parked(from, tag) {
            return Ok(Some(found));
        }
        if let Some(detail) = self.peer_gone(from) {
            return Err(CommError::disconnected(self.rank, from, detail).with_tag(tag));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CommErrorKind;
    use crossbeam::channel::unbounded;

    const T: Duration = Duration::from_millis(200);

    #[test]
    fn matches_and_parks_out_of_order() {
        let (tx, rx) = unbounded();
        let inbox = MatchingInbox::new(0, rx);
        tx.send(InboxMsg::Data {
            from: 1,
            tag: 7,
            payload: vec![1.0],
            wire_bytes: 8,
            seq: 1,
        })
        .unwrap();
        tx.send(InboxMsg::Data {
            from: 1,
            tag: 5,
            payload: vec![2.0],
            wire_bytes: 8,
            seq: 1,
        })
        .unwrap();
        // Ask for tag 5 first: tag 7 must be parked, not lost.
        assert_eq!(inbox.recv(1, 5, T).unwrap().0, vec![2.0]);
        assert_eq!(inbox.recv(1, 7, T).unwrap().0, vec![1.0]);
    }

    #[test]
    fn fifo_per_from_tag_pair() {
        let (tx, rx) = unbounded();
        let inbox = MatchingInbox::new(0, rx);
        for v in [1.0, 2.0, 3.0] {
            tx.send(InboxMsg::Data {
                from: 2,
                tag: 1,
                payload: vec![v],
                wire_bytes: 8,
                seq: 1,
            })
            .unwrap();
        }
        for v in [1.0, 2.0, 3.0] {
            assert_eq!(inbox.recv(2, 1, T).unwrap().0, vec![v]);
        }
    }

    #[test]
    fn timeout_when_nothing_matches() {
        let (_tx, rx) = unbounded::<InboxMsg>();
        let inbox = MatchingInbox::new(3, rx);
        let err = inbox.recv(0, 42, Duration::from_millis(30)).unwrap_err();
        assert!(err.is_timeout());
        assert_eq!((err.rank, err.peer, err.tag), (3, Some(0), Some(42)));
    }

    #[test]
    fn peer_gone_fails_only_after_draining_its_messages() {
        let (tx, rx) = unbounded();
        let inbox = MatchingInbox::new(0, rx);
        tx.send(InboxMsg::Data {
            from: 1,
            tag: 9,
            payload: vec![4.0],
            wire_bytes: 8,
            seq: 1,
        })
        .unwrap();
        tx.send(InboxMsg::PeerGone {
            peer: 1,
            detail: "connection reset".into(),
        })
        .unwrap();
        // The in-flight message is still delivered...
        assert_eq!(inbox.recv(1, 9, T).unwrap().0, vec![4.0]);
        // ...and only then does the dead peer surface, immediately (no
        // timeout wait) and with the backend detail.
        let err = inbox.recv(1, 9, T).unwrap_err();
        assert!(err.is_disconnected());
        assert_eq!(
            err.kind,
            CommErrorKind::Disconnected("connection reset".into())
        );
        assert_eq!(err.tag, Some(9));
    }

    #[test]
    fn peer_gone_does_not_affect_other_peers() {
        let (tx, rx) = unbounded();
        let inbox = MatchingInbox::new(0, rx);
        tx.send(InboxMsg::PeerGone {
            peer: 1,
            detail: String::new(),
        })
        .unwrap();
        tx.send(InboxMsg::Data {
            from: 2,
            tag: 1,
            payload: vec![5.0],
            wire_bytes: 8,
            seq: 1,
        })
        .unwrap();
        assert_eq!(inbox.recv(2, 1, T).unwrap().0, vec![5.0]);
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        let (tx, rx) = unbounded();
        let inbox = MatchingInbox::new(0, rx);
        // Nothing there yet: poll says "in flight", instantly.
        assert!(inbox.try_recv(1, 3).unwrap().is_none());
        tx.send(InboxMsg::Data {
            from: 1,
            tag: 3,
            payload: vec![6.0],
            wire_bytes: 8,
            seq: 1,
        })
        .unwrap();
        assert_eq!(inbox.try_recv(1, 3).unwrap().unwrap().0, vec![6.0]);
        // Consumed: a second poll goes back to "in flight".
        assert!(inbox.try_recv(1, 3).unwrap().is_none());
    }

    #[test]
    fn try_recv_surfaces_dead_peer_after_drain() {
        let (tx, rx) = unbounded();
        let inbox = MatchingInbox::new(0, rx);
        tx.send(InboxMsg::Data {
            from: 1,
            tag: 2,
            payload: vec![7.0],
            wire_bytes: 8,
            seq: 1,
        })
        .unwrap();
        tx.send(InboxMsg::PeerGone {
            peer: 1,
            detail: "gone".into(),
        })
        .unwrap();
        // The buffered message still matches...
        assert_eq!(inbox.try_recv(1, 2).unwrap().unwrap().0, vec![7.0]);
        // ...then the poll fails fast instead of reporting "in flight".
        let err = inbox.try_recv(1, 2).unwrap_err();
        assert!(err.is_disconnected());
        // A different live peer is unaffected.
        assert!(inbox.try_recv(2, 2).unwrap().is_none());
    }
}
