//! The live telemetry plane: periodic per-rank stat frames.
//!
//! Journals ([`crate::journal`]) are post-mortem — nothing is visible
//! until a rank flushes and the merger runs. This module adds the *live*
//! counterpart: each rank aggregates its trace spans into a periodic,
//! schema-versioned [`StatFrame`] (current phase, compute/wait/overlap
//! micros, per-peer traffic, checkpoint epoch, engine, queue depth) and
//! publishes it without ever stalling compute:
//!
//! * frames are appended to a per-rank spool file
//!   (`telemetry-rank-<r>.jsonl`) next to the journals, flushed per
//!   frame so `acfc top DIR` can poll a *running* job;
//! * frames are offered to the transport
//!   ([`crate::Transport::publish_telemetry`]) — over TCP they
//!   piggyback on the heartbeat framing with `try_send` drop-on-full
//!   semantics, in-process they land in a shared per-rank slot;
//! * the in-memory [`TelemetryBus`] is bounded with **drop-oldest**
//!   backpressure and a dropped-frame counter, so a slow (or absent)
//!   consumer costs a counter increment, never a stall.
//!
//! The frame codec is a single JSON line (the journal's format family),
//! so spool files, wire frames, and the bus all speak the same bytes.

use parking_lot::Mutex;
use serde::json::{self, Value};
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Version stamped into every stat frame; bump on any field change.
/// Readers skip fields they don't know and tolerate newer versions
/// (forward-compat mirrors the journal parser's lenient mode).
pub const TELEMETRY_SCHEMA: i64 = 1;

/// Default publish interval: frequent enough that `acfc top` feels
/// live, rare enough that aggregation cost is noise next to a solver
/// iteration.
pub const DEFAULT_TELEMETRY_INTERVAL: Duration = Duration::from_millis(100);

/// Default [`TelemetryBus`] capacity (frames retained for a consumer).
pub const DEFAULT_BUS_CAPACITY: usize = 64;

/// Traffic this rank has exchanged with one peer, cumulative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeerTraffic {
    /// Peer rank.
    pub peer: usize,
    /// Messages sent to the peer.
    pub msgs: u64,
    /// Wire bytes sent to the peer.
    pub bytes: u64,
}

/// One periodic per-rank telemetry frame. All counters are cumulative
/// since the rank's epoch, so a consumer that misses frames (drop-oldest
/// is allowed to discard any prefix) still reads correct totals.
#[derive(Debug, Clone, PartialEq)]
pub struct StatFrame {
    /// Frame schema version ([`TELEMETRY_SCHEMA`] at write time).
    pub schema: i64,
    /// The rank this frame describes.
    pub rank: usize,
    /// Monotonic frame number per rank (gaps = frames dropped).
    pub seq: u64,
    /// Milliseconds since the rank's trace epoch at frame time.
    pub at_ms: u64,
    /// Phase the rank was executing when the frame was cut.
    pub phase: String,
    /// Cumulative compute-span microseconds.
    pub compute_us: u64,
    /// Cumulative blocked (receive + barrier) microseconds.
    pub wait_us: u64,
    /// Cumulative overlapped-compute microseconds.
    pub overlap_us: u64,
    /// Cumulative send/reduce busy microseconds.
    pub comm_us: u64,
    /// Per-peer cumulative send traffic, sorted by peer.
    pub peers: Vec<PeerTraffic>,
    /// Last checkpoint epoch the rank completed (0 = none yet).
    pub checkpoint_epoch: u64,
    /// Engine executing the run (`"tree"` or `"kernel"`).
    pub engine: String,
    /// Frames queued in the rank's bus when this one was cut.
    pub queue_depth: u64,
    /// Frames the transport refused so far (wire drop-on-full). Bus
    /// drop-oldest evictions are *not* counted here: counters are
    /// cumulative, so the newest retained frame subsumes an evicted one
    /// — eviction with no consumer is retention policy, not loss.
    pub dropped: u64,
}

impl StatFrame {
    /// Total busy microseconds (compute + overlap + comm).
    pub fn busy_us(&self) -> u64 {
        self.compute_us + self.overlap_us + self.comm_us
    }

    /// Exposed-communication fraction: wait over (busy + wait). `None`
    /// before the rank has done anything.
    pub fn exposed_pct(&self) -> Option<f64> {
        let total = self.busy_us() + self.wait_us;
        if total == 0 {
            return None;
        }
        Some(self.wait_us as f64 / total as f64)
    }
}

/// Encode a frame as one JSON line (no trailing newline).
pub fn encode_stat_frame(f: &StatFrame) -> String {
    let peers = f
        .peers
        .iter()
        .map(|p| {
            Value::obj(vec![
                ("peer", Value::Int(p.peer as i128)),
                ("msgs", Value::Int(p.msgs as i128)),
                ("bytes", Value::Int(p.bytes as i128)),
            ])
        })
        .collect();
    Value::obj(vec![
        ("type", Value::Str("stat".into())),
        ("schema", Value::Int(f.schema as i128)),
        ("rank", Value::Int(f.rank as i128)),
        ("seq", Value::Int(f.seq as i128)),
        ("at_ms", Value::Int(f.at_ms as i128)),
        ("phase", Value::Str(f.phase.clone())),
        ("compute_us", Value::Int(f.compute_us as i128)),
        ("wait_us", Value::Int(f.wait_us as i128)),
        ("overlap_us", Value::Int(f.overlap_us as i128)),
        ("comm_us", Value::Int(f.comm_us as i128)),
        ("peers", Value::Arr(peers)),
        ("checkpoint_epoch", Value::Int(f.checkpoint_epoch as i128)),
        ("engine", Value::Str(f.engine.clone())),
        ("queue_depth", Value::Int(f.queue_depth as i128)),
        ("dropped", Value::Int(f.dropped as i128)),
    ])
    .to_string()
}

fn int_of(v: &Value, key: &str) -> Result<i128, String> {
    v.get(key)
        .and_then(Value::as_int)
        .ok_or_else(|| format!("stat frame: missing or non-integer `{key}`"))
}

fn str_of(v: &Value, key: &str) -> Result<String, String> {
    Ok(v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("stat frame: missing or non-string `{key}`"))?
        .to_string())
}

/// Decode a frame from one JSON line. Unknown extra fields are ignored
/// and newer schema versions are accepted (the known fields are read
/// best-effort), mirroring the journal reader's forward-compat rules.
pub fn parse_stat_frame(line: &str) -> Result<StatFrame, String> {
    let v = json::parse(line).map_err(|e| format!("stat frame: {e}"))?;
    if v.get("type").and_then(Value::as_str) != Some("stat") {
        return Err("stat frame: not a `stat` record".into());
    }
    let peers = match v.get("peers") {
        Some(Value::Arr(items)) => items
            .iter()
            .map(|p| {
                Ok(PeerTraffic {
                    peer: int_of(p, "peer")? as usize,
                    msgs: int_of(p, "msgs")? as u64,
                    bytes: int_of(p, "bytes")? as u64,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => Vec::new(),
    };
    Ok(StatFrame {
        schema: int_of(&v, "schema")? as i64,
        rank: int_of(&v, "rank")? as usize,
        seq: int_of(&v, "seq")? as u64,
        at_ms: int_of(&v, "at_ms")? as u64,
        phase: str_of(&v, "phase")?,
        compute_us: int_of(&v, "compute_us")? as u64,
        wait_us: int_of(&v, "wait_us")? as u64,
        overlap_us: int_of(&v, "overlap_us")? as u64,
        comm_us: int_of(&v, "comm_us")? as u64,
        peers,
        checkpoint_epoch: int_of(&v, "checkpoint_epoch")? as u64,
        engine: str_of(&v, "engine")?,
        queue_depth: int_of(&v, "queue_depth")? as u64,
        dropped: int_of(&v, "dropped")? as u64,
    })
}

/// The telemetry spool file for `rank` under `dir` — the file channel
/// `acfc top DIR` polls while the run is live.
pub fn spool_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("telemetry-rank-{rank}.jsonl"))
}

/// A bounded, never-blocking frame queue with drop-oldest backpressure.
///
/// Producers push from the compute path, so `push` must never wait on a
/// consumer: when the queue is full the *oldest* frame is discarded
/// (counters are cumulative, so the newest frame subsumes it) and the
/// dropped counter increments. Consumers drain at their own pace.
pub struct TelemetryBus {
    frames: Mutex<VecDeque<StatFrame>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl TelemetryBus {
    /// A bus retaining at most `capacity` frames (min 1).
    pub fn new(capacity: usize) -> TelemetryBus {
        TelemetryBus {
            frames: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Queue a frame, discarding the oldest one when full. Never blocks
    /// beyond the queue mutex (held only for the push itself).
    pub fn push(&self, frame: StatFrame) {
        let mut q = self.frames.lock();
        if q.len() >= self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(frame);
    }

    /// Take every queued frame, oldest first.
    pub fn drain(&self) -> Vec<StatFrame> {
        self.frames.lock().drain(..).collect()
    }

    /// The newest queued frame, if any (leaves the queue untouched).
    pub fn latest(&self) -> Option<StatFrame> {
        self.frames.lock().back().cloned()
    }

    /// Frames currently queued.
    pub fn depth(&self) -> usize {
        self.frames.lock().len()
    }

    /// Frames discarded by drop-oldest so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// How a rank publishes telemetry; see [`TelemetrySink::new`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Minimum gap between published frames.
    pub interval: Duration,
    /// Spool file directory (`telemetry-rank-<r>.jsonl` is created in
    /// it); `None` keeps frames in the bus / on the wire only.
    pub spool_dir: Option<PathBuf>,
    /// Engine label stamped into frames (`"tree"` or `"kernel"`).
    pub engine: String,
    /// Bus capacity.
    pub capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            interval: DEFAULT_TELEMETRY_INTERVAL,
            spool_dir: None,
            engine: "tree".into(),
            capacity: DEFAULT_BUS_CAPACITY,
        }
    }
}

/// One rank's live aggregation state: running span totals updated from
/// the communicator's record path, cut into a [`StatFrame`] at most once
/// per interval. All hot-path updates are relaxed atomics; the spool
/// file and per-peer map are touched only at publish time or send time
/// (a `BTreeMap` insert behind a mutex, amortized microseconds).
pub struct TelemetrySink {
    config: TelemetryConfig,
    bus: TelemetryBus,
    compute_us: AtomicU64,
    wait_us: AtomicU64,
    overlap_us: AtomicU64,
    comm_us: AtomicU64,
    per_peer: Mutex<std::collections::BTreeMap<usize, (u64, u64)>>,
    checkpoint_epoch: AtomicU64,
    frame_seq: AtomicU64,
    /// Extra drops beyond the bus (wire-side try_send failures).
    wire_dropped: AtomicU64,
    last_publish: Mutex<Option<Instant>>,
    spool: Mutex<Option<std::fs::File>>,
}

impl TelemetrySink {
    /// A sink for one rank with the given publication config.
    pub fn new(config: TelemetryConfig) -> TelemetrySink {
        let capacity = config.capacity;
        TelemetrySink {
            config,
            bus: TelemetryBus::new(capacity),
            compute_us: AtomicU64::new(0),
            wait_us: AtomicU64::new(0),
            overlap_us: AtomicU64::new(0),
            comm_us: AtomicU64::new(0),
            per_peer: Mutex::new(std::collections::BTreeMap::new()),
            checkpoint_epoch: AtomicU64::new(0),
            frame_seq: AtomicU64::new(0),
            wire_dropped: AtomicU64::new(0),
            last_publish: Mutex::new(None),
            spool: Mutex::new(None),
        }
    }

    /// The sink's bounded frame queue.
    pub fn bus(&self) -> &TelemetryBus {
        &self.bus
    }

    /// Add a compute span.
    pub fn add_compute(&self, d: Duration) {
        self.compute_us
            .fetch_add(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Add an overlapped-compute span.
    pub fn add_overlap(&self, d: Duration) {
        self.overlap_us
            .fetch_add(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Add a blocked (receive/barrier) span.
    pub fn add_wait(&self, d: Duration) {
        self.wait_us
            .fetch_add(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Add a send/reduce busy span.
    pub fn add_comm(&self, d: Duration) {
        self.comm_us
            .fetch_add(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Account one message of `bytes` sent to `peer`.
    pub fn add_send(&self, peer: usize, bytes: usize) {
        let mut map = self.per_peer.lock();
        let e = map.entry(peer).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes as u64;
    }

    /// Record that checkpoint `epoch` completed.
    pub fn note_checkpoint(&self, epoch: u64) {
        self.checkpoint_epoch.store(epoch, Ordering::Relaxed);
    }

    /// Count a frame the wire refused (queue full): the compute path
    /// moved on, the observer sees the gap in the dropped counter.
    pub fn note_wire_drop(&self) {
        self.wire_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Frames the wire refused so far. Bus drop-oldest evictions are
    /// deliberately excluded (see [`StatFrame::dropped`]); read them
    /// from [`TelemetrySink::bus`] when tuning consumer pace.
    pub fn dropped(&self) -> u64 {
        self.wire_dropped.load(Ordering::Relaxed)
    }

    /// Whether the publish interval has elapsed since the last frame.
    /// Cheap enough for the record hot path (one mutex try-lock; a
    /// contended lock means someone else is publishing — skip).
    pub fn due(&self) -> bool {
        match self.last_publish.try_lock() {
            Some(last) => match *last {
                Some(t) => t.elapsed() >= self.config.interval,
                None => true,
            },
            None => false,
        }
    }

    /// Cut a frame from the current counters and publish it: queue on
    /// the bus, append to the spool file (if configured). Returns the
    /// frame so the caller can also offer it to the transport. `rank`
    /// and `phase` come from the communicator; `at` is time since its
    /// epoch.
    pub fn publish(&self, rank: usize, phase: &str, at: Duration) -> StatFrame {
        {
            let mut last = self.last_publish.lock();
            *last = Some(Instant::now());
        }
        let peers = self
            .per_peer
            .lock()
            .iter()
            .map(|(&peer, &(msgs, bytes))| PeerTraffic { peer, msgs, bytes })
            .collect();
        let frame = StatFrame {
            schema: TELEMETRY_SCHEMA,
            rank,
            seq: self.frame_seq.fetch_add(1, Ordering::Relaxed),
            at_ms: at.as_millis() as u64,
            phase: phase.to_string(),
            compute_us: self.compute_us.load(Ordering::Relaxed),
            wait_us: self.wait_us.load(Ordering::Relaxed),
            overlap_us: self.overlap_us.load(Ordering::Relaxed),
            comm_us: self.comm_us.load(Ordering::Relaxed),
            peers,
            checkpoint_epoch: self.checkpoint_epoch.load(Ordering::Relaxed),
            engine: self.config.engine.clone(),
            queue_depth: self.bus.depth() as u64,
            dropped: self.dropped(),
        };
        self.bus.push(frame.clone());
        self.spool_append(&frame);
        frame
    }

    fn spool_append(&self, frame: &StatFrame) {
        let Some(dir) = self.config.spool_dir.as_deref() else {
            return;
        };
        let mut spool = self.spool.lock();
        if spool.is_none() {
            let _ = std::fs::create_dir_all(dir);
            *spool = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(spool_path(dir, frame.rank))
                .ok();
        }
        if let Some(f) = spool.as_mut() {
            // spool I/O failures must never take the run down: the
            // telemetry plane degrades, the solver does not
            let _ = writeln!(f, "{}", encode_stat_frame(frame));
            let _ = f.flush();
        }
    }
}

/// Read every frame from a rank's spool file, skipping unparsable lines
/// (a live writer may be mid-line); returns frames plus the skip count.
pub fn read_spool(path: &Path) -> std::io::Result<(Vec<StatFrame>, usize)> {
    let text = std::fs::read_to_string(path)?;
    let mut frames = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_stat_frame(line) {
            Ok(f) => frames.push(f),
            Err(_) => skipped += 1,
        }
    }
    Ok((frames, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(rank: usize, seq: u64) -> StatFrame {
        StatFrame {
            schema: TELEMETRY_SCHEMA,
            rank,
            seq,
            at_ms: 1234,
            phase: "sync_0".into(),
            compute_us: 500,
            wait_us: 100,
            overlap_us: 40,
            comm_us: 7,
            peers: vec![
                PeerTraffic {
                    peer: 1,
                    msgs: 3,
                    bytes: 96,
                },
                PeerTraffic {
                    peer: 2,
                    msgs: 1,
                    bytes: 8,
                },
            ],
            checkpoint_epoch: 2,
            engine: "kernel".into(),
            queue_depth: 1,
            dropped: 0,
        }
    }

    #[test]
    fn codec_round_trips() {
        let f = frame(3, 17);
        let line = encode_stat_frame(&f);
        assert_eq!(parse_stat_frame(&line).unwrap(), f);
    }

    #[test]
    fn parser_ignores_unknown_fields_and_newer_schema() {
        let mut f = frame(0, 0);
        f.schema = TELEMETRY_SCHEMA + 5;
        let line = encode_stat_frame(&f);
        // splice an extra field a future schema might add
        let future = line.replacen("{", "{\"future_field\": 42, ", 1);
        let got = parse_stat_frame(&future).unwrap();
        assert_eq!(got, f);
    }

    #[test]
    fn parser_rejects_non_stat_records() {
        assert!(parse_stat_frame("{\"type\":\"event\"}").is_err());
        assert!(parse_stat_frame("not json").is_err());
    }

    #[test]
    fn bus_drops_oldest_and_counts() {
        let bus = TelemetryBus::new(2);
        bus.push(frame(0, 0));
        bus.push(frame(0, 1));
        assert_eq!(bus.dropped(), 0);
        bus.push(frame(0, 2));
        assert_eq!(bus.dropped(), 1);
        assert_eq!(bus.depth(), 2);
        assert_eq!(bus.latest().unwrap().seq, 2);
        let drained: Vec<u64> = bus.drain().iter().map(|f| f.seq).collect();
        assert_eq!(drained, vec![1, 2], "oldest frame was the one dropped");
        assert_eq!(bus.depth(), 0);
    }

    #[test]
    fn sink_publishes_cumulative_counters_and_spools() {
        let dir = std::env::temp_dir().join(format!("acf-telem-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = TelemetrySink::new(TelemetryConfig {
            interval: Duration::ZERO,
            spool_dir: Some(dir.clone()),
            engine: "tree".into(),
            capacity: 8,
        });
        sink.add_compute(Duration::from_micros(300));
        sink.add_wait(Duration::from_micros(50));
        sink.add_send(1, 64);
        sink.add_send(1, 64);
        sink.note_checkpoint(4);
        let f1 = sink.publish(0, "main", Duration::from_millis(10));
        sink.add_compute(Duration::from_micros(200));
        let f2 = sink.publish(0, "sync_0", Duration::from_millis(20));
        assert_eq!(f1.compute_us, 300);
        assert_eq!(f2.compute_us, 500, "counters are cumulative");
        assert_eq!(f2.seq, f1.seq + 1);
        assert_eq!(f2.checkpoint_epoch, 4);
        assert_eq!(
            f2.peers,
            vec![PeerTraffic {
                peer: 1,
                msgs: 2,
                bytes: 128
            }]
        );
        let (frames, skipped) = read_spool(&spool_path(&dir, 0)).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(frames, vec![f1, f2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interval_gates_publication() {
        let sink = TelemetrySink::new(TelemetryConfig {
            interval: Duration::from_secs(3600),
            ..TelemetryConfig::default()
        });
        assert!(sink.due(), "first frame is always due");
        sink.publish(0, "main", Duration::ZERO);
        assert!(!sink.due(), "next frame waits out the interval");
    }

    #[test]
    fn exposed_pct_and_busy() {
        let mut f = frame(0, 0);
        f.compute_us = 600;
        f.overlap_us = 100;
        f.comm_us = 100;
        f.wait_us = 200;
        assert_eq!(f.busy_us(), 800);
        assert!((f.exposed_pct().unwrap() - 0.2).abs() < 1e-12);
        f.compute_us = 0;
        f.overlap_us = 0;
        f.comm_us = 0;
        f.wait_us = 0;
        assert_eq!(f.exposed_pct(), None);
    }

    #[test]
    fn read_spool_skips_partial_lines() {
        let dir = std::env::temp_dir().join(format!("acf-telem-part-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = spool_path(&dir, 1);
        let good = encode_stat_frame(&frame(1, 0));
        std::fs::write(&path, format!("{good}\n{{\"type\":\"stat\",\"ra")).unwrap();
        let (frames, skipped) = read_spool(&path).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_frame() -> impl Strategy<Value = StatFrame> {
        (
            (0usize..64, 0u64..1_000_000, 0u64..u32::MAX as u64),
            (0usize..4).prop_map(|i| ["", "main", "sync_0", "reduce_res"][i].to_string()),
            (0u64..u32::MAX as u64, 0u64..u32::MAX as u64),
            (0u64..u32::MAX as u64, 0u64..u32::MAX as u64),
            proptest::collection::vec((0usize..64, 0u64..1_000_000, 0u64..u32::MAX as u64), 0..6),
            ((0u64..1_000, 0u64..64, 0u64..1_000), proptest::bool::ANY),
        )
            .prop_map(
                |((rank, seq, at_ms), phase, (c, w), (o, m), peers, ((ck, qd, dr), kernel))| {
                    StatFrame {
                        schema: TELEMETRY_SCHEMA,
                        rank,
                        seq,
                        at_ms,
                        phase,
                        compute_us: c,
                        wait_us: w,
                        overlap_us: o,
                        comm_us: m,
                        peers: peers
                            .into_iter()
                            .map(|(peer, msgs, bytes)| PeerTraffic { peer, msgs, bytes })
                            .collect(),
                        checkpoint_epoch: ck,
                        queue_depth: qd,
                        dropped: dr,
                        engine: if kernel {
                            "kernel".into()
                        } else {
                            "tree".into()
                        },
                    }
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// encode → parse is the identity for every frame shape.
        #[test]
        fn stat_frame_codec_round_trips(frame in arb_frame()) {
            let line = encode_stat_frame(&frame);
            prop_assert!(!line.contains('\n'), "one frame = one line");
            let got = parse_stat_frame(&line).expect("own encoding parses");
            prop_assert_eq!(got, frame);
        }
    }
}
